#!/usr/bin/env python3
"""Transit empires: state carriers in the global wholesale market.

Reproduces the §8 "transit connectivity market" analysis as an application:
rank state-owned ASes by customer-cone size (Table 5), identify the
fastest-growing cones of the decade (Figure 5 — the submarine-cable
builders), and print the growth series as a text sparkline.

Run:  python examples/transit_empires.py
"""

from repro import (
    PipelineInputs,
    StateOwnershipPipeline,
    WorldConfig,
    WorldGenerator,
)
from repro.analysis.cones import figure5_growth_series, table5_top_cones
from repro.io.tables import render_table

SPARK = " .:-=+*#%@"


def sparkline(series):
    values = [size for _, size in series]
    top = max(values) or 1
    return "".join(
        SPARK[min(len(SPARK) - 1, int(v / top * (len(SPARK) - 1)))]
        for v in values
    )


def main() -> None:
    print("building world + running the identification pipeline...")
    world = WorldGenerator(WorldConfig.small()).generate()
    inputs = PipelineInputs.from_world(world)
    result = StateOwnershipPipeline(inputs).run()

    rows = table5_top_cones(result.dataset, inputs.asrank, inputs.whois)
    print(render_table(
        ("ASN", "AS name", "country", "customer cone"),
        rows,
        title="Largest customer cones of state-owned ASes (Table 5)",
    ))

    print("\nFastest-growing state-owned cones, 2010 -> 2020 (Figure 5):\n")
    series = figure5_growth_series(result.dataset, inputs.asrank, k=3)
    for asn, history in series.items():
        record = inputs.whois.lookup(asn)
        label = f"AS{asn}"
        if record is not None:
            label += f" ({record.as_name}, {record.cc})"
        start, end = history[0][1], history[-1][1]
        print(f"{label:<38} {sparkline(history)}  {start} -> {end}")
    print(
        "\nThe ramp-from-zero shapes are the submarine-cable builders "
        "(the paper's Angola Cables / BSCCL archetype)."
    )


if __name__ == "__main__":
    main()
