#!/usr/bin/env python3
"""Dataset maintenance: ageing, churn and re-verification planning (§9).

The paper warns that its list captures a 2019-2020 snapshot of a moving
target: companies privatize, nationalize and expand.  This example measures
the decay of a frozen dataset under simulated ownership churn and then uses
the re-verification planner to show that a *small, well-chosen* yearly audit
recovers most of the loss — the paper's "maintenance is cheaper than
rebuilding" argument, quantified.

Run:  python examples/dataset_maintenance.py
"""

from repro import (
    PipelineInputs,
    StateOwnershipPipeline,
    WorldConfig,
    WorldGenerator,
)
from repro.core.maintenance import plan_reverification
from repro.io.tables import render_table
from repro.world.events import ChurnRates, ChurnSimulator


def main() -> None:
    print("building world + running the identification pipeline...")
    world = WorldGenerator(WorldConfig.small()).generate()
    inputs = PipelineInputs.from_world(world)
    result = StateOwnershipPipeline(inputs).run()
    frozen = set(result.dataset.all_asns())
    print(f"frozen snapshot: {len(frozen)} state-owned ASNs\n")

    # --- churn the world for five years --------------------------------------
    rates = ChurnRates(
        privatization=0.025,
        nationalization=0.008,
        new_subsidiary_per_expander=0.15,
    )
    simulator = ChurnSimulator(world, rates)
    rows = []
    for year in range(2021, 2026):
        events = simulator.simulate_years(year, 1)
        truth = set(world.ground_truth_asns())
        tp = len(frozen & truth)
        rows.append(
            (year, len(events),
             f"{tp / len(frozen):.3f}" if frozen else "-",
             f"{tp / len(truth):.3f}" if truth else "-")
        )
    print(render_table(
        ("year", "ownership events", "frozen precision", "frozen recall"),
        rows,
        title="A frozen snapshot decays as ownership churns",
    ))

    sample = simulator.events[:5]
    print("\nexample events:")
    for event in sample:
        print(f"  {event.year} {event.kind.value}: {event.operator_name} "
              f"({event.cc}) — {event.detail}")

    # --- the cheap fix: a prioritized audit -------------------------------------
    plan = plan_reverification(result, limit=15)
    print()
    print(render_table(
        ("org", "fragility", "why re-check first"),
        [
            (item.org_name[:34], f"{item.fragility:.2f}",
             "; ".join(item.reasons)[:60])
            for item in plan
        ],
        title="Re-verification plan: the 15 classifications to audit first",
    ))
    print(
        "\nAuditing a handful of fragile records each year keeps the "
        "dataset alive at a fraction of the original 4.6 person-months."
    )


if __name__ == "__main__":
    main()
