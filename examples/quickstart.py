#!/usr/bin/env python3
"""Quickstart: generate a world, run the pipeline, inspect the dataset.

This walks the full life of the reproduction in ~1 minute:

1. synthesize a ground-truth world (countries, companies, ownership, BGP);
2. derive the noisy data sources the paper consumed;
3. run the three-stage classification pipeline;
4. export the dataset (JSON, as in the paper's public release);
5. score the result against the hidden ground truth.

Run:  python examples/quickstart.py
"""

from repro import (
    PipelineInputs,
    StateOwnershipPipeline,
    WorldConfig,
    WorldGenerator,
    validate_against_world,
)
from repro.io.jsonio import dump_json


def main() -> None:
    print("1. generating the synthetic world...")
    world = WorldGenerator(WorldConfig.small()).generate()
    truth = world.ground_truth()
    print(f"   {len(world.graph)} ASes; ground truth hides "
          f"{len(truth)} state-owned operators "
          f"({len(world.ground_truth_asns())} ASNs)")

    print("2. deriving the data sources (prefix2as, geolocation, eyeballs,")
    print("   WHOIS, PeeringDB, AS2Org, Orbis, Freedom House, Wikipedia,")
    print("   confirmation documents)...")
    inputs = PipelineInputs.from_world(world)

    print("3. running the three-stage pipeline (this computes CTI, maps")
    print("   candidate ASes to companies, verifies ownership chains and")
    print("   expands siblings — allow ~30 s)...")
    result = StateOwnershipPipeline(inputs).run()
    stats = result.stats
    print(f"   candidates: {stats['total_asns']:.0f} ASes, "
          f"{stats['companies_to_verify']:.0f} companies to verify")
    print(f"   confirmed:  {stats['confirmed_companies']:.0f} companies, "
          f"{stats['state_owned_asns']:.0f} state-owned ASNs "
          f"({stats['foreign_subsidiary_asns']:.0f} foreign)")

    print("4. exporting the dataset to state_owned_ases.json...")
    dump_json(result.dataset, "state_owned_ases.json")
    example = next(iter(result.dataset.organizations()))
    print(f"   example record: {example.org_name} "
          f"({example.ownership_country_name}) via {example.source!r}")
    print(f"   quote: {example.quote!r}")

    print("5. scoring against the hidden ground truth...")
    report = validate_against_world(result, world)
    print(report.as_text())


if __name__ == "__main__":
    main()
