#!/usr/bin/env python3
"""Censorship-exposure study: who can a state observe or switch off?

The paper motivates its dataset with censorship and surveillance research
(§1, §11): if a government majority-owns the networks serving its citizens,
it holds a direct lever over their connectivity.  This example combines the
state-owned-AS dataset with the access-market estimates to rank countries by
*state leverage* — the fraction of eyeballs reachable only through ASes the
local government controls — and flags the countries where a single
state-owned transit gateway additionally intercepts most inbound traffic
(the Syria/AS29386 pattern the paper cites).

Run:  python examples/censorship_exposure.py
"""

from repro import (
    PipelineInputs,
    StateOwnershipPipeline,
    WorldConfig,
    WorldGenerator,
)
from repro.analysis.footprint import compute_footprints
from repro.cti.metric import CTIComputer
from repro.io.tables import render_table


def main() -> None:
    print("building world + running the identification pipeline...")
    world = WorldGenerator(WorldConfig.small()).generate()
    inputs = PipelineInputs.from_world(world)
    result = StateOwnershipPipeline(inputs).run()
    dataset = result.dataset

    print("estimating per-country state leverage...\n")
    footprints = compute_footprints(
        dataset, inputs.prefix2as, inputs.geolocation, inputs.eyeballs
    )

    # CTI tells us whether a state-owned transit AS also sits on the
    # inbound paths — the interception vector.
    cti = CTIComputer(inputs.prefix2as, inputs.geolocation, inputs.collector)
    state_asns = dataset.all_asns()

    rows = []
    for cc, fp in footprints.items():
        leverage = fp.domestic_eyeball_share
        if leverage < 0.5:
            continue
        top = cti.top_influencers(cc, k=1)
        gateway_note = ""
        if top and top[0][0] in state_asns:
            gateway_note = (
                f"state gateway AS{top[0][0]} (CTI {top[0][1]:.2f})"
            )
        rows.append((cc, f"{leverage:.2f}", f"{fp.domestic_addr_share:.2f}",
                     gateway_note or "-"))

    rows.sort(key=lambda r: -float(r[1]))
    print(render_table(
        ("country", "eyeball leverage", "address leverage",
         "inbound interception point"),
        rows[:20],
        title="Countries where the state controls the majority of access "
              "(top 20)",
    ))
    total = sum(1 for r in rows)
    print(f"\n{total} countries have majority state leverage over their "
          f"citizens' connectivity in this world.")


if __name__ == "__main__":
    main()
