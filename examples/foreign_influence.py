#!/usr/bin/env python3
"""Foreign-influence study: whose governments run your Internet?

The paper's most striking finding is geopolitical: 19 states operate
Internet subsidiaries in 70 foreign countries, and in several African
countries *foreign* state-owned carriers hold over half the access market
(§8, Table 3, Figure 1 green).  This example maps that exposure: for every
country it lists which foreign governments serve its users, how much of the
market they hold, and which expansion "empires" (Ooredoo/Etisalat-style)
reach furthest from home.

Run:  python examples/foreign_influence.py
"""

from collections import defaultdict

from repro import (
    PipelineInputs,
    StateOwnershipPipeline,
    WorldConfig,
    WorldGenerator,
)
from repro.analysis.footprint import compute_footprints
from repro.analysis.tables import table3_foreign_subsidiaries
from repro.io.tables import render_table
from repro.world.countries import country_by_cc


def main() -> None:
    print("building world + running the identification pipeline...")
    world = WorldGenerator(WorldConfig.small()).generate()
    inputs = PipelineInputs.from_world(world)
    result = StateOwnershipPipeline(inputs).run()
    dataset = result.dataset

    # --- the expansion empires (Table 3 view) ------------------------------
    rows = []
    for owner, count, targets in table3_foreign_subsidiaries(result):
        regions = {country_by_cc(t).region for t in targets}
        rows.append((owner, count, ", ".join(sorted(regions))))
    print(render_table(
        ("owner", "target countries", "continents reached"),
        rows,
        title="State-owned expansion abroad",
    ))

    # --- who is exposed? -----------------------------------------------------
    footprints = compute_footprints(
        dataset, inputs.prefix2as, inputs.geolocation, inputs.eyeballs
    )
    owners_in = defaultdict(set)
    for org in dataset.foreign_subsidiaries():
        if org.target_cc:
            owners_in[org.target_cc].add(org.ownership_cc)

    exposed = []
    for cc, fp in footprints.items():
        if fp.foreign_max <= 0.05:
            continue
        exposed.append(
            (
                cc,
                country_by_cc(cc).region if _known(cc) else "?",
                f"{fp.foreign_max:.2f}",
                " ".join(sorted(owners_in.get(cc, set()))) or "?",
            )
        )
    exposed.sort(key=lambda r: -float(r[2]))
    print()
    print(render_table(
        ("country", "region", "foreign state footprint", "foreign owners"),
        exposed,
        title="Countries with a significant (>5 %) foreign state footprint",
    ))

    african = [r for r in exposed if r[1] == "Africa"]
    majority = [r for r in african if float(r[2]) > 0.5]
    print(
        f"\nAfrica hosts {len(african)} exposed countries; in "
        f"{len(majority)} of them foreign governments hold the majority of "
        f"the access market (the paper found 12 and 6)."
    )


def _known(cc: str) -> bool:
    try:
        country_by_cc(cc)
        return True
    except KeyError:
        return False


if __name__ == "__main__":
    main()
