"""Figure 1 — world heatmap of domestic (blue) / foreign (green) state
footprint per country."""

import pytest

from repro.analysis.footprint import compute_footprints, figure1_map_data
from repro.io.tables import render_table
from repro.world.countries import country_by_cc


@pytest.fixture(scope="module")
def footprints(bench_result, bench_inputs):
    return compute_footprints(
        bench_result.dataset,
        bench_inputs.prefix2as,
        bench_inputs.geolocation,
        bench_inputs.eyeballs,
    )


def _region(cc):
    try:
        return country_by_cc(cc).region
    except KeyError:
        return "?"


def test_bench_figure1(benchmark, footprints):
    data = benchmark(figure1_map_data, footprints)
    top = sorted(data.items(), key=lambda kv: -max(kv[1]))[:25]
    print()
    print(
        render_table(
            ("cc", "region", "domestic (blue)", "foreign (green)"),
            [
                (cc, _region(cc), f"{blue:.2f}", f"{green:.2f}")
                for cc, (blue, green) in top
            ],
            title="Figure 1 — strongest state footprints",
        )
    )
    # Shape: Africa and Asia lead domestic state footprint (the paper's
    # headline geographic finding); the US shows none.
    region_means = {}
    for cc, (blue, _green) in data.items():
        region_means.setdefault(_region(cc), []).append(blue)
    mean = lambda xs: sum(xs) / len(xs)  # noqa: E731
    assert mean(region_means["Africa"]) > mean(region_means["Europe"])
    assert mean(region_means["Asia"]) > mean(region_means["Americas"])
    assert data["US"][0] == 0.0
    # Foreign (green) touches every continent, strongest in Africa.
    foreign_by_region = {}
    for cc, (_blue, green) in data.items():
        foreign_by_region.setdefault(_region(cc), []).append(green)
    assert mean(foreign_by_region["Africa"]) >= mean(foreign_by_region["Europe"])
