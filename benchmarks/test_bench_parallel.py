"""Parallel-execution benchmarks: serial vs multi-core vs warm cache.

Three single-round measurements of the same reduced-world pipeline run:

* the serial baseline,
* the multi-core run (process backend), and
* the warm-cache run (CTI served entirely from the persistent cache).

Every run gets a **fresh** route collector: routing trees are cached per
collector, so reusing the session collector would hand later runs a warm
tree cache and fake the speedup.  ``extra_info`` records the worker count
and backend so exported ``BENCH_*.json`` files are self-describing.
"""

from __future__ import annotations

import dataclasses
import os

from _record import append_record, mean_seconds

from repro.config import ParallelConfig
from repro.core.pipeline import StateOwnershipPipeline
from repro.io.tables import render_table
from repro.net.monitors import RouteCollector
from repro.obs import get_metrics

# Floor of 2 so the single-pool/pickle-once machinery is exercised even on
# single-core CI runners (where the fan-out yields no wall-time win).
_PARALLEL_JOBS = max(2, min(4, os.cpu_count() or 1))


def _cold_inputs(inputs):
    """The same derived sources with an unwarmed route collector."""
    collector = inputs.collector
    return dataclasses.replace(
        inputs,
        collector=RouteCollector(collector._graph, collector.monitors),
    )


def _report(title, result):
    print()
    print(
        render_table(
            ("metric", "value"),
            [
                ("companies confirmed", len(result.dataset)),
                ("state-owned ASNs", len(result.dataset.all_asns())),
                ("runtime (s)", f"{result.stats['runtime_seconds']:.2f}"),
            ],
            title=title,
        )
    )


def test_bench_pipeline_serial(benchmark, small_bench_inputs):
    inputs = _cold_inputs(small_bench_inputs)
    pipeline = StateOwnershipPipeline(inputs)
    result = benchmark.pedantic(pipeline.run, rounds=1, iterations=1)
    benchmark.extra_info["jobs"] = 1
    benchmark.extra_info["backend"] = "serial"
    _report("Serial baseline (cold routing trees)", result)
    assert len(result.dataset)
    append_record(
        "parallel",
        "pipeline_serial",
        tracked={"wall_s": mean_seconds(benchmark)},
        context={"jobs": 1, "backend": "serial"},
        confirmed=len(result.dataset),
    )


def test_bench_pipeline_parallel(benchmark, small_bench_inputs):
    inputs = _cold_inputs(small_bench_inputs)
    pipeline = StateOwnershipPipeline(
        inputs,
        parallel=ParallelConfig(jobs=_PARALLEL_JOBS, backend="process"),
    )
    metrics = get_metrics()
    spawns = metrics.counter("parallel.pool_spawns")
    reuses = metrics.counter("parallel.pool_reuse")
    ships = metrics.counter("parallel.state_ships")
    result = benchmark.pedantic(pipeline.run, rounds=1, iterations=1)
    benchmark.extra_info["jobs"] = _PARALLEL_JOBS
    benchmark.extra_info["backend"] = "process"
    benchmark.extra_info["pool_spawns"] = (
        metrics.counter("parallel.pool_spawns") - spawns
    )
    benchmark.extra_info["pool_reuse"] = metrics.counter("parallel.pool_reuse") - reuses
    benchmark.extra_info["state_ships"] = (
        metrics.counter("parallel.state_ships") - ships
    )
    assert benchmark.extra_info["pool_spawns"] == 1
    _report(
        f"Process backend, {_PARALLEL_JOBS} workers (cold routing trees)",
        result,
    )
    assert len(result.dataset)
    append_record(
        "parallel",
        "pipeline_parallel",
        tracked={"wall_s": mean_seconds(benchmark)},
        context={"jobs": _PARALLEL_JOBS, "backend": "process"},
        confirmed=len(result.dataset),
        shm_bytes=metrics.counter("runtime.shm_bytes"),
    )


def test_bench_pipeline_warm_cache(benchmark, small_bench_inputs, tmp_path_factory):
    cache_dir = str(tmp_path_factory.mktemp("repro-cache"))
    parallel = ParallelConfig(cache_dir=cache_dir)
    # Prime the persistent cache (not part of the measurement).
    StateOwnershipPipeline(_cold_inputs(small_bench_inputs), parallel=parallel).run()

    metrics = get_metrics()
    hits_before = metrics.counter("cache.hits")
    pipeline = StateOwnershipPipeline(
        _cold_inputs(small_bench_inputs), parallel=parallel
    )
    result = benchmark.pedantic(pipeline.run, rounds=1, iterations=1)
    benchmark.extra_info["jobs"] = 1
    benchmark.extra_info["backend"] = "serial"
    benchmark.extra_info["cache"] = "warm"
    _report("Warm persistent cache (CTI served from disk)", result)
    assert metrics.counter("cache.hits") - hits_before >= 1
    assert len(result.dataset)
    append_record(
        "parallel",
        "pipeline_warm_cache",
        tracked={"wall_s": mean_seconds(benchmark)},
        context={"jobs": 1, "backend": "serial", "cache": "warm"},
        confirmed=len(result.dataset),
    )
