"""Longitudinal maintain-loop benchmark: cold vs incremental snapshots.

Walks a monthly snapshot sequence twice over identically-churned worlds —
once recomputing every snapshot from scratch, once through the
:class:`~repro.incremental.IncrementalEngine` — and reports per-snapshot
wall time, the reused fraction and the cold/warm speedup.  The warm runs
are additionally byte-compared against their cold twins, so the speedup
number can never come from a drifted shortcut.

With ``REPRO_BENCH_RECORD=1`` the headline lands in ``BENCH_maintain.json``
(tracked: ``cold_snapshot_s`` / ``warm_snapshot_s`` lower-is-better,
``speedup_x`` / ``reused_fraction`` higher-is-better, gated by
``repro bench-diff``).
"""

from __future__ import annotations

import os

from _record import append_record

from repro.config import WorldConfig
from repro.core.maintenance import run_maintenance
from repro.io.tables import render_table
from repro.world.generator import WorldGenerator

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "20210701"))

_MONTHS = 3


def _world():
    config = WorldConfig(seed=BENCH_SEED, scale=BENCH_SCALE)
    return WorldGenerator(config).generate()


def test_bench_maintain_loop(tmp_path):
    # Two worlds from the same seed churn identically, so snapshot k of
    # the cold walk is the ground truth for snapshot k of the warm walk.
    cold = run_maintenance(
        _world(), out_dir=tmp_path / "cold", months=_MONTHS, cold=True
    )
    warm = run_maintenance(_world(), out_dir=tmp_path / "warm", months=_MONTHS)

    for cold_rec, warm_rec in zip(cold.snapshots, warm.snapshots):
        cold_bytes = open(cold_rec.dataset_path, "rb").read()
        warm_bytes = open(warm_rec.dataset_path, "rb").read()
        assert cold_bytes == warm_bytes, (
            f"incremental snapshot {warm_rec.label} drifted from cold"
        )

    cold_walls = [r.provenance["wall_s"] for r in cold.snapshots]
    warm_walls = [r.provenance["wall_s"] for r in warm.snapshots]
    # Steady-state comparison: skip both walks' first (necessarily cold)
    # snapshot and compare the mean per-snapshot wall times.
    cold_s = sum(cold_walls[1:]) / len(cold_walls[1:])
    warm_s = sum(warm_walls[1:]) / len(warm_walls[1:])
    speedup = cold_s / warm_s if warm_s else float("inf")
    reused = warm.reused_fractions()[1:]
    reused_mean = sum(reused) / len(reused)

    print()
    rows = [
        (
            rec.label,
            len(rec.events),
            f"{cold_walls[i]:.2f}s",
            f"{warm_walls[i]:.2f}s",
            f"{rec.provenance.get('reused_fraction', 0.0):.1%}",
        )
        for i, rec in enumerate(warm.snapshots)
    ]
    print(
        render_table(
            ("snapshot", "events", "cold", "incremental", "reused"),
            rows,
            title=f"Maintain loop (scale {BENCH_SCALE}, {_MONTHS} months)",
        )
    )
    print(f"steady-state speedup: {speedup:.1f}x")

    # The acceptance bar: a warm snapshot that dirtied at most 5% of the
    # origins the baseline walked must beat the cold recompute of the
    # same month by at least 3x.  (Was 5x when cold CTI walked object
    # trees; the flat propagation kernel cut the cold baseline ~3x while
    # the warm path — already skipping CTI — kept its absolute time, so
    # the ratio bar moved with the denominator it divides by.)
    baseline_walks = warm.snapshots[0].provenance.get("dirty_origins") or 0
    quiet = [
        i
        for i in range(1, len(warm.snapshots))
        if (warm.snapshots[i].provenance.get("dirty_origins") or 0)
        <= 0.05 * baseline_walks
    ]
    if quiet:
        best = max(cold_walls[i] / max(warm_walls[i], 1e-9) for i in quiet)
        assert best >= 3.0, f"best warm speedup {best:.1f}x < 3x"

    append_record(
        "maintain",
        "maintain_loop",
        tracked={
            "cold_snapshot_s": cold_s,
            "warm_snapshot_s": warm_s,
            "speedup_x": speedup,
            "reused_fraction": reused_mean,
        },
        context={"scale": BENCH_SCALE, "months": _MONTHS},
        labels=[rec.label for rec in warm.snapshots],
        warm_walls=warm_walls,
        cold_walls=cold_walls,
    )
