"""S2 — the §7 headline numbers (989 ASes, 17 % of announced space...)."""

from repro.analysis import paper
from repro.analysis.report import headline_stats
from repro.io.tables import render_table


def test_bench_headline(benchmark, bench_result, bench_inputs):
    stats = benchmark(headline_stats, bench_result, bench_inputs)
    rows = [
        (key, stats.get(key, "-"), paper.HEADLINE.get(key, "-"))
        for key in sorted(set(stats) | set(paper.HEADLINE))
    ]
    print()
    print(render_table(("metric", "measured", "paper"), rows, title="Headline (§7)"))
    # Shape assertions: state ownership is widespread, the US exclusion
    # raises the share, foreign subsidiaries are a visible minority.
    assert stats["state_owned_asns"] > 300
    assert stats["countries_with_majority"] > 80
    assert 0.08 < stats["announced_space_share"] < 0.3
    assert (stats["announced_space_share_ex_us"] > stats["announced_space_share"])
    assert 0 < stats["foreign_subsidiary_asns"] < stats["state_owned_asns"]
