"""Table 4 — state-owned operators by RIR (ARIN is the near-zero outlier)."""

from repro.analysis import paper
from repro.analysis.tables import table4_by_rir
from repro.io.tables import render_table


def test_bench_table4(benchmark, bench_result):
    table = benchmark(table4_by_rir, bench_result)
    print()
    print(
        render_table(
            ("RIR", "companies", "countries", "% countries", "paper (c/c/%)"),
            [
                (
                    rir,
                    companies,
                    countries,
                    pct,
                    "/".join(str(v) for v in paper.TABLE4_BY_RIR.get(rir, ())),
                )
                for rir, (companies, countries, pct) in sorted(table.items())
            ],
            title="Table 4 — state-owned operators by RIR",
        )
    )
    # Shape: every non-ARIN RIR has >40 % member-country participation
    # while ARIN stays far below (paper: 7 %).
    for rir in ("AFRINIC", "APNIC", "LACNIC", "RIPE"):
        assert table[rir][2] > 35.0, rir
    assert table["ARIN"][2] < 30.0
    assert table["ARIN"][2] < min(
        table[r][2] for r in ("AFRINIC", "APNIC", "LACNIC", "RIPE")
    )
    # World row: about half the countries.
    assert 35.0 <= table["World"][2] <= 70.0
