"""Figure 7 (Appendix C) — the full five-source Venn diagram."""

from repro.analysis.contributions import venn_regions
from repro.io.tables import render_table


def test_bench_figure7(benchmark, bench_result):
    regions = benchmark(venn_regions, bench_result)
    print()
    print(
        render_table(
            ("region (GECWO)", "ASes"),
            sorted(regions.items(), key=lambda kv: (-kv[1], kv[0]))[:20],
            title="Figure 7 — five-source Venn regions (top 20 of 31)",
        )
    )
    # Shape: multiple regions are populated (the sources overlap but none
    # subsumes another), the heaviest mass sits in multi-source regions,
    # and a CTI-only region exists (paper: '00100' = 11).
    assert len(regions) >= 6
    heaviest = max(regions.items(), key=lambda kv: kv[1])[0]
    assert heaviest.count("1") >= 2
    assert regions.get("00100", 0) >= 1
    total = sum(regions.values())
    assert total <= len(bench_result.dataset.all_asns())
    assert total >= 0.8 * len(bench_result.dataset.all_asns())
