"""Table 8 (Appendix F) — countries with >= 0.9 state access footprint."""

import pytest

from repro.analysis import paper
from repro.analysis.footprint import compute_footprints, table8_dominant_countries
from repro.io.tables import render_table


@pytest.fixture(scope="module")
def footprints(bench_result, bench_inputs):
    return compute_footprints(
        bench_result.dataset,
        bench_inputs.prefix2as,
        bench_inputs.geolocation,
        bench_inputs.eyeballs,
    )


def test_bench_table8(benchmark, footprints):
    dominant = benchmark(table8_dominant_countries, footprints)
    print()
    print(
        render_table(
            ("cc", "footprint"),
            dominant,
            title=f"Table 8 — >= 0.9 state footprint (measured {len(dominant)}, "
            f"paper {len(paper.TABLE8_DOMINANT_COUNTRIES)})",
        )
    )
    print(f"paper's club: {', '.join(paper.TABLE8_DOMINANT_COUNTRIES)}")
    # Shape: a club of roughly a dozen-and-a-half countries, overlapping
    # the famous monopolies the paper names.
    assert 6 <= len(dominant) <= 35
    measured = {cc for cc, _ in dominant}
    assert len(measured & set(paper.TABLE8_DOMINANT_COUNTRIES)) >= 3
