"""S3 — Orbis quality findings (§7: 12 false positives, ~140 false
negatives concentrated in the developing world)."""

from repro.analysis import paper
from repro.io.tables import render_table
from repro.text.normalize import normalize_name
from repro.world.countries import country_by_cc


def _orbis_quality(bench_result, bench_inputs, bench_world):
    """Compare Orbis labels against the pipeline-confirmed dataset, the way
    the paper audited the commercial database."""
    confirmed_names = {
        normalize_name(org.org_name) for org in bench_result.dataset.organizations()
    }
    truth_names = {
        normalize_name(gto.operator.name) for gto in bench_world.ground_truth()
    }
    labeled = {
        normalize_name(r.company_name): r
        for r in bench_inputs.orbis.state_owned_telcos()
    }
    false_positives = [
        record for key, record in labeled.items() if key not in truth_names
    ]
    false_negatives = [
        gto
        for gto in bench_world.ground_truth()
        if normalize_name(gto.operator.name) not in labeled
    ]
    fn_countries = {gto.operator.cc for gto in false_negatives}
    return {
        "false_positives": len(false_positives),
        "false_negatives": len(false_negatives),
        "false_negative_countries": len(fn_countries),
        "_fn_objects": false_negatives,
        "_confirmed": len(confirmed_names),
    }


def test_bench_orbis_quality(benchmark, bench_result, bench_inputs, bench_world):
    quality = benchmark(_orbis_quality, bench_result, bench_inputs, bench_world)
    rows = [
        (key, quality[key], paper.ORBIS_QUALITY.get(key, "-"))
        for key in ("false_positives", "false_negatives", "false_negative_countries")
    ]
    print()
    print(
        render_table(
            ("metric", "measured", "paper"), rows, title="Orbis quality audit (§7)"
        )
    )
    # Shape: a handful of FPs, an order of magnitude more FNs, spread over
    # many countries and skewed toward the developing world.
    assert 1 <= quality["false_positives"] <= 60
    assert quality["false_negatives"] > 3 * quality["false_positives"]
    assert quality["false_negative_countries"] > 20
    developing = sum(
        1
        for gto in quality["_fn_objects"]
        if country_by_cc(gto.operator.cc).dev_tier == 0
    )
    assert developing / quality["false_negatives"] > 0.4
