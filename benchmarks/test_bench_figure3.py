"""Figure 3 — three-category Venn (technical / Wikipedia+FH / Orbis)."""

from repro.analysis import paper
from repro.analysis.contributions import venn_three_categories
from repro.io.tables import render_table


def test_bench_figure3(benchmark, bench_result):
    venn = benchmark(venn_three_categories, bench_result)
    print()
    print(
        render_table(
            ("region", "ASes"),
            sorted(venn.items()),
            title=f"Figure 3 — category Venn (paper: all_three "
            f"{paper.FIGURE3_VENN['all_three']}, technical_only "
            f"{paper.FIGURE3_VENN['technical_only']})",
        )
    )
    # Shape: a large shared core, and *every* category contributes a
    # meaningful unique slice — the paper's central methodological claim.
    assert venn["all_three"] > 30
    assert venn["technical_only"] > 20
    assert venn["wiki_fh_only"] + venn["wiki_fh_orbis"] > 0
    assert venn["orbis_only"] + venn["technical_orbis"] > 0
