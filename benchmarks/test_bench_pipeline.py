"""End-to-end pipeline throughput + accuracy gate.

Times the full three-stage classification over the reduced world (one
round: the run includes CTI route propagation and the document analysis)
and gates on ground-truth accuracy, standing in for the paper's expert
validation (§7: experts found no errors in the slices they checked).
"""

from repro.core import validate_against_world
from repro.core.pipeline import StateOwnershipPipeline
from repro.io.tables import render_table


def test_bench_full_pipeline(benchmark, small_bench_inputs, small_bench_world):
    pipeline = StateOwnershipPipeline(small_bench_inputs)
    result = benchmark.pedantic(pipeline.run, rounds=1, iterations=1)
    report = validate_against_world(result, small_bench_world)
    print()
    print(
        render_table(
            ("metric", "value"),
            [
                ("state-owned ASNs found", len(result.dataset.all_asns())),
                ("companies confirmed", len(result.dataset)),
                ("ASN precision", f"{report.asn_precision:.3f}"),
                ("ASN recall", f"{report.asn_recall:.3f}"),
                ("company precision", f"{report.company_precision:.3f}"),
                ("company recall", f"{report.company_recall:.3f}"),
            ],
            title="Full pipeline run (reduced world)",
        )
    )
    assert report.asn_precision > 0.9
    assert report.asn_recall > 0.6
