"""Table 3 — foreign subsidiaries by owner country (AE 12, CN 9, QA 9...)."""

from repro.analysis import paper
from repro.analysis.tables import table3_foreign_subsidiaries
from repro.io.tables import render_table


def test_bench_table3(benchmark, bench_result, bench_world):
    rows = benchmark(table3_foreign_subsidiaries, bench_result)
    print()
    print(
        render_table(
            ("owner", "#targets", "paper", "target countries"),
            [
                (
                    owner,
                    count,
                    paper.TABLE3_SUBSIDIARIES.get(owner, "-"),
                    " ".join(targets),
                )
                for owner, count, targets in rows
            ],
            title="Table 3 — foreign subsidiaries",
        )
    )
    measured = {owner: count for owner, count, _ in rows}
    # Shape: every measured owner is a configured expander (no spurious
    # empires), the big expanders are recovered, and reach correlates with
    # the paper's ranking.
    profiles = set(bench_world.config.expansion_profiles)
    assert set(measured) <= profiles
    assert len(measured) >= len(profiles) * 0.6
    top_measured = {o for o, _ in sorted(measured.items(), key=lambda kv: -kv[1])[:6]}
    top_paper = {"AE", "CN", "QA", "NO", "VN", "SG", "MY"}
    assert len(top_measured & top_paper) >= 4
