"""Micro-benchmark: CTI computation over transit-dominant countries."""

from repro.cti.metric import CTIComputer
from repro.cti.selection import select_cti_candidates
from repro.io.tables import render_table


def test_bench_cti_selection(benchmark, small_bench_world, small_bench_inputs):
    world, inputs = small_bench_world, small_bench_inputs

    def compute():
        cti = CTIComputer(inputs.prefix2as, inputs.geolocation, world.collector)
        return select_cti_candidates(cti, sorted(world.transit_dominant_ccs))

    selection = benchmark.pedantic(compute, rounds=1, iterations=1)
    truth = world.ground_truth_asns()
    print()
    print(
        render_table(
            ("metric", "value"),
            [
                ("countries applied", len(selection.countries_applied)),
                ("ASes selected", len(selection.asns)),
                ("state-owned among them", len(set(selection.asns) & truth)),
            ],
            title="CTI candidate selection",
        )
    )
    assert selection.asns
    assert len(set(selection.asns) & truth) >= 3
