"""Scale-sweep wall-time curve for the zero-copy state plane.

For each scale in ``REPRO_BENCH_SWEEP`` (default ``1,3,10``) this builds a
world on the process backend and scores CTI for every transit-dominant
country through the shared-memory runtime — the end-to-end "build and
score" path the shm plane exists for.  Per scale it records the build
wall time, the CTI scoring wall time (sharded fan-out, collector shipped
as one shared segment), the shared-segment byte volume, and the
coordinator's peak RSS, appending the curve to ``BENCH_scale.json`` under
``REPRO_BENCH_RECORD=1``.

Serial/parallel equivalence at every scale is asserted on a sample
country rather than re-scoring the whole sweep twice: the sampled score
maps must be bit-identical.
"""

from __future__ import annotations

import os
import resource
import time

import pytest

from _record import append_record

from repro.config import WorldConfig
from repro.cti.metric import CTIComputer
from repro.obs import get_metrics
from repro.parallel import ExecutionContext
from repro.world.generator import WorldGenerator

BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "20210701"))
_SWEEP = [
    float(token)
    for token in os.environ.get("REPRO_BENCH_SWEEP", "1,3,10").split(",")
    if token.strip()
]
_JOBS = max(2, min(8, os.cpu_count() or 1))


def _peak_rss_bytes() -> int:
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024


@pytest.mark.parametrize("scale", _SWEEP)
def test_bench_scale_sweep(benchmark, scale):
    metrics = get_metrics()
    shm_before = metrics.counter("runtime.shm_bytes")

    def build_and_score():
        timings = {}
        with ExecutionContext(jobs=_JOBS, backend="process") as context:
            started = time.perf_counter()
            world = WorldGenerator(
                WorldConfig(seed=BENCH_SEED, scale=scale), context=context
            ).generate()
            timings["build_s"] = time.perf_counter() - started

            from repro.core import PipelineInputs

            inputs = PipelineInputs.from_world(world)
            cti = CTIComputer(inputs.prefix2as, inputs.geolocation, inputs.collector)
            eligible = sorted(inputs.cti_eligible_ccs)
            started = time.perf_counter()
            cti.score_countries(eligible, context=context)
            timings["cti_s"] = time.perf_counter() - started
        return world, inputs, cti, eligible, timings

    world, inputs, cti, eligible, timings = benchmark.pedantic(
        build_and_score, rounds=1, iterations=1
    )

    # Equivalence spot check: the serial scorer must reproduce the
    # parallel-precomputed scores bit for bit on a sample country.
    serial = CTIComputer(inputs.prefix2as, inputs.geolocation, inputs.collector)
    for cc in eligible[:3]:
        assert serial.country_cti(cc) == cti.country_cti(cc), cc

    total_s = timings["build_s"] + timings["cti_s"]
    stats = {
        "scale": scale,
        "jobs": _JOBS,
        "asns": len(world.asn_records),
        "countries_scored": len(eligible),
        "build_s": round(timings["build_s"], 3),
        "cti_s": round(timings["cti_s"], 3),
        "total_s": round(total_s, 3),
        "shm_bytes": metrics.counter("runtime.shm_bytes") - shm_before,
        "peak_rss_mb": round(_peak_rss_bytes() / 2**20, 1),
    }
    benchmark.extra_info.update(stats)
    print(
        f"\nscale {scale}: {stats['asns']} ASes, build {stats['build_s']}s, "
        f"cti {stats['cti_s']}s over {stats['countries_scored']} countries "
        f"({stats['shm_bytes']} shm bytes, peak rss {stats['peak_rss_mb']}MB)"
    )

    append_record(
        "scale",
        "scale_sweep",
        tracked={
            "build_s": stats["build_s"],
            "cti_s": stats["cti_s"],
            "total_s": stats["total_s"],
        },
        context={"scale": scale, "seed": BENCH_SEED, "jobs": _JOBS},
        asns=stats["asns"],
        countries_scored=stats["countries_scored"],
        shm_bytes=stats["shm_bytes"],
        peak_rss_mb=stats["peak_rss_mb"],
    )
