"""Table 7 (Appendix D) — state-owned ASes only discovered by CTI."""

from repro.analysis import paper
from repro.analysis.contributions import cti_only_ases
from repro.io.tables import render_table
from repro.world.entities import OperatorRole


def test_bench_table7(benchmark, bench_result, bench_inputs, bench_world):
    rows = benchmark(cti_only_ases, bench_result, bench_inputs.whois)
    print()
    print(
        render_table(
            ("ASN", "cc", "AS name"),
            rows,
            title=f"Table 7 — ASes only discovered by CTI "
            f"(measured {len(rows)}, paper {paper.TABLE7_CTI_ONLY_COUNT})",
        )
    )
    # Shape: a small but non-empty set (paper: 9), dominated by
    # transit/cable/gateway companies that serve no eyeball population.
    assert 1 <= len(rows) <= 40
    transit_like = 0
    for asn, _cc, _name in rows:
        record = bench_world.asn_records.get(asn)
        if record is not None and record.role in (
            OperatorRole.TRANSIT, OperatorRole.CABLE
        ):
            transit_like += 1
    assert transit_like / len(rows) > 0.5
