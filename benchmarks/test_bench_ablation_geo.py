"""A3 — sensitivity to geolocation accuracy (the paper cites 74-98 %)."""

from repro.config import PipelineConfig, SourceNoiseConfig
from repro.core.candidates import harvest_candidates
from repro.io.tables import render_table
from repro.sources.geolocation import GeolocationService

ACCURACIES = (0.74, 0.85, 0.93, 0.98, 1.0)


def _sweep(world, prefix2as, truth_asns):
    rows = []
    for accuracy in ACCURACIES:
        noise = SourceNoiseConfig(geolocation_accuracy=accuracy)
        geolocation = GeolocationService.from_world(world, noise)
        candidates = harvest_candidates(
            table=prefix2as,
            geolocation=geolocation,
            eyeballs=_EMPTY_EYEBALLS,
            cti_selection=None,
            orbis_companies=[],
            wiki_fh_companies=[],
            config=PipelineConfig(),
        )
        selected = candidates.asns()
        covered = len(selected & truth_asns)
        rows.append(
            (accuracy, len(selected), covered, round(covered / len(truth_asns), 3))
        )
    return rows


class _NoEyeballs:
    """Empty eyeball dataset so the sweep isolates the geolocation source."""

    def covered_asns(self):
        return []

    def country_of(self, asn):
        return None

    def country_shares(self, cc):
        return {}


_EMPTY_EYEBALLS = _NoEyeballs()


def test_bench_geolocation_accuracy(benchmark, bench_world, bench_inputs):
    truth = frozenset(bench_world.ground_truth_asns())
    rows = benchmark.pedantic(
        _sweep,
        args=(bench_world, bench_inputs.prefix2as, truth),
        rounds=1,
        iterations=1,
    )
    print()
    print(
        render_table(
            (
                "accuracy",
                "geolocation candidates",
                "state-owned covered",
                "truth coverage",
            ),
            rows,
            title="Ablation — geolocation accuracy (paper band: 74-98 %)",
        )
    )
    by_accuracy = {acc: cov for acc, _n, _c, cov in rows}
    # Coverage degrades monotonically as geolocation gets noisier (diluted
    # country shares push ASes under the 5 % rule) but the source stays
    # useful across the paper's whole accuracy band — which is exactly why
    # the methodology leans on multiple redundant sources.
    coverages = [cov for _a, _n, _c, cov in rows]
    assert coverages == sorted(coverages)
    assert by_accuracy[1.0] > 0.3
    assert by_accuracy[0.74] > 0.4 * by_accuracy[1.0]
