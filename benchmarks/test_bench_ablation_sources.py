"""A1 — drop-one-source ablation.

The paper's "all sources provide a unique contribution" claim, tested
causally: re-run the pipeline with each candidate source disabled and count
the state-owned ASes lost.  Runs on the reduced world (five pipeline runs).
"""

import pytest

from repro.core.pipeline import StateOwnershipPipeline
from repro.io.tables import render_table
from repro.sources.base import InputSource


@pytest.fixture(scope="module")
def baseline(small_bench_inputs):
    return StateOwnershipPipeline(small_bench_inputs).run()


@pytest.mark.parametrize("source", list(InputSource), ids=lambda s: s.name)
def test_bench_ablation_drop_source(benchmark, small_bench_inputs, baseline, source):
    pipeline = StateOwnershipPipeline(small_bench_inputs)
    result = benchmark.pedantic(
        pipeline.run,
        kwargs={"skip_sources": [source]},
        rounds=1,
        iterations=1,
    )
    base_asns = baseline.dataset.all_asns()
    ablated_asns = result.dataset.all_asns()
    lost = base_asns - ablated_asns
    gained = ablated_asns - base_asns
    print()
    print(
        render_table(
            ("metric", "value"),
            [
                ("baseline ASes", len(base_asns)),
                (f"ASes without {source.name}", len(ablated_asns)),
                ("lost", len(lost)),
                ("spuriously gained", len(gained)),
            ],
            title=f"Ablation — drop {source.name} ({source.value})",
        )
    )
    # Every source's removal costs coverage (unique contribution), and
    # removal never massively *adds* ASes.
    assert len(ablated_asns) <= len(base_asns) + 10
    if source is InputSource.CTI:
        # CTI's unique contribution is small but real.
        assert 0 <= len(lost) <= 60
    else:
        assert len(lost) >= 1
