"""Micro-benchmark: policy route propagation vs the static oracle.

For each scale in ``REPRO_BENCH_SWEEP`` (default ``0.3,1``) this builds a
world and times, over the exact origin set CTI scoring walks:

* tree propagation through the static :class:`RoutingTreeCache` oracle;
* tree propagation through the policy engine under a neutral policy;
* full CTI scoring of every eligible country on top of each cache.

The neutral-policy scores are asserted bit-identical to the static scores
before anything is recorded — the overhead number can never come from an
engine that quietly routes differently.  With ``REPRO_BENCH_RECORD=1``
each scale appends one record to ``BENCH_routing.json`` (all tracked
numbers lower-is-better, gated by ``repro bench-diff``).
"""

from __future__ import annotations

import os
import time

import pytest

from _record import append_record
from conftest import _materialize_world

from repro.config import WorldConfig
from repro.core import PipelineInputs
from repro.cti.metric import CTIComputer
from repro.io.tables import render_table
from repro.net.monitors import RouteCollector
from repro.net.routing import NEUTRAL_POLICY

BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "20210701"))
_SWEEP = [
    float(token)
    for token in os.environ.get("REPRO_BENCH_SWEEP", "0.3,1").split(",")
    if token.strip()
]


@pytest.mark.parametrize("scale", _SWEEP)
def test_bench_routing(benchmark, scale):
    world = _materialize_world(WorldConfig(seed=BENCH_SEED, scale=scale))
    graph = world.graph
    monitors = world.collector.monitors
    inputs = PipelineInputs.from_world(world)
    eligible = sorted(inputs.cti_eligible_ccs)

    def propagate_and_score():
        timings = {}
        static_collector = RouteCollector(graph, monitors)
        policy_collector = RouteCollector(graph, monitors, policy=NEUTRAL_POLICY)
        static_cti = CTIComputer(inputs.prefix2as, inputs.geolocation, static_collector)
        policy_cti = CTIComputer(inputs.prefix2as, inputs.geolocation, policy_collector)
        origins = sorted(
            {origin for cc in eligible for origin in static_cti.scored_origins(cc)}
        )

        started = time.perf_counter()
        for origin in origins:
            static_collector.paths_to(origin)
        timings["static_trees_s"] = time.perf_counter() - started

        started = time.perf_counter()
        for origin in origins:
            policy_collector.paths_to(origin)
        timings["policy_trees_s"] = time.perf_counter() - started

        # Scoring reuses the per-collector tree caches warmed above, so
        # the CTI pair isolates the scoring arithmetic from propagation.
        started = time.perf_counter()
        static_cti.score_countries(eligible)
        timings["static_cti_s"] = time.perf_counter() - started

        started = time.perf_counter()
        policy_cti.score_countries(eligible)
        timings["policy_cti_s"] = time.perf_counter() - started
        return static_cti, policy_cti, origins, timings

    static_cti, policy_cti, origins, timings = benchmark.pedantic(
        propagate_and_score, rounds=1, iterations=1
    )

    # Propagated CTI must equal static CTI exactly on a policy-neutral
    # world: same floats, not approximately the same.
    for cc in eligible:
        assert policy_cti.country_cti(cc) == static_cti.country_cti(cc), cc

    overhead = (
        timings["policy_trees_s"] / timings["static_trees_s"]
        if timings["static_trees_s"]
        else float("inf")
    )
    print()
    print(
        render_table(
            ("metric", "value"),
            [
                ("ASes", len(graph)),
                ("origins propagated", len(origins)),
                ("countries scored", len(eligible)),
                ("static trees", f"{timings['static_trees_s']:.3f}s"),
                ("policy trees", f"{timings['policy_trees_s']:.3f}s"),
                ("policy overhead", f"{overhead:.2f}x"),
                ("static CTI", f"{timings['static_cti_s']:.3f}s"),
                ("policy CTI", f"{timings['policy_cti_s']:.3f}s"),
            ],
            title=f"Route propagation (scale {scale})",
        )
    )

    append_record(
        "routing",
        f"routing_scale_{scale}",
        tracked=timings,
        context={
            "scale": scale,
            "seed": BENCH_SEED,
            "origins": len(origins),
            "countries": len(eligible),
        },
        policy_overhead_x=round(overhead, 3),
    )
