"""Query-server benchmarks: throughput and tail latency under load.

Concurrent clients hammer a :class:`~repro.serve.ServerThread` over real
localhost sockets with persistent connections, while the driver performs
an atomic snapshot swap mid-benchmark.  The benchmark asserts the swap
invariant the serve layer promises — **zero failed requests during a hot
swap** — and records queries/sec plus p50/p95/p99 latency in
``extra_info``.

With ``REPRO_BENCH_RECORD=1`` the headline numbers are appended to the
repo-root ``BENCH_serve.json`` (JSON lines, append-only), committing the
perf trajectory alongside the code.
"""

from __future__ import annotations

import http.client
import json
import os
import threading
import time

import pytest

from _record import append_record

from repro.core.dataset import OrganizationRecord, StateOwnedDataset
from repro.io.jsonio import dump_json
from repro.serve import ServerThread, SnapshotStore

_CLIENTS = int(os.environ.get("REPRO_BENCH_SERVE_CLIENTS", "4"))
_REQUESTS_PER_CLIENT = int(os.environ.get("REPRO_BENCH_SERVE_REQUESTS", "300"))
_ORGS = 200
_ASNS_PER_ORG = 4

_CCS = ("NO", "SE", "UZ", "AR", "ZA", "GR", "IN", "SA", "RU", "CN")


def _synthetic_dataset(orgs: int, generation: int) -> StateOwnedDataset:
    """A dataset shaped like a full-scale export (~200 orgs, parents,
    foreign subsidiaries), varied by ``generation`` so swaps change bytes.
    """
    records = []
    asns = {}
    for i in range(orgs):
        cc = _CCS[i % len(_CCS)]
        parent = f"ORG-{i - 1}" if i % 7 == 3 else None
        target = _CCS[(i + 3) % len(_CCS)] if i % 5 == 4 else None
        org_id = f"ORG-{i}"
        records.append(
            OrganizationRecord(
                conglomerate_name=f"Conglomerate {i // 10}",
                org_id=org_id,
                org_name=f"Operator {i} gen{generation}",
                ownership_cc=cc,
                ownership_country_name=cc,
                rir="RIPE",
                source="Company's website",
                quote="q",
                quote_lang="English",
                url="https://example.net",
                parent_org=parent,
                target_cc=target,
                target_country_name=target,
            )
        )
        base = 10_000 + i * _ASNS_PER_ORG + generation
        asns[org_id] = [base + k for k in range(_ASNS_PER_ORG)]
    return StateOwnedDataset(records, asns)


def _endpoints(dataset: StateOwnedDataset):
    """The request mix: every endpoint family, weighted toward lookups."""
    sample_asns = sorted(dataset.all_asns())[:: len(dataset)]
    mix = [f"/asn/{asn}" for asn in sample_asns[:4]]
    mix += [f"/country/{cc}" for cc in _CCS[:3]]
    mix += ["/snapshot", "/health", "/cti/top?n=5"]
    return mix


class _LoadResult:
    def __init__(self):
        self.latencies = []
        self.failures = []
        self.lock = threading.Lock()


def _client_worker(port, endpoints, n_requests, result):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    latencies, failures = [], []
    try:
        for i in range(n_requests):
            target = endpoints[i % len(endpoints)]
            started = time.perf_counter()
            try:
                conn.request("GET", target)
                resp = conn.getresponse()
                body = resp.read()
                if resp.status != 200:
                    failures.append(f"{target} -> {resp.status}")
                else:
                    json.loads(body)
            except Exception as exc:  # noqa: BLE001 - failure is the metric
                failures.append(f"{target} -> {exc!r}")
                conn.close()
                conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
            latencies.append(time.perf_counter() - started)
    finally:
        conn.close()
    with result.lock:
        result.latencies.extend(latencies)
        result.failures.extend(failures)


def _percentile(sorted_values, fraction):
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(fraction * (len(sorted_values) - 1)))
    return sorted_values[index]


@pytest.fixture()
def serve_stack(tmp_path):
    path = tmp_path / "dataset.json"
    dataset = _synthetic_dataset(_ORGS, generation=0)
    dump_json(dataset, path)
    store = SnapshotStore(path)
    store.load_initial()
    with ServerThread(store, poll_interval=30.0) as server:
        yield server, store, dataset, path


def test_bench_serve_concurrent_hot_swap(benchmark, serve_stack):
    server, store, dataset, path = serve_stack
    endpoints = _endpoints(dataset)

    def run_load():
        result = _LoadResult()
        threads = [
            threading.Thread(
                target=_client_worker,
                args=(server.port, endpoints, _REQUESTS_PER_CLIENT, result),
            )
            for _ in range(_CLIENTS)
        ]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        # Mid-benchmark atomic swap: export a new generation and flip it
        # under live traffic.  The zero-failures assert below is the
        # swap-invariant check.
        swaps_before = store.swaps
        time.sleep(0.05)
        dump_json(_synthetic_dataset(_ORGS, generation=1), path)
        store.poll()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started
        result.elapsed = elapsed
        result.swaps = store.swaps - swaps_before
        return result

    result = benchmark.pedantic(run_load, rounds=1, iterations=1)

    total = _CLIENTS * _REQUESTS_PER_CLIENT
    assert not result.failures, result.failures[:5]
    assert len(result.latencies) == total
    assert result.swaps == 1, "the hot swap must complete mid-benchmark"

    ordered = sorted(result.latencies)
    qps = total / result.elapsed
    stats = {
        "clients": _CLIENTS,
        "requests": total,
        "qps": round(qps, 1),
        "p50_ms": round(_percentile(ordered, 0.50) * 1000, 3),
        "p95_ms": round(_percentile(ordered, 0.95) * 1000, 3),
        "p99_ms": round(_percentile(ordered, 0.99) * 1000, 3),
        "max_ms": round(ordered[-1] * 1000, 3),
        "swaps_mid_benchmark": result.swaps,
        "failed_requests": len(result.failures),
        "organizations": len(dataset),
        "asns": len(dataset.all_asns()),
    }
    benchmark.extra_info.update(stats)

    print()
    print(
        f"serve: {qps:,.0f} req/s over {_CLIENTS} clients "
        f"(p50 {stats['p50_ms']}ms, p95 {stats['p95_ms']}ms, "
        f"1 hot swap, 0 failures)"
    )

    append_record(
        "serve",
        "serve_concurrent_hot_swap",
        tracked={
            "qps": stats["qps"],
            "p50_ms": stats["p50_ms"],
            "p95_ms": stats["p95_ms"],
        },
        context={"clients": _CLIENTS, "requests": total},
        **stats,
    )


def test_bench_serve_index_build(benchmark, serve_stack):
    """Cost of the off-thread rebuild a hot swap performs."""
    from repro.serve import build_index

    _, _, dataset, path = serve_stack
    index = benchmark(build_index, path)
    assert len(index.dataset) == len(dataset)
    benchmark.extra_info["organizations"] = len(dataset)
    benchmark.extra_info["asns"] = len(dataset.all_asns())
