"""Table 1 — confirmation-source breakdown (websites confirm ~50 %)."""

from repro.analysis import paper
from repro.analysis.tables import table1_confirmation_sources
from repro.io.tables import render_table


def test_bench_table1(benchmark, bench_result):
    table = benchmark(table1_confirmation_sources, bench_result)
    rows = [
        (
            source,
            table.get(source, "-"),
            paper.TABLE1_CONFIRMATION_SOURCES.get(source, "-"),
        )
        for source in sorted(set(table) | set(paper.TABLE1_CONFIRMATION_SOURCES))
    ]
    print()
    print(
        render_table(
            ("confirmation source", "measured", "paper"),
            rows,
            title="Table 1 — confirmation sources",
        )
    )
    total = sum(table.values())
    websites = table.get("Company's website", 0)
    # Shape: company websites are the dominant confirmation source (paper:
    # 161 of 302 ~ 53 %), annual reports are second among corporate sources.
    assert websites == max(table.values())
    assert 0.35 <= websites / total <= 0.85
    assert table.get("Company's annual report", 0) > 0
    assert table.get("Freedom House", 0) > 0
