"""A2 — sensitivity of the §4.1 candidate rule to the 5 % threshold."""

from repro.config import PipelineConfig
from repro.core.candidates import harvest_candidates
from repro.io.tables import render_table

THRESHOLDS = (0.01, 0.02, 0.05, 0.1, 0.2)


def _sweep(inputs, truth_asns):
    rows = []
    for threshold in THRESHOLDS:
        candidates = harvest_candidates(
            table=inputs.prefix2as,
            geolocation=inputs.geolocation,
            eyeballs=inputs.eyeballs,
            cti_selection=None,
            orbis_companies=[],
            wiki_fh_companies=[],
            config=PipelineConfig(candidate_share_threshold=threshold),
        )
        selected = candidates.asns()
        covered = len(selected & truth_asns)
        rows.append(
            (threshold, len(selected), covered, round(covered / len(truth_asns), 3))
        )
    return rows


def test_bench_threshold_sweep(benchmark, bench_inputs, bench_world):
    truth = frozenset(bench_world.ground_truth_asns())
    rows = benchmark.pedantic(
        _sweep, args=(bench_inputs, truth), rounds=1, iterations=1
    )
    print()
    print(
        render_table(
            ("threshold", "candidate ASes", "state-owned covered", "truth coverage"),
            rows,
            title="Ablation — candidate market-share threshold (paper uses 5 %)",
        )
    )
    counts = [count for _t, count, _c, _r in rows]
    coverage = [cov for *_x, cov in rows]
    # Monotonicity: higher thresholds shrink the candidate set and its
    # truth coverage; the paper's 5 % already covers the major operators.
    assert counts == sorted(counts, reverse=True)
    assert coverage == sorted(coverage, reverse=True)
    five_pct = dict((t, cov) for t, _c, _cc, cov in rows)[0.05]
    assert five_pct > 0.35
