"""Single-pass analytic kernel benchmarks: cone sizing and address accounting.

Each benchmark times the batch kernel (bitset customer-cone sweep, bottom-up
trie address accounting) against the retained naive reference on the same
world, at three world scales.  The measured speedup and both raw timings
land in ``extra_info`` so exported ``BENCH_*.json`` files carry the
old-vs-new comparison, and every round re-checks that the kernel output is
byte-identical to the reference.

The cone benchmark resets the graph's memoized sweep inside the measured
callable, so rounds time the cold kernel rather than the version-counter
cache hit.
"""

from __future__ import annotations

import os
import time

import pytest

from _record import append_record

from repro.config import WorldConfig
from repro.net.prefix import (
    PrefixTrie,
    _reference_summarize_address_counts,
    summarize_address_counts,
)
from repro.world.generator import WorldGenerator

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "20210701"))

#: (fixture name, nominal scale label) — three worlds per kernel.
_WORLDS = [
    ("small_bench_world", 0.3),
    ("mid_bench_world", 0.6),
    ("bench_world", BENCH_SCALE),
]


@pytest.fixture(scope="session")
def mid_bench_world():
    """A mid-size world between the smoke scale and the full bench scale."""
    return WorldGenerator(WorldConfig(seed=BENCH_SEED, scale=0.6)).generate()


def _best_of(fn, rounds):
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.mark.parametrize("world_fixture,scale", _WORLDS)
def test_bench_batch_cone_sizes(benchmark, request, world_fixture, scale):
    world = request.getfixturevalue(world_fixture)
    graph = world.graph
    asns = graph.asns

    def cold_sweep():
        graph._cone_sizes = None  # defeat memoization: time the kernel itself
        return graph.all_cone_sizes()

    fast = dict(benchmark.pedantic(cold_sweep, rounds=7, iterations=1))
    reference = graph._reference_cone_sizes(asns)
    assert fast == reference
    assert repr(fast) == repr(reference)  # byte-identical, ordering included

    fast_s = _best_of(cold_sweep, 7)
    reference_s = _best_of(lambda: graph._reference_cone_sizes(asns), 3)
    speedup = reference_s / fast_s
    benchmark.extra_info["scale"] = scale
    benchmark.extra_info["ases"] = len(asns)
    benchmark.extra_info["kernel_ms"] = round(fast_s * 1e3, 3)
    benchmark.extra_info["reference_ms"] = round(reference_s * 1e3, 3)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    print(
        f"\ncone sweep @ scale {scale}: {len(asns)} ASes, "
        f"kernel {fast_s * 1e3:.2f}ms vs naive {reference_s * 1e3:.2f}ms "
        f"({speedup:.1f}x)"
    )
    assert speedup > 1.0
    if scale >= 1.0:
        # Acceptance floor at the default world scale.
        assert speedup >= 5.0
    append_record(
        "kernels",
        "cone_sweep",
        tracked={"kernel_ms": round(fast_s * 1e3, 3)},
        context={"scale": scale, "seed": BENCH_SEED},
        ases=len(asns),
        speedup=round(speedup, 2),
    )


@pytest.mark.parametrize("world_fixture,scale", _WORLDS)
def test_bench_address_summarization(benchmark, request, world_fixture, scale):
    world = request.getfixturevalue(world_fixture)
    pairs = list(world.prefix_table())

    fast = benchmark.pedantic(
        lambda: summarize_address_counts(pairs), rounds=7, iterations=1
    )
    reference = _reference_summarize_address_counts(pairs)
    assert fast == reference
    assert repr(fast) == repr(reference)

    # End-to-end summarization: both paths pay the same trie build, so this
    # ratio understates the kernel.  The accounting-only comparison below
    # pits the one-pass post-order walk against per-prefix queries on one
    # prebuilt trie.
    fast_s = _best_of(lambda: summarize_address_counts(pairs), 7)
    reference_s = _best_of(lambda: _reference_summarize_address_counts(pairs), 3)
    speedup = reference_s / fast_s

    trie = PrefixTrie()
    for prefix, value in pairs:
        trie.insert(prefix, value)
    stored = [prefix for prefix, _ in trie.items()]

    def batch_walk():
        trie._uncovered = None  # defeat memoization: time the walk itself
        return trie.uncovered_address_counts()

    def per_prefix():
        return {p: trie._reference_uncovered_addresses(p) for p in stored}

    assert dict(batch_walk()) == per_prefix()
    walk_s = _best_of(batch_walk, 7)
    queries_s = _best_of(per_prefix, 3)
    accounting_speedup = queries_s / walk_s

    benchmark.extra_info["scale"] = scale
    benchmark.extra_info["prefixes"] = len(pairs)
    benchmark.extra_info["kernel_ms"] = round(fast_s * 1e3, 3)
    benchmark.extra_info["reference_ms"] = round(reference_s * 1e3, 3)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["accounting_walk_ms"] = round(walk_s * 1e3, 3)
    benchmark.extra_info["accounting_queries_ms"] = round(queries_s * 1e3, 3)
    benchmark.extra_info["accounting_speedup"] = round(accounting_speedup, 2)
    print(
        f"\naddress summarization @ scale {scale}: {len(pairs)} prefixes, "
        f"end-to-end {fast_s * 1e3:.2f}ms vs naive {reference_s * 1e3:.2f}ms "
        f"({speedup:.1f}x); accounting walk {walk_s * 1e3:.2f}ms vs "
        f"per-prefix queries {queries_s * 1e3:.2f}ms "
        f"({accounting_speedup:.1f}x)"
    )
    assert speedup > 1.0
    assert accounting_speedup > 1.0
    append_record(
        "kernels",
        "address_summarization",
        tracked={
            "kernel_ms": round(fast_s * 1e3, 3),
            "accounting_walk_ms": round(walk_s * 1e3, 3),
        },
        context={"scale": scale, "seed": BENCH_SEED},
        prefixes=len(pairs),
        speedup=round(speedup, 2),
    )
