"""S1 — the §4 candidate funnel (793/716/466/1043/93/1091 ASes)."""

from repro.analysis import paper
from repro.core.candidates import harvest_candidates
from repro.io.tables import render_table


def test_bench_candidate_funnel(benchmark, bench_result, bench_inputs):
    inputs = bench_inputs

    def harvest():
        return harvest_candidates(
            table=inputs.prefix2as,
            geolocation=inputs.geolocation,
            eyeballs=inputs.eyeballs,
            cti_selection=bench_result.cti_selection,
            orbis_companies=[
                (r.company_name, r.cc) for r in inputs.orbis.state_owned_telcos()
            ],
            wiki_fh_companies=inputs.wikipedia.state_owned_company_names(),
        )

    candidates = benchmark(harvest)
    stats = dict(candidates.stats)
    stats["cti_countries"] = len(
        bench_result.cti_selection.countries_applied
        if bench_result.cti_selection
        else ()
    )
    rows = [
        (key, stats.get(key, "-"), paper.CANDIDATE_FUNNEL.get(key, "-"))
        for key in sorted(set(stats) | set(paper.CANDIDATE_FUNNEL))
    ]
    print()
    print(
        render_table(
            ("stat", "measured", "paper"), rows, title="Candidate funnel (§4)"
        )
    )
    # Shape: geolocation and eyeballs are comparable in size with a large
    # intersection; CTI is an order of magnitude smaller.
    geo, eye = stats["geolocation_asns"], stats["eyeball_asns"]
    assert 0.5 < geo / eye < 2.0
    assert stats["geo_eyeball_intersection"] > 0.3 * min(geo, eye)
    assert stats["cti_asns"] < 0.25 * geo
    assert stats["total_asns"] >= stats["geo_eyeball_union"]
