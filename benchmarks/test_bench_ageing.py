"""Extension bench — dataset ageing under ownership churn (§9).

The paper argues a frozen list needs maintenance because ownership is
dynamic.  This bench quantifies the decay: freeze the pipeline's dataset,
churn the world for five years at the paper's qualitative rates, and track
the frozen snapshot's precision/recall against the evolving ground truth.
"""

import os

from repro.config import WorldConfig
from repro.io.tables import render_table
from repro.world.events import ChurnRates, ageing_study
from repro.world.generator import WorldGenerator

_BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "20210701"))


def test_bench_dataset_ageing(benchmark, small_bench_inputs):
    # A private world copy: the churn mutates ownership in place.
    world = WorldGenerator(WorldConfig(seed=_BENCH_SEED, scale=0.3)).generate()
    frozen = world.ground_truth_asns()  # a perfect day-0 snapshot

    rows = benchmark.pedantic(
        ageing_study,
        kwargs={
            "world": world,
            "frozen_asns": frozen,
            "start_year": 2021,
            "years": 5,
            "rates": ChurnRates(
                privatization=0.02,
                nationalization=0.006,
                new_subsidiary_per_expander=0.12,
            ),
        },
        rounds=1,
        iterations=1,
    )
    print()
    print(
        render_table(
            (
                "year",
                "events",
                "priv",
                "natl",
                "new subs",
                "frozen precision",
                "frozen recall",
            ),
            [
                (
                    r["year"],
                    r["events"],
                    r["privatizations"],
                    r["nationalizations"],
                    r["new_subsidiaries"],
                    r["precision"],
                    r["recall"],
                )
                for r in rows
            ],
            title="Dataset ageing — a frozen 2020 snapshot vs evolving truth",
        )
    )
    # Decay is gradual (the paper: updating later is far cheaper than
    # rebuilding) — after five years the snapshot is degraded but usable.
    assert rows[-1]["precision"] >= 0.75
    assert rows[-1]["precision"] <= rows[0]["precision"] + 1e-9
    assert sum(r["events"] for r in rows) > 0
