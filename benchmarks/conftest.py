"""Benchmark fixtures.

The benchmark suite regenerates every table and figure of the paper from
one full-scale pipeline run (the run itself is timed by the pipeline
benchmark).  ``REPRO_BENCH_SCALE`` overrides the world size (default 1.0 —
the calibrated full-scale world; use e.g. 0.3 for a quick pass).

Each benchmark prints its artifact next to the paper's published values, so
``pytest benchmarks/ --benchmark-only -s`` doubles as the EXPERIMENTS
regeneration harness.
"""

from __future__ import annotations

import os

import pytest

from repro.config import WorldConfig
from repro.core import (
    PipelineInputs,
    StateOwnershipPipeline,
    validate_against_world,
)
from repro.obs import get_metrics, reset_metrics
from repro.parallel import ResultCache, resolve_cache_dir
from repro.world.generator import WorldGenerator
from repro.world.worldcache import load_or_generate

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "20210701"))


def _materialize_world(config: WorldConfig):
    """Fixture worlds go through the digest-verified blob cache when
    ``REPRO_WORLD_CACHE=1`` (the CI jobs share blobs via ``actions/cache``).

    Only the *fixture* worlds: benchmarks that time generation itself
    keep calling :class:`WorldGenerator` directly.
    """
    if os.environ.get("REPRO_WORLD_CACHE") == "1":
        root = resolve_cache_dir()
        cache = ResultCache(root) if root is not None else None
        return load_or_generate(config, cache)
    return WorldGenerator(config).generate()


@pytest.fixture(scope="session", autouse=True)
def _fresh_metrics():
    """Start every benchmark session from a clean stage-metric registry."""
    reset_metrics()
    yield


@pytest.fixture(autouse=True)
def _attach_stage_metrics(request):
    """Attach the per-stage metric snapshot to each benchmark record.

    After a benchmarked test finishes, the cumulative counter/gauge/timing
    snapshot (stage wall times with p50/p95, per-source candidate counts,
    CTI pruning counters...) lands in the record's ``extra_info``, so the
    exported ``BENCH_*.json`` carries a per-stage breakdown rather than
    end-to-end times alone.
    """
    yield
    benchmark = getattr(request.node, "funcargs", {}).get("benchmark")
    extra_info = getattr(benchmark, "extra_info", None)
    if extra_info is not None:
        extra_info["stage_metrics"] = get_metrics().snapshot()


@pytest.fixture(scope="session")
def bench_world():
    return _materialize_world(WorldConfig(seed=BENCH_SEED, scale=BENCH_SCALE))


@pytest.fixture(scope="session")
def bench_inputs(bench_world):
    return PipelineInputs.from_world(bench_world)


@pytest.fixture(scope="session")
def bench_result(bench_inputs):
    return StateOwnershipPipeline(bench_inputs).run()


@pytest.fixture(scope="session")
def bench_validation(bench_result, bench_world):
    return validate_against_world(bench_result, bench_world)


@pytest.fixture(scope="session")
def small_bench_world():
    """A reduced world for the expensive ablation sweeps."""
    return _materialize_world(WorldConfig(seed=BENCH_SEED, scale=0.3))


@pytest.fixture(scope="session")
def small_bench_inputs(small_bench_world):
    return PipelineInputs.from_world(small_bench_world)
