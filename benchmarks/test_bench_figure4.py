"""Figure 4 — histograms of per-country state footprint, by RIR."""

import pytest

from repro.analysis.footprint import compute_footprints, figure4_histograms
from repro.io.tables import render_table


@pytest.fixture(scope="module")
def footprints(bench_result, bench_inputs):
    return compute_footprints(
        bench_result.dataset,
        bench_inputs.prefix2as,
        bench_inputs.geolocation,
        bench_inputs.eyeballs,
    )


def _bin_totals(bins):
    return {
        label: sum(int(count) for _rir, count in groups)
        for label, groups in bins.items()
    }


def test_bench_figure4a_addresses(benchmark, footprints):
    bins = benchmark(figure4_histograms, footprints, "addresses")
    totals = _bin_totals(bins)
    print()
    print(
        render_table(
            ("bin", "countries", "per-RIR"),
            [
                (
                    label,
                    totals[label],
                    " ".join(f"{rir}:{count}" for rir, count in bins[label]),
                )
                for label in sorted(bins)
            ],
            title="Figure 4a — countries' state-owned address-space footprint",
        )
    )
    # Shape: a big zero bin (ARIN/private world), a visible >= 0.5 tail
    # (paper: 49 countries) and a >= 0.9 club (paper: 13).
    assert totals["0.0"] == max(totals.values())
    high = sum(totals[f"{i / 10:.1f}"] for i in range(5, 11))
    assert high >= 20
    assert sum(totals[f"{i / 10:.1f}"] for i in (8, 9, 10)) >= 3


def test_bench_figure4b_eyeballs(benchmark, footprints):
    bins = benchmark(figure4_histograms, footprints, "eyeballs")
    totals = _bin_totals(bins)
    print()
    print(
        render_table(
            ("bin", "countries", "per-RIR"),
            [
                (
                    label,
                    totals[label],
                    " ".join(f"{rir}:{count}" for rir, count in bins[label]),
                )
                for label in sorted(bins)
            ],
            title="Figure 4b — countries' state-owned eyeball footprint",
        )
    )
    high = sum(totals[f"{i / 10:.1f}"] for i in range(5, 11))
    assert high >= 20   # paper: 42 countries above 0.5
    # ARIN countries concentrate in the zero bin.
    zero_rirs = dict((rir, int(count)) for rir, count in bins["0.0"])
    assert zero_rirs.get("ARIN", 0) >= 5
