"""Figure 6 (Appendix A) — world map of majority / minority state ownership."""

from collections import Counter

from repro.analysis.footprint import figure6_map_data
from repro.analysis.tables import _minority_countries
from repro.io.tables import render_table
from repro.world.countries import country_by_cc


def test_bench_figure6(benchmark, bench_result):
    minority = _minority_countries(bench_result)
    colors = benchmark(figure6_map_data, bench_result.dataset, minority)
    by_region = {}
    for cc, color in colors.items():
        region = country_by_cc(cc).region
        by_region.setdefault(region, Counter())[color] += 1
    print()
    print(
        render_table(
            ("region", "majority", "minority", "none"),
            [
                (region, counts["majority"], counts["minority"], counts["none"])
                for region, counts in sorted(by_region.items())
            ],
            title="Figure 6 — state-ownership map by region",
        )
    )
    # Shape: the majority color dominates Africa and Asia; the Americas
    # (ARIN + LACNIC mix) lean to "none"; minority countries exist but are
    # a small band (paper's orange).
    africa = by_region["Africa"]
    americas = by_region["Americas"]
    assert africa["majority"] > africa["none"]
    assert americas["none"] > 0
    total_minority = sum(c["minority"] for c in by_region.values())
    total_majority = sum(c["majority"] for c in by_region.values())
    assert 0 < total_minority < total_majority
    assert colors["US"] == "none"
