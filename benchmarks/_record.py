"""Append-only ``BENCH_*.json`` trajectory recording.

Started for serve in PR 6, generalized here: with ``REPRO_BENCH_RECORD=1``
each benchmark appends one JSON line to a repo-root ``BENCH_<name>.json``
file, committing the perf trajectory alongside the code.  Every record
carries:

* ``benchmark`` — the benchmark's stable name;
* ``context`` — the knobs that must match for two records to be
  comparable (scale, jobs, client counts, ...); ``repro bench-diff`` only
  compares records with identical context, so a reduced-scale CI run
  never diffs against a full-scale workstation baseline;
* ``tracked`` — the regression-gated numbers.  Direction is inferred
  from the key: ``qps`` / ``*_per_s`` are higher-is-better, everything
  else (``*_s``, ``*_ms``) lower-is-better;
* ``recorded_at`` — UTC timestamp.

Extra keys are preserved verbatim for humans; only ``tracked`` is gated.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Dict, Optional

_ROOT = Path(__file__).resolve().parents[1]


def recording_enabled() -> bool:
    return os.environ.get("REPRO_BENCH_RECORD") == "1"


def mean_seconds(benchmark) -> float:
    """Mean wall time of a completed pytest-benchmark measurement."""
    return float(benchmark.stats.stats.mean)


def append_record(
    trajectory: str,
    benchmark: str,
    tracked: Dict[str, float],
    context: Optional[Dict[str, Any]] = None,
    **extra: Any,
) -> None:
    """Append one record to ``BENCH_<trajectory>.json`` (when recording)."""
    if not recording_enabled():
        return
    record: Dict[str, Any] = {
        "benchmark": benchmark,
        "context": dict(context or {}),
        "tracked": {k: round(float(v), 6) for k, v in tracked.items()},
        **extra,
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }
    path = _ROOT / f"BENCH_{trajectory}.json"
    with path.open("a", encoding="utf-8") as fh:
        fh.write(json.dumps(record) + "\n")
