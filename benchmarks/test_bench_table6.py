"""Table 6 (Appendix B) — per-source contributions to the final list."""

from repro.analysis import paper
from repro.analysis.contributions import source_contributions
from repro.io.tables import render_table


def test_bench_table6(benchmark, bench_result):
    table = benchmark(source_contributions, bench_result)
    print()
    print(
        render_table(
            ("source", "ASes", "subsidiaries", "minority", "paper (a/s/m)"),
            [
                (
                    source,
                    ases,
                    subs,
                    minority,
                    "/".join(
                        str(v)
                        for v in paper.TABLE6_SOURCE_CONTRIBUTIONS.get(source, ())
                    ),
                )
                for source, (ases, subs, minority) in table.items()
            ],
            title="Table 6 — individual contribution of each data source",
        )
    )
    # Shape: each source contributes hundreds of ASes except CTI, which
    # contributes an order of magnitude fewer (paper: 15 vs 586-728);
    # subsidiaries appear in every popularity-based source; CTI finds none
    # (transit gateways are domestic).
    for code in ("G", "E", "W", "O"):
        assert table[code][0] > 5 * table["C"][0], code
        assert table[code][0] > 100
    assert table["C"][0] > 0
    assert table["C"][1] <= 2
    assert table["TOTAL"][0] == len(bench_result.dataset.all_asns())
