"""Table 5 — the ten largest customer cones of state-owned ASes."""

from repro.analysis import paper
from repro.analysis.cones import table5_top_cones
from repro.io.tables import render_table

#: Countries whose carriers appear in the paper's Table 5.
_PAPER_TOP_CONE_CCS = {"SG", "RU", "AO", "CO", "CN", "CH", "PL", "BD"}


def test_bench_table5(benchmark, bench_result, bench_inputs):
    rows = benchmark(
        table5_top_cones,
        bench_result.dataset,
        bench_inputs.asrank,
        bench_inputs.whois,
    )
    print()
    print(
        render_table(
            ("ASN", "AS name", "cc", "cone size"),
            rows,
            title="Table 5 — largest customer cones of state-owned ASes "
            "(paper: SingTel 4235 ... BSCCL 556)",
        )
    )
    print("paper's table for comparison:")
    print(
        render_table(
            ("AS", "cc", "cone"),
            paper.TABLE5_TOP_CONES,
        )
    )
    assert len(rows) == 10
    sizes = [size for *_x, size in rows]
    assert sizes == sorted(sizes, reverse=True)
    # Shape: the international state carriers dominate the ranking — most
    # of the top-10 countries overlap the paper's list.
    measured_ccs = {cc for _a, _n, cc, _s in rows}
    assert len(measured_ccs & _PAPER_TOP_CONE_CCS) >= 4
    # And the top cone is an order of magnitude above a typical stub.
    assert sizes[0] > 100
