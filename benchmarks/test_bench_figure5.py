"""Figure 5 — customer-cone growth 2010-2020 of the submarine-cable ASes."""

from repro.analysis.cones import figure5_growth_series
from repro.sources.asrank import linear_trend
from repro.world.entities import OperatorRole


def test_bench_figure5(benchmark, bench_result, bench_inputs, bench_world):
    series = benchmark(
        figure5_growth_series, bench_result.dataset, bench_inputs.asrank, 2
    )
    print()
    for asn, history in series.items():
        record = bench_world.asn_records.get(asn)
        role = record.role.value if record else "?"
        cc = record.cc if record else "?"
        points = " ".join(
            f"{year}:{size}" for (year, month), size in history if month == 1
        )
        print(f"AS{asn} ({cc}, {role}): {points}")
    # Shape: the fastest growers start near zero and end with real cones —
    # the Angola Cables / BSCCL ramp — and their regression slope is
    # strongly positive.
    assert len(series) == 2
    for asn, history in series.items():
        start, end = history[0][1], history[-1][1]
        assert end > max(10, 3 * max(start, 1))
        assert linear_trend(history) > 0
    # At least one of the two is a cable/transit operator.
    roles = {
        bench_world.asn_records[a].role for a in series if a in bench_world.asn_records
    }
    assert roles & {OperatorRole.CABLE, OperatorRole.TRANSIT, OperatorRole.INCUMBENT}
