"""Table 2 — countries participating in Internet operators (123/19/24)."""

from repro.analysis import paper
from repro.analysis.tables import table2_country_participation
from repro.io.tables import render_table
from repro.world.countries import COUNTRIES


def test_bench_table2(benchmark, bench_result):
    table = benchmark(table2_country_participation, bench_result)
    rows = [
        (key, table.get(key, "-"), paper.TABLE2_PARTICIPATION.get(key, "-"))
        for key in sorted(set(table) | set(paper.TABLE2_PARTICIPATION))
    ]
    print()
    print(
        render_table(
            ("participation", "measured", "paper"),
            rows,
            title="Table 2 — country participation",
        )
    )
    # Shape: roughly half the world's countries majority-own an operator;
    # subsidiary owners are an order of magnitude fewer; minority owners a
    # small set.
    majority = table["state_owned_operators"]
    assert 0.35 <= majority / len(COUNTRIES) <= 0.7   # paper: 0.53
    assert table["subsidiaries"] < majority / 3
    assert table["minority_state_owned"] < majority
    assert table["total_countries"] >= majority
