"""World-generation benchmarks: serial vs fanned-out vs cached.

Three single-round measurements of building the same world:

* the serial baseline,
* the parallel build (per-country planning phases fanned through a
  run-scoped worker runtime on the process backend), and
* the warm blob-cache load (the pickled world served from disk, keyed by
  its config fingerprint — what warm ``run``/``report``/``validate``
  invocations pay instead of generating).

The parallel world must stay bit-identical to the serial one, so the
parallel benchmark asserts record-level equality rather than trusting the
fan-out.  ``extra_info`` carries the pool-lifecycle counters
(``parallel.pool_spawns`` / ``pool_reuse`` / ``state_ships``) so exported
``BENCH_*.json`` files show the single-pool guarantee holding under load.
"""

from __future__ import annotations

import os
import pickle

from _record import append_record, mean_seconds

from repro.config import WorldConfig
from repro.obs import get_metrics
from repro.parallel import ExecutionContext, ResultCache, world_fingerprint
from repro.world.generator import WorldGenerator

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "20210701"))

# Floor of 2 so the single-pool/pickle-once machinery is exercised even on
# single-core CI runners (where the fan-out yields no wall-time win).
_PARALLEL_JOBS = max(2, min(4, os.cpu_count() or 1))


def _config() -> WorldConfig:
    return WorldConfig(seed=BENCH_SEED, scale=BENCH_SCALE)


def _signature(world):
    """A cheap record-level identity signature of a generated world."""
    return (
        list(world.asn_records),
        world.operator_asns,
        world.graph.num_edges(),
        world.gateway_asns,
        [(m.monitor_id, m.host_asn) for m in world.monitors],
    )


def test_bench_worldgen_serial(benchmark):
    world = benchmark.pedantic(
        lambda: WorldGenerator(_config()).generate(), rounds=1, iterations=1
    )
    benchmark.extra_info["jobs"] = 1
    benchmark.extra_info["backend"] = "serial"
    benchmark.extra_info["asns"] = len(world.asn_records)
    assert world.asn_records
    append_record(
        "worldgen",
        "worldgen_serial",
        tracked={"wall_s": mean_seconds(benchmark)},
        context={"scale": BENCH_SCALE, "seed": BENCH_SEED, "jobs": 1},
        asns=len(world.asn_records),
    )


def test_bench_worldgen_parallel(benchmark):
    serial_signature = _signature(WorldGenerator(_config()).generate())
    metrics = get_metrics()
    spawns = metrics.counter("parallel.pool_spawns")
    reuses = metrics.counter("parallel.pool_reuse")
    ships = metrics.counter("parallel.state_ships")

    def build():
        with ExecutionContext(jobs=_PARALLEL_JOBS, backend="process") as context:
            return WorldGenerator(_config(), context=context).generate()

    world = benchmark.pedantic(build, rounds=1, iterations=1)
    benchmark.extra_info["jobs"] = _PARALLEL_JOBS
    benchmark.extra_info["backend"] = "process"
    benchmark.extra_info["pool_spawns"] = (
        metrics.counter("parallel.pool_spawns") - spawns
    )
    benchmark.extra_info["pool_reuse"] = metrics.counter("parallel.pool_reuse") - reuses
    benchmark.extra_info["state_ships"] = (
        metrics.counter("parallel.state_ships") - ships
    )
    assert benchmark.extra_info["pool_spawns"] == 1
    assert _signature(world) == serial_signature
    append_record(
        "worldgen",
        "worldgen_parallel",
        tracked={"wall_s": mean_seconds(benchmark)},
        context={
            "scale": BENCH_SCALE,
            "seed": BENCH_SEED,
            "jobs": _PARALLEL_JOBS,
        },
        asns=len(world.asn_records),
    )


def test_bench_worldgen_cached(benchmark, tmp_path_factory):
    cache = ResultCache(tmp_path_factory.mktemp("repro-world-cache"))
    config = _config()
    key = world_fingerprint(config)
    cache.put_blob(
        "world",
        key,
        pickle.dumps(
            WorldGenerator(config).generate(),
            protocol=pickle.HIGHEST_PROTOCOL,
        ),
    )

    def load():
        return pickle.loads(cache.get_blob("world", key))

    world = benchmark.pedantic(load, rounds=1, iterations=1)
    benchmark.extra_info["cache"] = "warm"
    assert world.asn_records
    append_record(
        "worldgen",
        "worldgen_cached",
        tracked={"wall_s": mean_seconds(benchmark)},
        context={"scale": BENCH_SCALE, "seed": BENCH_SEED, "cache": "warm"},
        asns=len(world.asn_records),
    )
