"""Micro-benchmark: the flat-array propagation kernel vs the tree oracles.

This is the PR 10 tentpole's scoreboard.  On one world it times, over the
exact origin set CTI scoring walks:

* the :class:`~repro.net.propagation.PropagationKernel` (CSR-native BFS,
  preallocated buffers reused across origins) over every origin;
* the retained ``_reference_propagate_routes`` object/dict tree builder
  over a bounded origin sample, yielding a measured ``oracle_speedup_x``;
* CTI scoring on top of the kernel, serially and through a 2-job process
  context — asserted **byte-identical** (same repr, not approximately
  equal) before any number is recorded.

Kernel-vs-oracle equivalence is asserted on the sampled origins right
here in the benchmark, so a kernel that drifts from the oracle can never
post a time.  With ``REPRO_BENCH_RECORD=1`` each run appends one record
to ``BENCH_propagation.json`` (``oracle_speedup_x`` higher-is-better,
wall times lower-is-better, gated by ``repro bench-diff``).
"""

from __future__ import annotations

import os
import time

from _record import append_record
from conftest import BENCH_SCALE, BENCH_SEED, _materialize_world

from repro.config import WorldConfig
from repro.core import PipelineInputs
from repro.cti.metric import CTIComputer
from repro.io.tables import render_table
from repro.net.bgp import _reference_propagate_routes
from repro.net.monitors import RouteCollector
from repro.net.propagation import PropagationKernel
from repro.parallel import ExecutionContext

#: Upper bound on oracle-timed origins; the oracle is the slow side, the
#: sample keeps reduced-scale CI passes fast while staying representative.
_ORACLE_SAMPLE = int(os.environ.get("REPRO_BENCH_ORACLE_SAMPLE", "60"))


def _assert_same_tree(graph, kernel_tree, oracle_tree, origin):
    for asn in graph.asns:
        assert kernel_tree.has_route(asn) == oracle_tree.has_route(asn), (origin, asn)
        if not oracle_tree.has_route(asn):
            continue
        assert kernel_tree.path_from(asn) == oracle_tree.path_from(asn), (origin, asn)
        assert kernel_tree.route_class(asn) is oracle_tree.route_class(asn)
        assert kernel_tree.distance(asn) == oracle_tree.distance(asn)


def test_bench_propagation_kernel(benchmark):
    world = _materialize_world(WorldConfig(seed=BENCH_SEED, scale=BENCH_SCALE))
    graph = world.graph
    monitors = world.collector.monitors
    inputs = PipelineInputs.from_world(world)
    eligible = sorted(inputs.cti_eligible_ccs)
    seed_cti = CTIComputer(
        inputs.prefix2as, inputs.geolocation, RouteCollector(graph, monitors)
    )
    origins = sorted(
        {origin for cc in eligible for origin in seed_cti.scored_origins(cc)}
    )
    stride = max(1, len(origins) // _ORACLE_SAMPLE)
    sample = origins[::stride][:_ORACLE_SAMPLE]

    def propagate_and_score():
        timings = {}
        kernel = PropagationKernel(graph)

        started = time.perf_counter()
        for origin in origins:
            kernel.propagate(origin)
        timings["kernel_trees_s"] = time.perf_counter() - started

        started = time.perf_counter()
        kernel_trees = [kernel.propagate(origin) for origin in sample]
        kernel_sample_s = time.perf_counter() - started

        started = time.perf_counter()
        oracle_trees = [_reference_propagate_routes(graph, origin) for origin in sample]
        oracle_sample_s = time.perf_counter() - started
        timings["oracle_speedup_x"] = (
            oracle_sample_s / kernel_sample_s if kernel_sample_s else float("inf")
        )
        for origin, k_tree, o_tree in zip(sample, kernel_trees, oracle_trees):
            _assert_same_tree(graph, k_tree, o_tree, origin)

        serial_cti = CTIComputer(
            inputs.prefix2as, inputs.geolocation, RouteCollector(graph, monitors)
        )
        started = time.perf_counter()
        serial_cti.score_countries(eligible)
        timings["cti_serial_s"] = time.perf_counter() - started

        parallel_cti = CTIComputer(
            inputs.prefix2as, inputs.geolocation, RouteCollector(graph, monitors)
        )
        started = time.perf_counter()
        with ExecutionContext(jobs=2, backend="process") as context:
            parallel_cti.score_countries(eligible, context=context)
        timings["cti_parallel_s"] = time.perf_counter() - started

        # Byte-identity, not float tolerance: serial and parallel scoring
        # must make the same additions in the same order.
        assert repr(parallel_cti.computed_scores()) == repr(
            serial_cti.computed_scores()
        )
        return timings

    timings = benchmark.pedantic(propagate_and_score, rounds=1, iterations=1)

    print()
    print(
        render_table(
            ("metric", "value"),
            [
                ("ASes", len(graph)),
                ("origins propagated", len(origins)),
                ("oracle sample", len(sample)),
                ("kernel trees", f"{timings['kernel_trees_s']:.3f}s"),
                ("oracle speedup", f"{timings['oracle_speedup_x']:.2f}x"),
                ("CTI serial", f"{timings['cti_serial_s']:.3f}s"),
                ("CTI parallel (2 jobs)", f"{timings['cti_parallel_s']:.3f}s"),
            ],
            title=f"Propagation kernel (scale {BENCH_SCALE})",
        )
    )

    append_record(
        "propagation",
        f"propagation_scale_{BENCH_SCALE}",
        tracked=timings,
        context={
            "scale": BENCH_SCALE,
            "seed": BENCH_SEED,
            "jobs": 2,
            "oracle_sample": len(sample),
        },
        origins=len(origins),
        ases=len(graph),
    )
