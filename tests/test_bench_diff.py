"""The bench-diff regression gate over committed BENCH_*.json trajectories."""

from __future__ import annotations

import json

import pytest

from repro.bench import DEFAULT_THRESHOLD, diff_trajectories, format_report
from repro.bench.diff import diff_file, run_diff
from repro.cli import main


def _write(path, records):
    path.write_text(
        "\n".join(json.dumps(record) for record in records) + "\n",
        encoding="utf-8",
    )


def _rec(benchmark, tracked, context=None, **extra):
    record = {"benchmark": benchmark, "tracked": tracked, **extra}
    if context is not None:
        record["context"] = context
    return record


class TestDiffFile:
    def test_regression_flagged_beyond_threshold(self, tmp_path):
        path = tmp_path / "BENCH_a.json"
        _write(path, [
            _rec("build", {"wall_s": 1.0}, {"scale": 1}),
            _rec("build", {"wall_s": 1.25}, {"scale": 1}),
        ])
        (delta,) = diff_file(path)
        assert delta.regressed
        assert delta.change == pytest.approx(0.25)

    def test_within_threshold_passes(self, tmp_path):
        path = tmp_path / "BENCH_a.json"
        _write(path, [
            _rec("build", {"wall_s": 1.0}, {"scale": 1}),
            _rec("build", {"wall_s": 1.19}, {"scale": 1}),
        ])
        (delta,) = diff_file(path)
        assert not delta.regressed

    def test_qps_is_higher_is_better(self, tmp_path):
        path = tmp_path / "BENCH_a.json"
        _write(path, [
            _rec("serve", {"qps": 100.0}, {"clients": 4}),
            _rec("serve", {"qps": 70.0}, {"clients": 4}),
        ])
        (delta,) = diff_file(path)
        assert delta.regressed  # throughput fell 30%

    def test_qps_rise_is_not_a_regression(self, tmp_path):
        path = tmp_path / "BENCH_a.json"
        _write(path, [
            _rec("serve", {"qps": 100.0}, {"clients": 4}),
            _rec("serve", {"qps": 160.0}, {"clients": 4}),
        ])
        (delta,) = diff_file(path)
        assert not delta.regressed

    def test_per_s_suffix_is_higher_is_better(self, tmp_path):
        path = tmp_path / "BENCH_a.json"
        _write(path, [
            _rec("x", {"rows_per_s": 100.0}),
            _rec("x", {"rows_per_s": 50.0}),
        ])
        (delta,) = diff_file(path)
        assert delta.regressed

    def test_context_mismatch_never_pairs(self, tmp_path):
        """A reduced-scale CI record must not diff against a committed
        full-scale record of the same benchmark."""
        path = tmp_path / "BENCH_a.json"
        _write(path, [
            _rec("build", {"wall_s": 60.0}, {"scale": 10}),
            _rec("build", {"wall_s": 1.0}, {"scale": 0.2}),
        ])
        assert diff_file(path) == []

    def test_same_context_pairs_across_interleaving(self, tmp_path):
        path = tmp_path / "BENCH_a.json"
        _write(path, [
            _rec("build", {"wall_s": 60.0}, {"scale": 10}),
            _rec("build", {"wall_s": 1.0}, {"scale": 0.2}),
            _rec("build", {"wall_s": 1.1}, {"scale": 0.2}),
        ])
        (delta,) = diff_file(path)
        assert delta.old == 1.0 and delta.new == pytest.approx(1.1)
        assert not delta.regressed

    def test_legacy_records_fall_back_to_flat_keys(self, tmp_path):
        path = tmp_path / "BENCH_serve.json"
        _write(path, [
            {"benchmark": "serve", "qps": 100.0, "p50_ms": 2.0, "extra": "x"},
            {"benchmark": "serve", "qps": 40.0, "p50_ms": 2.1},
        ])
        deltas = diff_file(path)
        by_metric = {d.metric: d for d in deltas}
        assert by_metric["qps"].regressed
        assert not by_metric["p50_ms"].regressed

    def test_torn_append_is_skipped(self, tmp_path):
        path = tmp_path / "BENCH_a.json"
        path.write_text(
            json.dumps(_rec("b", {"wall_s": 1.0})) + "\n"
            + '{"benchmark": "b", "tracked": {"wall_s"'  # torn write
            + "\n"
            + json.dumps(_rec("b", {"wall_s": 1.1})) + "\n"
        )
        (delta,) = diff_file(path)
        assert delta.new == pytest.approx(1.1)

    def test_zero_baseline_is_skipped(self, tmp_path):
        path = tmp_path / "BENCH_a.json"
        _write(
            path,
            [
                _rec("b", {"wall_s": 0.0}),
                _rec("b", {"wall_s": 5.0}),
            ],
        )
        assert diff_file(path) == []


class TestTrajectorySweep:
    def test_multiple_files_sorted(self, tmp_path):
        _write(tmp_path / "BENCH_b.json", [
            _rec("x", {"wall_s": 1.0}),
            _rec("x", {"wall_s": 1.0}),
        ])
        _write(tmp_path / "BENCH_a.json", [
            _rec("y", {"wall_s": 2.0}),
            _rec("y", {"wall_s": 2.0}),
        ])
        deltas = diff_trajectories(tmp_path)
        assert [d.trajectory for d in deltas] == [
            "BENCH_a.json",
            "BENCH_b.json",
        ]

    def test_non_bench_files_ignored(self, tmp_path):
        (tmp_path / "notes.json").write_text("{}")
        assert diff_trajectories(tmp_path) == []

    def test_report_empty_and_nonempty(self, tmp_path):
        assert "no comparable record pairs" in format_report([])
        _write(tmp_path / "BENCH_a.json", [
            _rec("b", {"wall_s": 1.0}),
            _rec("b", {"wall_s": 2.0}),
        ])
        report = format_report(diff_trajectories(tmp_path))
        assert "REGRESSED" in report
        assert "1 regression(s)" in report

    def test_run_diff_exit_codes(self, tmp_path):
        _write(tmp_path / "BENCH_a.json", [
            _rec("b", {"wall_s": 1.0}),
            _rec("b", {"wall_s": 1.05}),
        ])
        code, report = run_diff(tmp_path)
        assert code == 0 and "0 regression(s)" in report
        _write(tmp_path / "BENCH_a.json", [
            _rec("b", {"wall_s": 1.0}),
            _rec("b", {"wall_s": 2.0}),
        ])
        code, _ = run_diff(tmp_path)
        assert code == 1

    def test_threshold_parameter(self, tmp_path):
        _write(tmp_path / "BENCH_a.json", [
            _rec("b", {"wall_s": 1.0}),
            _rec("b", {"wall_s": 1.3}),
        ])
        assert run_diff(tmp_path, threshold=0.5)[0] == 0
        assert run_diff(tmp_path, threshold=DEFAULT_THRESHOLD)[0] == 1


class TestCLI:
    def test_bench_diff_subcommand(self, tmp_path, capsys):
        _write(tmp_path / "BENCH_a.json", [
            _rec("b", {"wall_s": 1.0}, {"scale": 1}),
            _rec("b", {"wall_s": 1.01}, {"scale": 1}),
        ])
        assert main(["bench-diff", "--dir", str(tmp_path)]) == 0
        assert "0 regression(s)" in capsys.readouterr().out

    def test_bench_diff_fails_on_regression(self, tmp_path, capsys):
        _write(tmp_path / "BENCH_a.json", [
            _rec("b", {"wall_s": 1.0}, {"scale": 1}),
            _rec("b", {"wall_s": 9.9}, {"scale": 1}),
        ])
        assert main(["bench-diff", "--dir", str(tmp_path)]) == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_bench_diff_threshold_flag(self, tmp_path):
        _write(tmp_path / "BENCH_a.json", [
            _rec("b", {"wall_s": 1.0}, {"scale": 1}),
            _rec("b", {"wall_s": 1.3}, {"scale": 1}),
        ])
        assert main(["bench-diff", "--dir", str(tmp_path), "--threshold", "0.5"]) == 0

    def test_bench_diff_bad_dir(self, tmp_path, capsys):
        missing = tmp_path / "nope"
        assert main(["bench-diff", "--dir", str(missing)]) == 2
        assert "not a directory" in capsys.readouterr().err


class TestTrends:
    def test_metric_trend_stats(self, tmp_path):
        from repro.bench.diff import trend_file

        path = tmp_path / "BENCH_a.json"
        _write(path, [
            _rec("build", {"wall_s": 4.0}, {"scale": 1}),
            _rec("build", {"wall_s": 2.0}, {"scale": 1}),
            _rec("build", {"wall_s": 3.0}, {"scale": 1}),
        ])
        (trend,) = trend_file(path)
        assert trend.first == 4.0
        assert trend.last == 3.0
        assert trend.best == 2.0  # wall time: lower is better
        assert trend.overall_change == pytest.approx(-0.25)
        assert len(trend.sparkline()) == 3

    def test_best_is_direction_aware(self, tmp_path):
        from repro.bench.diff import trend_file

        path = tmp_path / "BENCH_a.json"
        _write(path, [
            _rec("maintain", {"speedup_x": 4.0, "reused_fraction": 0.5}),
            _rec("maintain", {"speedup_x": 9.0, "reused_fraction": 0.9}),
            _rec("maintain", {"speedup_x": 7.0, "reused_fraction": 0.8}),
        ])
        by_metric = {t.metric: t for t in trend_file(path)}
        assert by_metric["speedup_x"].best == 9.0
        assert by_metric["reused_fraction"].best == 0.9

    def test_sparkline_extremes_and_flat(self, tmp_path):
        from repro.bench.diff import trend_file

        path = tmp_path / "BENCH_a.json"
        _write(path, [
            _rec("b", {"wall_s": 1.0}),
            _rec("b", {"wall_s": 8.0}),
            _rec("b", {"wall_s": 1.0}),
        ])
        (trend,) = trend_file(path)
        spark = trend.sparkline()
        assert spark[0] == spark[2] == "▁"
        assert spark[1] == "█"
        _write(path, [_rec("b", {"wall_s": 2.0})] * 4)
        (flat,) = trend_file(path)
        assert len(set(flat.sparkline())) == 1

    def test_single_point_series_skipped(self, tmp_path):
        from repro.bench.diff import trend_file

        path = tmp_path / "BENCH_a.json"
        _write(path, [_rec("b", {"wall_s": 1.0})])
        assert trend_file(path) == []

    def test_context_groups_stay_separate(self, tmp_path):
        from repro.bench.diff import trend_file

        path = tmp_path / "BENCH_a.json"
        _write(path, [
            _rec("b", {"wall_s": 60.0}, {"scale": 10}),
            _rec("b", {"wall_s": 1.0}, {"scale": 0.2}),
            _rec("b", {"wall_s": 65.0}, {"scale": 10}),
            _rec("b", {"wall_s": 1.1}, {"scale": 0.2}),
        ])
        trends = trend_file(path)
        assert len(trends) == 2
        assert {t.values for t in trends} == {(60.0, 65.0), (1.0, 1.1)}

    def test_report_marks_direction(self, tmp_path):
        from repro.bench.diff import format_trend_report, trend_trajectories

        _write(tmp_path / "BENCH_a.json", [
            _rec("serve", {"qps": 100.0, "p95_ms": 5.0}),
            _rec("serve", {"qps": 120.0, "p95_ms": 4.0}),
        ])
        report = format_trend_report(trend_trajectories(tmp_path))
        assert "qps[↑]" in report
        assert "p95_ms[↓]" in report
        assert "2 series" in report
        assert format_trend_report([]).startswith("bench-diff --trend: no")

    def test_run_trend_always_exit_zero(self, tmp_path):
        from repro.bench.diff import run_trend

        _write(tmp_path / "BENCH_a.json", [
            _rec("b", {"wall_s": 1.0}),
            _rec("b", {"wall_s": 99.0}),
        ])
        code, report = run_trend(tmp_path)
        assert code == 0  # trends inform; only diff gates
        assert "wall_s" in report

    def test_cli_trend_flag(self, tmp_path, capsys):
        _write(tmp_path / "BENCH_a.json", [
            _rec("b", {"wall_s": 1.0}, {"scale": 1}),
            _rec("b", {"wall_s": 9.9}, {"scale": 1}),
        ])
        # --trend is informational: no regression gating, exit 0.
        assert main(["bench-diff", "--dir", str(tmp_path), "--trend"]) == 0
        out = capsys.readouterr().out
        assert "first 1" in out and "last 9.9" in out


class TestTrendSlopeAndWorst:
    def test_slope_of_linear_series(self, tmp_path):
        from repro.bench.diff import trend_file

        path = tmp_path / "BENCH_a.json"
        _write(path, [
            _rec("build", {"wall_s": 10.0}, {"scale": 1}),
            _rec("build", {"wall_s": 8.0}, {"scale": 1}),
            _rec("build", {"wall_s": 6.0}, {"scale": 1}),
            _rec("build", {"wall_s": 4.0}, {"scale": 1}),
        ])
        (trend,) = trend_file(path)
        assert trend.slope == pytest.approx(-2.0)
        assert trend.worst == 10.0
        assert trend.best == 4.0

    def test_slope_of_noisy_series(self, tmp_path):
        from repro.bench.diff import trend_file

        path = tmp_path / "BENCH_a.json"
        _write(path, [
            _rec("b", {"qps": 100.0}),
            _rec("b", {"qps": 140.0}),
            _rec("b", {"qps": 120.0}),
        ])
        (trend,) = trend_file(path)
        # least squares over (0,100),(1,140),(2,120) -> slope 10/pt
        assert trend.slope == pytest.approx(10.0)
        assert trend.worst == 100.0  # qps: higher is better, worst is min

    def test_trend_carries_context(self, tmp_path):
        from repro.bench.diff import trend_file

        path = tmp_path / "BENCH_a.json"
        _write(path, [
            _rec("b", {"wall_s": 1.0}, {"scale": 10, "jobs": 2}),
            _rec("b", {"wall_s": 2.0}, {"scale": 10, "jobs": 2}),
        ])
        (trend,) = trend_file(path)
        assert '"scale": 10' in trend.context
        assert '"jobs": 2' in trend.context

    def test_report_shows_slope_worst_and_context(self, tmp_path):
        from repro.bench.diff import format_trend_report, trend_trajectories

        _write(tmp_path / "BENCH_a.json", [
            _rec("b", {"wall_s": 3.0}, {"scale": 5}),
            _rec("b", {"wall_s": 1.0}, {"scale": 5}),
        ])
        report = format_trend_report(trend_trajectories(tmp_path))
        assert "slope -2/pt over 2 pts" in report
        assert "worst 3" in report
        assert '"scale": 5' in report


class TestPatternFlag:
    def test_pattern_restricts_gate_to_one_suite(self, tmp_path, capsys):
        _write(tmp_path / "BENCH_a.json", [
            _rec("a", {"wall_s": 1.0}),
            _rec("a", {"wall_s": 99.0}),  # would regress the gate
        ])
        _write(tmp_path / "BENCH_b.json", [
            _rec("b", {"wall_s": 1.0}),
            _rec("b", {"wall_s": 1.0}),
        ])
        code = main([
            "bench-diff", "--dir", str(tmp_path), "--pattern", "BENCH_b.json"
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "BENCH_a.json" not in out

    def test_pattern_applies_to_trend(self, tmp_path, capsys):
        _write(tmp_path / "BENCH_a.json", [
            _rec("a", {"wall_s": 1.0}),
            _rec("a", {"wall_s": 2.0}),
        ])
        assert main([
            "bench-diff", "--dir", str(tmp_path),
            "--trend", "--pattern", "BENCH_nope.json",
        ]) == 0
        assert "no multi-point series" in capsys.readouterr().out
