"""Tests for configuration validation."""

import pytest

from repro.config import PipelineConfig, SourceNoiseConfig, WorldConfig
from repro.errors import ConfigError


class TestWorldConfig:
    def test_defaults_valid(self):
        WorldConfig()

    def test_scale_must_be_positive(self):
        with pytest.raises(ConfigError):
            WorldConfig(scale=0)

    def test_structure_mix_must_sum_to_one(self):
        with pytest.raises(ConfigError):
            WorldConfig(ownership_structure_mix=(0.5, 0.5, 0.5, 0.5))

    def test_prior_out_of_range(self):
        with pytest.raises(ConfigError):
            WorldConfig(incumbent_state_prob={"Africa": 1.5})

    def test_class_tables_length(self):
        with pytest.raises(ConfigError):
            WorldConfig(addr_budget_by_class=(1, 2, 3))

    def test_scaled_minimum(self):
        config = WorldConfig(scale=0.01)
        assert config.scaled(10) >= 1
        assert config.scaled(10, minimum=3) == 3

    def test_presets(self):
        assert WorldConfig.small().scale < 1.0
        assert WorldConfig.tiny().scale < WorldConfig.small().scale


class TestSourceNoiseConfig:
    def test_defaults_valid(self):
        SourceNoiseConfig()

    def test_probability_bounds(self):
        with pytest.raises(ConfigError):
            SourceNoiseConfig(geolocation_accuracy=1.2)
        with pytest.raises(ConfigError):
            SourceNoiseConfig(peeringdb_coverage=-0.1)


class TestPipelineConfig:
    def test_defaults_valid(self):
        PipelineConfig()

    def test_threshold_bounds(self):
        with pytest.raises(ConfigError):
            PipelineConfig(candidate_share_threshold=0.0)
        with pytest.raises(ConfigError):
            PipelineConfig(candidate_share_threshold=1.0)

    def test_cti_top_k_positive(self):
        with pytest.raises(ConfigError):
            PipelineConfig(cti_top_k=0)

    def test_similarity_threshold_bounds(self):
        with pytest.raises(ConfigError):
            PipelineConfig(mapping_similarity_threshold=0.0)
