"""Tests for the delta-driven incremental recompute engine.

The load-bearing property is byte-identity: a maintain loop that reuses
terms, score maps, corpus answers and verdicts must export exactly the
bytes a cold full recompute would — the randomized event-sequence test
drives :func:`run_maintenance` with ``verify=True``, which cold-recomputes
every snapshot and byte-compares the exports.  The unit tests cover each
invalidation layer's soundness argument in isolation.
"""

import json
from pathlib import Path

import pytest

from repro.config import WorldConfig
from repro.core.confirmation import OwnershipAnalyst
from repro.core.maintenance import run_maintenance
from repro.incremental import (
    CachingCorpus,
    IncrementalEngine,
    corpus_delta,
    geolocation_fingerprint,
    prefix_fingerprint,
    routing_fingerprint,
)
from repro.incremental.fingerprints import (
    country_score_key,
    name_token_set,
    origin_term_key,
    tokens_overlap,
)
from repro.parallel.cache import ResultCache
from repro.sources.documents import Document, SourceType
from repro.world.events import ChurnRates, ChurnSimulator
from repro.world.generator import WorldGenerator


def _doc(doc_id: str, names, url: str = "https://example.com/x") -> Document:
    return Document(
        doc_id=doc_id,
        source_type=SourceType.NEWS,
        cc="NO",
        url=url,
        language="en",
        subject_names=tuple(names),
        claims=(),
    )


#: Monthly churn draws use rates/12; scale the annual rates up so a
#: two-month test sequence reliably produces events.
_HOT_RATES = ChurnRates(
    privatization=0.4,
    nationalization=0.15,
    new_subsidiary_per_expander=0.9,
)


# -- fingerprints ------------------------------------------------------------
class TestFingerprints:
    def test_stable_across_calls(self, tiny_world):
        assert routing_fingerprint(tiny_world) == routing_fingerprint(tiny_world)
        assert prefix_fingerprint(tiny_world) == prefix_fingerprint(tiny_world)
        assert geolocation_fingerprint(tiny_world) == geolocation_fingerprint(
            tiny_world
        )

    def test_churn_leaves_routing_and_prefixes_unchanged(self):
        """Ownership churn never touches the graph, monitors or announced
        prefixes — the invariant the warm CTI path rests on."""
        world = WorldGenerator(WorldConfig.tiny(seed=2024)).generate()
        routing_before = routing_fingerprint(world)
        prefix_before = prefix_fingerprint(world)
        geo_before = geolocation_fingerprint(world)
        events = ChurnSimulator(world, _HOT_RATES).simulate_months(2021, 4)
        assert any(batch for batch in events), "churn produced no events"
        assert routing_fingerprint(world) == routing_before
        assert prefix_fingerprint(world) == prefix_before
        assert geolocation_fingerprint(world) == geo_before

    def test_keys_are_injective_in_inputs(self):
        assert origin_term_key("r1", 7) != origin_term_key("r1", 8)
        assert origin_term_key("r1", 7) != origin_term_key("r2", 7)
        assert country_score_key("r", "s", 1e-3) != country_score_key("r", "s", 1e-2)

    def test_tokens_overlap(self):
        assert tokens_overlap(["Telenor Group"], name_token_set("Telenor ASA"))
        assert not tokens_overlap(["Telenor"], name_token_set("Orange SA"))
        assert not tokens_overlap(["Telenor"], set())


# -- the corpus layer --------------------------------------------------------
class TestCorpusDelta:
    def test_identical_corpora_empty_delta(self):
        docs = [_doc("d1", ["Telenor ASA"])]
        delta = corpus_delta(docs, list(docs))
        assert delta.is_empty
        assert not delta.dirty_tokens

    def test_changed_document_dirties_tokens_and_domain(self):
        old = [_doc("d1", ["Telenor ASA"], "https://telenor.no/ir")]
        new = [_doc("d1", ["Telenor Norge"], "https://telenor.no/ir")]
        delta = corpus_delta(old, new)
        assert delta.changed_docs == 2  # old value + new value
        assert name_token_set("Telenor") <= delta.dirty_tokens
        assert "telenor.no" in delta.dirty_domains

    def test_seed_from_skips_dirty_queries(self):
        old_docs = [
            _doc("d1", ["Telenor ASA"], "https://telenor.no/ir"),
            _doc("d2", ["Orange SA"], "https://orange.fr/ir"),
        ]
        old = CachingCorpus(old_docs)
        old.find_documents("Telenor ASA")
        old.find_documents("Orange SA")
        old.find_by_domain("telenor.no")
        old.find_by_domain("orange.fr")
        new_docs = [
            _doc("d1", ["Telenor Norge"], "https://telenor.no/ir"),
            _doc("d2", ["Orange SA"], "https://orange.fr/ir"),
        ]
        new = CachingCorpus(new_docs)
        count = new.seed_from(old, corpus_delta(old_docs, new_docs))
        # The Telenor query and telenor.no domain entry are dirty; the
        # Orange pair survives.
        assert count == 2
        new.stats.hits = 0
        new.find_documents("Orange SA")
        assert new.stats.hits == 1
        new.find_documents("Telenor ASA")
        assert new.stats.computed == 1

    def test_memoized_answers_match_fresh(self, small_inputs):
        plain = small_inputs.corpus
        caching = CachingCorpus(plain.all_documents())
        for doc in plain.all_documents()[:40]:
            name = doc.subject_names[0]
            assert caching.find_documents(name) == plain.find_documents(name)
            # second call comes from the memo and must be identical
            assert caching.find_documents(name) == plain.find_documents(name)
        assert caching.stats.hits > 0


# -- the confirmation layer --------------------------------------------------
class TestAnalystSeeding:
    def test_seed_memo_respects_dirty_tokens(self, small_inputs, pipeline_config):
        corpus = CachingCorpus(small_inputs.corpus.all_documents())
        first = OwnershipAnalyst(corpus, pipeline_config)
        names = [
            doc.subject_names[0] for doc in small_inputs.corpus.all_documents()[:10]
        ]
        for name in names:
            first.investigate(name)
        memo, footprints, volatile, minority = first.carry_state()
        assert memo and footprints

        # No dirty tokens: every non-volatile footprinted entry survives.
        clean = OwnershipAnalyst(corpus, pipeline_config)
        seeded = clean.seed_memo(memo, footprints, volatile, minority, set())
        assert seeded == sum(1 for k in memo if k not in volatile and k in footprints)
        assert seeded > 0

        # Dirtying one investigated company's tokens never seeds an entry
        # whose footprint mentions it.
        dirty = set(name_token_set(names[0]))
        partial = OwnershipAnalyst(corpus, pipeline_config)
        partial_seeded = partial.seed_memo(memo, footprints, volatile, minority, dirty)
        assert partial_seeded <= seeded
        overlapping = [
            key
            for key, footprint in footprints.items()
            if tokens_overlap(footprint, dirty)
        ]
        assert overlapping  # the investigated name itself, at minimum
        for key in overlapping:
            assert key not in partial._memo

    def test_seeded_verdicts_equal_fresh(self, small_inputs, pipeline_config):
        corpus = CachingCorpus(small_inputs.corpus.all_documents())
        first = OwnershipAnalyst(corpus, pipeline_config)
        names = [
            doc.subject_names[0] for doc in small_inputs.corpus.all_documents()[:10]
        ]
        baseline = {name: first.investigate(name) for name in names}
        second = OwnershipAnalyst(corpus, pipeline_config)
        second.seed_memo(*first.carry_state(), set())
        for name in names:
            assert second.investigate(name) == baseline[name]


# -- the engine --------------------------------------------------------------
class TestEngine:
    def test_quiet_snapshot_carries_everything(self):
        """Same world, no events: the second snapshot reuses the whole CTI
        computer, walks zero origins, and emits an identical dataset."""
        world = WorldGenerator(WorldConfig.tiny(seed=42)).generate()
        engine = IncrementalEngine()
        cold = engine.run_snapshot(world)
        warm = engine.run_snapshot(world)
        assert warm.provenance["computer_carried"] is True
        assert warm.provenance["trie_reused"] is True
        assert warm.provenance["dirty_origins"] == 0
        assert warm.provenance["reused_fraction"] > 0.9
        from repro.io.jsonio import dataset_to_json

        assert dataset_to_json(warm.result.dataset) == dataset_to_json(
            cold.result.dataset
        )

    def test_trie_object_reused_when_prefixes_unchanged(self):
        world = WorldGenerator(WorldConfig.tiny(seed=42)).generate()
        engine = IncrementalEngine()
        first = engine.run_snapshot(world)
        ChurnSimulator(world, _HOT_RATES).simulate_months(2021, 1)
        second = engine.run_snapshot(world)
        # Same Prefix2ASTable object ⇒ same already-built trie.
        assert second.inputs.prefix2as is first.inputs.prefix2as

    def test_disk_tier_warm_starts_a_fresh_engine(self, tmp_path):
        world = WorldGenerator(WorldConfig.tiny(seed=42)).generate()
        cache = ResultCache(tmp_path / "cache")
        IncrementalEngine(cache=cache).run_snapshot(world)
        stats = cache.stats()
        assert stats["cti-terms"]["entries"] > 1
        assert stats["cti-scores"]["entries"] >= 1
        # A brand-new engine (new process, same disk) preloads the terms.
        fresh = IncrementalEngine(cache=cache)
        run = fresh.run_snapshot(world)
        assert run.provenance["terms_preloaded"] > 0
        assert run.provenance["dirty_origins"] == 0
        assert run.provenance["scores_seeded"] >= 1


# -- the maintain loop: randomized event-sequence equivalence ---------------
@pytest.mark.slow
@pytest.mark.parametrize("seed", [7, 20210701])
def test_incremental_exports_byte_identical_to_cold(tmp_path, seed):
    """The correctness bar: for a randomized churn sequence, every
    incremental export must match a cold full recompute byte for byte
    (``verify=True`` raises on any drift)."""
    world = WorldGenerator(WorldConfig.tiny(seed=seed)).generate()
    out = tmp_path / f"seq-{seed}"
    report = run_maintenance(
        world,
        out_dir=out,
        months=2,
        rates=_HOT_RATES,
        verify=True,
    )
    assert [rec.verified for rec in report.snapshots] == [True, True]
    assert (out / "MAINTAIN.json").exists()
    # The churned month must actually have exercised the delta path.
    assert report.snapshots[1].events
    manifest = json.loads((out / "MAINTAIN.json").read_text())
    assert [s["label"] for s in manifest["snapshots"]] == [
        "2021-07",
        "2021-08",
    ]
    for rec in report.snapshots:
        assert Path(rec.dataset_path).exists()
        if rec.cti_path:
            assert Path(rec.cti_path).exists()
