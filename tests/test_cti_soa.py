"""Struct-of-arrays CTI scoring: randomized oracle equivalence.

The SoA scorer (:meth:`CTIComputer.country_cti`) must be *byte-identical*
to the retained dict-walk oracle (:meth:`CTIComputer._reference_country_cti`)
— same floats, not approximately equal — across randomized topologies,
prefix tables, geolocation noise, and monitor placements.  Also covers the
shm roundtrip of :class:`CountryWeightIndex`, the flat prefix/count view
against the trie accounting it bakes in, and the memory ceiling: a
worker's private (anonymous) memory must stay flat as ``--jobs`` doubles
because the weight index lives in one shared segment instead of per-worker
copies.
"""

from __future__ import annotations

import os
import random
from array import array

import pytest

from repro.config import SourceNoiseConfig
from repro.cti.metric import CTIComputer
from repro.cti.soa import CountryWeightIndex
from repro.net.monitors import Monitor, MonitorSet, RouteCollector
from repro.net.prefix import Prefix
from repro.net.topology import ASGraph
from repro.parallel import ExecutionContext, SharedStatePlane
from repro.parallel.shm import attach_ref, release_worker_attachments
from repro.sources.geolocation import GeolocationService
from repro.sources.prefix2as import Prefix2ASTable

_CCS = ("AA", "BB", "CC", "DD", "EE")


def random_scenario(seed: int) -> CTIComputer:
    """A random small internet: tier-1s, gateways, multihomed origins,
    nested prefixes, noisy geolocation, random monitor placement."""
    rng = random.Random(seed)
    # Owners come from a random subset, but the geolocation service sees
    # all five countries — its leak model samples up to 3 wrong ones.
    owner_ccs = list(_CCS[: rng.randint(2, len(_CCS))])
    ccs = list(_CCS)
    graph = ASGraph()
    tier1 = [1, 2]
    graph.add_p2p(1, 2)
    gateways = [10 + i for i in range(rng.randint(2, 4))]
    for gw in gateways:
        graph.add_c2p(gw, rng.choice(tier1))
    origins = [100 + i for i in range(rng.randint(4, 10))]
    for origin in origins:
        for gw in rng.sample(gateways, rng.randint(1, min(2, len(gateways)))):
            graph.add_c2p(origin, gw)

    everyone = tier1 + gateways + origins
    true_cc = {asn: rng.choice(owner_ccs) for asn in everyone}

    entries = []
    block = 1
    for asn in everyone:
        for _ in range(rng.randint(1, 3)):
            a, b = block >> 8, block & 0xFF
            entries.append((Prefix.parse(f"{a}.{b}.0.0/16"), asn))
            if rng.random() < 0.3:
                # A more-specific inside the /16, owned by a random AS, so
                # the uncovered-address accounting actually bites.
                entries.append(
                    (
                        Prefix.parse(f"{a}.{b}.{rng.randint(0, 255)}.0/24"),
                        rng.choice(everyone),
                    )
                )
            block += 1
    table = Prefix2ASTable(entries)
    geo = GeolocationService(
        true_cc,
        ccs,
        SourceNoiseConfig(geolocation_accuracy=rng.uniform(0.7, 1.0)),
        seed=seed,
    )
    hosts = rng.sample(tier1 + gateways, rng.randint(1, 3))
    monitors = MonitorSet([Monitor(f"m{i}", host) for i, host in enumerate(hosts)])
    return CTIComputer(table, geo, RouteCollector(graph, monitors))


class TestRandomizedEquivalence:
    @pytest.mark.parametrize("seed", range(50))
    def test_soa_scorer_matches_dict_oracle(self, seed):
        cti = random_scenario(seed)
        ccs = cti.countries()
        assert ccs, "scenario must geolocate some address space"
        for cc in ccs:
            assert (
                cti._scored_origins(cc) == cti._reference_scored_origins(cc)
            ), (seed, cc)
            reference = cti._reference_country_cti(cc)
            assert cti.country_cti(cc) == reference, (seed, cc)

    @pytest.mark.parametrize("seed", [3, 17, 41])
    def test_sharded_scoring_matches_unsharded(self, seed):
        sharded = random_scenario(seed)
        unsharded = random_scenario(seed)
        ccs = sharded.countries()
        sharded.score_countries(ccs, shard_size=1)
        for cc in ccs:
            assert sharded.country_cti(cc) == unsharded.country_cti(cc), cc

    def test_flat_counts_match_trie_accounting(self):
        for seed in range(10):
            table = random_scenario(seed)._table
            by_prefix = table.uncovered_address_counts()
            rows = list(table.flat_counts().rows())
            assert len(rows) == len(table)
            for (base, length, origin, uncovered), (prefix, entry_origin) in (
                zip(rows, table)
            ):
                assert (Prefix(base, length), origin) == (
                    prefix,
                    entry_origin,
                )
                assert uncovered == by_prefix[prefix], prefix


class TestWeightIndexShm:
    def test_index_roundtrip(self):
        cti = random_scenario(7)
        index = cti.weight_index
        plane = SharedStatePlane()
        try:
            rebuilt = attach_ref(plane.share(index))
            assert isinstance(rebuilt, CountryWeightIndex)
            assert rebuilt.ccs == index.ccs
            assert len(rebuilt) == len(index)
            for cc in index.ccs:
                assert rebuilt.span(cc) == index.span(cc)
                assert rebuilt.total(cc) == index.total(cc)
            assert rebuilt.as_dicts() == index.as_dicts()
        finally:
            release_worker_attachments()
            plane.close()

    def test_scoring_off_rebuilt_index_is_identical(self):
        baseline = random_scenario(11)
        expected = {cc: baseline.country_cti(cc) for cc in baseline.countries()}
        plane = SharedStatePlane()
        try:
            rebuilt = attach_ref(plane.share(baseline.weight_index))
            fresh = random_scenario(11)
            fresh._index = rebuilt  # as a worker-side attach would install
            for cc, scores in expected.items():
                assert fresh.country_cti(cc) == scores, cc
        finally:
            release_worker_attachments()
            plane.close()

    def test_empty_index(self):
        index = CountryWeightIndex.build({}, {})
        assert len(index) == 0
        assert index.span("XX") is None
        assert index.total("XX") == 0
        assert "XX" not in index


# -- memory ceiling ----------------------------------------------------------
def _rss_fields() -> dict:
    fields = {}
    with open("/proc/self/status") as status:
        for line in status:
            if line.startswith(("RssAnon:", "RssShmem:")):
                key, value = line.split(":")
                fields[key] = int(value.split()[0]) * 1024
    return fields


def _touch_columns(index, stripe):
    """Fault in every page of the shared weight column; report how much
    *private* (anonymous) and *shared* memory the read added."""
    before = _rss_fields()
    weights = index.weights
    total = 0
    # 'q' items are 8 bytes -> stride 256 touches every 4 KiB page twice.
    for i in range(stripe % 256, len(weights), 256):
        total += weights[i]
    after = _rss_fields()
    return (
        total,
        after["RssAnon"] - before["RssAnon"],
        after["RssShmem"] - before["RssShmem"],
    )


def _big_index(n: int) -> CountryWeightIndex:
    return CountryWeightIndex(
        b"XX",
        array("i", [0, 2]),
        array("i", [0, n]),
        array("q", range(n)),
        array("q", range(n)),
        array("q", [n]),
    )


@pytest.mark.skipif(
    not os.path.exists("/proc/self/status"),
    reason="needs /proc RssAnon/RssShmem accounting (Linux)",
)
class TestMemoryCeiling:
    def test_worker_private_memory_flat_as_jobs_double(self):
        """Reading a ~90MB shared index must cost workers shared pages,
        not private copies, and the cost must not grow with --jobs."""
        from repro.obs import get_metrics

        n = 6_000_000  # two 'q' columns -> ~91 MB segment
        index = _big_index(n)
        state_bytes = 2 * 8 * n
        metrics = get_metrics()
        peak_anon_delta = {}
        for jobs in (2, 4):
            blob_before = metrics.counter("runtime.state_bytes")
            shm_before = metrics.counter("runtime.shm_bytes")
            with ExecutionContext(jobs=jobs, backend="process") as context:
                results = context.map_ordered(
                    _touch_columns, list(range(jobs * 2)), state=index
                )
            # The pickled ship blob carries only the tiny ShmRef name card;
            # the index bytes travel through the shared segment.
            blob_bytes = metrics.counter("runtime.state_bytes") - blob_before
            assert blob_bytes < 4096, blob_bytes
            assert (metrics.counter("runtime.shm_bytes") - shm_before >= state_bytes)
            assert all(r[0] > 0 for r in results)
            peak_anon_delta[jobs] = max(r[1] for r in results)
            # At least one worker demonstrably paged the column in as
            # *shared* memory (the segment, not a private copy).
            assert max(r[2] for r in results) > state_bytes // 4
        # Zero-copy ceiling: touching every page of the 90MB column adds
        # only interpreter noise to a worker's private memory...
        for jobs, anon in peak_anon_delta.items():
            assert anon < state_bytes // 8, (jobs, anon, state_bytes)
        # ...and stays flat when the pool doubles.
        assert (peak_anon_delta[4] < peak_anon_delta[2] + 8 * 2**20), peak_anon_delta
