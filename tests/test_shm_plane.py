"""The zero-copy shared-memory state plane.

Covers the three lifecycle promises the plane makes (segments attachable
by name until close, unlink-on-close, idempotent double close), the
worker-side attach/rebuild path, and the end-to-end guarantee that a
shareable state shipped through shared memory produces byte-identical
results on every backend.
"""

from __future__ import annotations

import os
from array import array
from multiprocessing import shared_memory

import pytest

from repro.net.flatgraph import FlatASGraph, GraphArrays, flatten_graph
from repro.net.monitors import Monitor, MonitorSet, RouteCollector
from repro.net.topology import ASGraph
from repro.obs import get_metrics
from repro.parallel import ExecutionContext, SharedStatePlane, is_shareable
from repro.parallel.shm import attach_ref, release_worker_attachments


class _Columns:
    """Minimal shareable object: two typed columns plus a meta dict."""

    def __init__(self, tag, ids, values):
        self.tag = tag
        self.ids = ids
        self.values = values

    def __shm_export__(self):
        return {"tag": self.tag}, [("q", self.ids), ("i", self.values)]

    @classmethod
    def __shm_rebuild__(cls, meta, views):
        return cls(meta["tag"], views[0], views[1])


def _columns(n=100):
    return _Columns("t", array("q", range(n)), array("i", [v * 3 for v in range(n)]))


def _diamond_collector():
    """Monitors in two tier-1s over a diamond topology."""
    graph = ASGraph()
    graph.add_p2p(1, 2)
    graph.add_c2p(10, 1)
    graph.add_c2p(11, 2)
    graph.add_c2p(100, 10)
    graph.add_c2p(100, 11)
    graph.add_c2p(101, 10)
    monitors = MonitorSet([Monitor("m0", 2), Monitor("m1", 1)])
    return RouteCollector(graph, monitors)


def _paths(collector, pair):
    """Module-level so the process backend can address it."""
    monitor, origin = pair
    return collector.path(monitor, origin)


class TestShareableProtocol:
    def test_detection(self):
        assert is_shareable(_columns())
        assert is_shareable(_diamond_collector())
        assert not is_shareable({"plain": "dict"})
        assert not is_shareable(array("q", [1]))

    def test_roundtrip_in_process(self):
        plane = SharedStatePlane()
        try:
            original = _columns(257)
            ref = plane.share(original)
            assert ref.cls is _Columns
            assert ref.total_bytes > 0
            rebuilt = attach_ref(ref)
            assert rebuilt.tag == "t"
            assert list(rebuilt.ids) == list(original.ids)
            assert list(rebuilt.values) == list(original.values)
            # Attach is memoized per segment within a process.
            assert attach_ref(ref) is rebuilt
        finally:
            release_worker_attachments()
            plane.close()

    def test_layout_offsets_are_aligned(self):
        plane = SharedStatePlane()
        try:
            ref = plane.share(_columns(7))  # odd sizes force padding
            for _, offset, _ in ref.layout:
                assert offset % 16 == 0
        finally:
            plane.close()

    def test_empty_buffers_roundtrip(self):
        plane = SharedStatePlane()
        try:
            ref = plane.share(_Columns("e", array("q"), array("i")))
            rebuilt = attach_ref(ref)
            assert len(rebuilt.ids) == 0 and len(rebuilt.values) == 0
        finally:
            release_worker_attachments()
            plane.close()


class TestPlaneLifecycle:
    def test_close_unlinks_segments(self):
        plane = SharedStatePlane()
        ref = plane.share(_columns())
        name = ref.name
        # Attachable while the plane is open...
        probe = shared_memory.SharedMemory(name=name)
        probe.close()
        plane.close()
        # ...and gone from the system after close.
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_double_close_is_a_noop(self):
        plane = SharedStatePlane()
        plane.share(_columns())
        plane.close()
        plane.close()
        assert plane.live_bytes() == 0

    def test_share_after_close_rejected(self):
        plane = SharedStatePlane()
        plane.close()
        with pytest.raises(ValueError):
            plane.share(_columns())

    def test_live_bytes_tracks_segments(self):
        metrics = get_metrics()
        plane = SharedStatePlane()
        segments = metrics.counter("runtime.shm_segments")
        plane.share(_columns())
        plane.share(_columns())
        assert plane.live_bytes() > 0
        assert metrics.counter("runtime.shm_segments") - segments == 2
        plane.close()
        assert plane.live_bytes() == 0

    @pytest.mark.skipif(
        not os.path.isdir("/dev/shm"), reason="POSIX shm filesystem only"
    )
    def test_repeated_runtimes_leak_nothing(self):
        """Three full runtime lifecycles leave /dev/shm exactly as found."""
        before = set(os.listdir("/dev/shm"))
        collector = _diamond_collector()
        pairs = [(m, o) for m in collector.monitors for o in (100, 101)]
        for _ in range(3):
            with ExecutionContext(jobs=2, backend="process") as context:
                context.map_ordered(_paths, pairs, state=collector)
        leaked = {
            name
            for name in set(os.listdir("/dev/shm")) - before
            if name.startswith("psm_")
        }
        assert not leaked, leaked


class TestRuntimeIntegration:
    def test_shareable_state_ships_via_shm(self):
        metrics = get_metrics()
        collector = _diamond_collector()
        pairs = [(m, o) for m in collector.monitors for o in (100, 101)]
        segments = metrics.counter("runtime.shm_segments")
        with ExecutionContext(jobs=2, backend="process") as context:
            parallel = context.map_ordered(_paths, pairs, state=collector)
        assert metrics.counter("runtime.shm_segments") - segments == 1
        serial = [_paths(collector, pair) for pair in pairs]
        assert parallel == serial

    @pytest.mark.parametrize("backend,jobs", [("serial", 1), ("thread", 2)])
    def test_non_process_backends_bypass_shm(self, backend, jobs):
        metrics = get_metrics()
        collector = _diamond_collector()
        pairs = [(m, o) for m in collector.monitors for o in (100, 101)]
        segments = metrics.counter("runtime.shm_segments")
        with ExecutionContext(jobs=jobs, backend=backend) as context:
            result = context.map_ordered(_paths, pairs, state=collector)
        assert metrics.counter("runtime.shm_segments") == segments
        assert result == [_paths(collector, pair) for pair in pairs]

    def test_collector_rebuild_preserves_routing(self):
        """The flat-graph collector view answers every path identically."""
        collector = _diamond_collector()
        meta, buffers = collector.__shm_export__()
        rebuilt = RouteCollector.__shm_rebuild__(
            meta, [buf for _, buf in buffers]
        )
        for monitor in collector.monitors:
            for origin in (100, 101, 10, 11, 1, 2):
                assert rebuilt.path(monitor, origin) == collector.path(
                    monitor, origin
                ), (monitor, origin)


class TestFlatGraph:
    def test_flatten_preserves_structure(self):
        graph = ASGraph()
        graph.add_p2p(1, 2)
        graph.add_c2p(10, 1)
        graph.add_c2p(11, 1)
        graph.add_c2p(100, 10)
        flat = flatten_graph(graph).view()
        assert isinstance(flat, FlatASGraph)
        assert len(flat) == len(graph)
        assert set(flat.asns) == set(graph.asns)
        for asn in graph.asns:
            node = flat.index_of(asn)
            assert flat.asn_at(node) == asn
            for rows, neighbors in (
                (flat.providers, graph.providers_of(asn)),
                (flat.customers, graph.customers_of(asn)),
                (flat.peers, graph.peers_of(asn)),
            ):
                got = sorted(flat.asn_at(i) for i in rows[node])
                assert got == sorted(neighbors), asn

    def test_graph_arrays_shm_roundtrip(self):
        graph = ASGraph()
        graph.add_c2p(100, 10)
        graph.add_c2p(10, 1)
        arrays = flatten_graph(graph)
        plane = SharedStatePlane()
        try:
            ref = plane.share(arrays)
            rebuilt = attach_ref(ref)
            assert isinstance(rebuilt, GraphArrays)
            view = rebuilt.view()
            assert set(view.asns) == {100, 10, 1}
            node = view.index_of(10)
            assert [view.asn_at(i) for i in view.customers[node]] == [100]
            assert [view.asn_at(i) for i in view.providers[node]] == [1]
        finally:
            release_worker_attachments()
            plane.close()


def _grow_columns(state, n):
    """Module-level shareable-result producer for the process backend."""
    return _Columns(f"n{n}", array("q", range(n)), array("i", [v * 2 for v in range(n)]))


def _square(state, n):
    return n * n


class TestResultPlane:
    """Worker-exported results: the coordinator adopts, owns, and unlinks."""

    def test_export_adopt_roundtrip(self):
        from repro.parallel.shm import export_result

        original = _columns(31)
        ref = export_result(original)
        plane = SharedStatePlane()
        try:
            rebuilt = plane.adopt(ref)
            assert rebuilt.tag == "t"
            assert list(rebuilt.ids) == list(original.ids)
            assert list(rebuilt.values) == list(original.values)
            assert ref.name in plane.segment_names
            rebuilt.ids.release()
            rebuilt.values.release()
        finally:
            plane.close()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=ref.name)

    def test_process_map_shm_results_identical(self):
        metrics = get_metrics()
        sizes = [3, 0, 17, 64, 5]
        adopted = metrics.counter("runtime.shm_adopted")
        with ExecutionContext(jobs=2, backend="process") as context:
            results = context.map_ordered(
                _grow_columns, sizes, chunksize=2, shm_results=True
            )
            assert metrics.counter("runtime.shm_adopted") - adopted == len(sizes)
            for n, col in zip(sizes, results):
                assert col.tag == f"n{n}"
                assert list(col.ids) == list(range(n))
                assert list(col.values) == [v * 2 for v in range(n)]
            # Release the zero-copy views before the context (and with it
            # the owning plane) closes — adopted objects must not outlive
            # their segments.
            for col in results:
                col.ids.release()
                col.values.release()

    def test_non_shareable_results_pass_through(self):
        metrics = get_metrics()
        adopted = metrics.counter("runtime.shm_adopted")
        with ExecutionContext(jobs=2, backend="process") as context:
            results = context.map_ordered(_square, [1, 2, 3, 4], shm_results=True)
        assert results == [1, 4, 9, 16]
        assert metrics.counter("runtime.shm_adopted") == adopted

    def test_env_gate_disables_result_path(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM_RESULTS", "0")
        metrics = get_metrics()
        adopted = metrics.counter("runtime.shm_adopted")
        with ExecutionContext(jobs=2, backend="process") as context:
            results = context.map_ordered(_grow_columns, [4, 9], shm_results=True)
        assert metrics.counter("runtime.shm_adopted") == adopted
        assert [list(col.ids) for col in results] == [[0, 1, 2, 3], list(range(9))]

    @pytest.mark.parametrize("backend,jobs", [("serial", 1), ("thread", 2)])
    def test_non_process_backends_return_objects_directly(self, backend, jobs):
        metrics = get_metrics()
        adopted = metrics.counter("runtime.shm_adopted")
        with ExecutionContext(jobs=jobs, backend=backend) as context:
            results = context.map_ordered(_grow_columns, [6], shm_results=True)
        assert metrics.counter("runtime.shm_adopted") == adopted
        assert list(results[0].ids) == list(range(6))

    @pytest.mark.skipif(
        not os.path.isdir("/dev/shm"), reason="POSIX shm filesystem only"
    )
    def test_result_segments_never_leak(self):
        before = set(os.listdir("/dev/shm"))
        for _ in range(2):
            with ExecutionContext(jobs=2, backend="process") as context:
                context.map_ordered(_grow_columns, [8, 2, 11], shm_results=True)
        leaked = {
            name
            for name in set(os.listdir("/dev/shm")) - before
            if name.startswith("psm_")
        }
        assert not leaked, leaked
