"""Tests for the side products: minority report, excluded summary, expert
review simulation."""


from repro.analysis.excluded import excluded_companies, excluded_summary
from repro.analysis.minority import minority_report
from repro.core.expertreview import expert_review
from repro.core.mapping import CompanyMapper
from repro.text.normalize import normalize_name


class TestMinorityReport:
    def test_sorted_by_stake(self, pipeline_result):
        report = minority_report(pipeline_result)
        stakes = [h.fraction or 0.0 for h in report]
        assert stakes == sorted(stakes, reverse=True)

    def test_all_stakes_sub_majority(self, pipeline_result):
        for holding in minority_report(pipeline_result):
            if holding.fraction is not None:
                assert 0.0 < holding.fraction < 0.5

    def test_minority_not_in_dataset(self, pipeline_result):
        dataset_names = {
            normalize_name(org.org_name)
            for org in pipeline_result.dataset.organizations()
        }
        for holding in minority_report(pipeline_result):
            assert normalize_name(holding.company_name) not in dataset_names

    def test_asn_counting_with_mapper(self, pipeline_result, small_inputs):
        mapper = CompanyMapper(
            small_inputs.whois, small_inputs.peeringdb, small_inputs.corpus
        )
        report = minority_report(pipeline_result, mapper)
        assert any(h.asn_count > 0 for h in report)


class TestExcludedSummary:
    def test_summary_counts_match(self, pipeline_result):
        summary = excluded_summary(pipeline_result)
        assert sum(summary.values()) == len(pipeline_result.excluded)

    def test_rows_sorted(self, pipeline_result):
        rows = excluded_companies(pipeline_result)
        assert rows == sorted(rows, key=lambda r: (r[1], r[0]))

    def test_expected_categories_present(self, pipeline_result):
        summary = excluded_summary(pipeline_result)
        labels = " ".join(summary)
        assert "academic" in labels or "subnational" in labels or summary


class TestExpertReview:
    def test_lacnic_expert(self, pipeline_result, small_world):
        review = expert_review(pipeline_result, small_world, "LACNIC")
        assert review.asns_reviewed > 0
        assert review.countries  # the reviewer knows a real region
        for finding in review.findings:
            assert finding.kind in ("false positive", "false negative")
            assert finding.cc in review.countries

    def test_single_country_scope(self, pipeline_result, small_world):
        review = expert_review(pipeline_result, small_world, "NO")
        assert review.countries == frozenset({"NO"})

    def test_precision_matches_validation(self, pipeline_result, small_world):
        """Experts across all five RIRs jointly see every disagreement."""
        total_findings = 0
        for rir in ("AFRINIC", "APNIC", "ARIN", "LACNIC", "RIPE"):
            review = expert_review(pipeline_result, small_world, rir)
            total_findings += len(review.findings)
        from repro.core import validate_against_world

        report = validate_against_world(pipeline_result, small_world)
        expected = len(report.asn_false_positives) + len(report.asn_false_negatives)
        assert total_findings == expected
