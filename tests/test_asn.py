"""Tests for ASN validation and the per-RIR allocator."""

import random

import pytest

from repro.errors import ConfigError
from repro.net.asn import ASNAllocator, MAX_ASN, is_valid_asn


class TestIsValidAsn:
    def test_ordinary_asns(self):
        assert is_valid_asn(3356)
        assert is_valid_asn(7473)
        assert is_valid_asn(400000)

    @pytest.mark.parametrize("reserved", [0, 23456, 65535, MAX_ASN])
    def test_reserved_rejected(self, reserved):
        assert not is_valid_asn(reserved)

    @pytest.mark.parametrize("private", [64512, 65000, 65534, 4200000000])
    def test_private_rejected(self, private):
        assert not is_valid_asn(private)

    def test_out_of_range(self):
        assert not is_valid_asn(-1)
        assert not is_valid_asn(2**32)

    def test_bool_is_not_asn(self):
        assert not is_valid_asn(True)


class TestAllocator:
    def make(self, seed=1):
        return ASNAllocator(random.Random(seed))

    def test_allocates_valid_unique(self):
        alloc = self.make()
        seen = set()
        for rir in ("ARIN", "RIPE", "APNIC", "LACNIC", "AFRINIC"):
            for asn in alloc.allocate_many(rir, 50):
                assert is_valid_asn(asn)
                assert asn not in seen
                seen.add(asn)
        assert len(alloc) == 250

    def test_rir_of_allocated(self):
        alloc = self.make()
        asn = alloc.allocate("LACNIC")
        assert alloc.rir_of(asn) == "LACNIC"

    def test_rir_of_unknown_block(self):
        alloc = self.make()
        assert alloc.rir_of(65000) is None

    def test_unknown_rir_raises(self):
        with pytest.raises(ConfigError):
            self.make().allocate("EXAMPLENIC")

    def test_deterministic(self):
        a = self.make(seed=7)
        b = self.make(seed=7)
        assert a.allocate_many("RIPE", 20) == b.allocate_many("RIPE", 20)

    def test_iteration_sorted(self):
        alloc = self.make()
        alloc.allocate_many("APNIC", 10)
        listed = list(alloc)
        assert listed == sorted(listed)
