"""Extra coverage: the report's headline math, CLI parser surface for the
extension commands, and alias-aware expansion."""

import pytest

from repro.analysis.report import headline_stats
from repro.cli import build_parser
from repro.core.expansion import expand_to_asns
from repro.core.mapping import CompanyMapper


class TestHeadlineMath:
    def test_space_shares_definition(self, pipeline_result, small_inputs):
        stats = headline_stats(pipeline_result, small_inputs)
        counts = small_inputs.prefix2as.announced_address_counts()
        total = sum(counts.values())
        state = sum(counts.get(a, 0) for a in pipeline_result.dataset.all_asns())
        assert stats["announced_space_share"] == pytest.approx(state / total, abs=1e-4)

    def test_ex_us_denominator_smaller(self, pipeline_result, small_inputs):
        stats = headline_stats(pipeline_result, small_inputs)
        # Excluding the US removes denominator mass but no state ASes.
        ratio = stats["announced_space_share_ex_us"] / stats["announced_space_share"]
        assert 1.1 < ratio < 2.5


class TestCliParserExtras:
    @pytest.mark.parametrize(
        "argv",
        [
            ["churn", "--years", "3"],
            ["plan", "--top", "5"],
            ["profile", "NO"],
            ["run", "--json", "x.json"],
            ["report"],
            ["validate"],
        ],
    )
    def test_subcommands_parse(self, argv):
        args = build_parser().parse_args(argv)
        assert args.command == argv[0]

    def test_profile_requires_cc(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["profile"])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestAliasExpansion:
    @pytest.fixture(scope="class")
    def mapper(self, small_inputs):
        return CompanyMapper(
            small_inputs.whois, small_inputs.peeringdb, small_inputs.corpus
        )

    def test_aliases_add_asns(self, small_world, small_inputs, mapper):
        """A brand alias can only widen the expansion, never shrink it."""
        for gto in small_world.ground_truth()[:30]:
            operator = gto.operator
            if not operator.brand or operator.brand == operator.name:
                continue
            base = expand_to_asns(
                operator.name, mapper, small_inputs.as2org, cc=operator.cc
            )
            with_alias = expand_to_asns(
                operator.name,
                mapper,
                small_inputs.as2org,
                cc=operator.cc,
                aliases=(operator.brand,),
            )
            assert base <= with_alias

    def test_duplicate_aliases_ignored(self, small_world, small_inputs, mapper):
        gto = next(g for g in small_world.ground_truth() if g.asns)
        operator = gto.operator
        once = expand_to_asns(
            operator.name,
            mapper,
            small_inputs.as2org,
            cc=operator.cc,
            aliases=(operator.name,),
        )
        plain = expand_to_asns(
            operator.name, mapper, small_inputs.as2org, cc=operator.cc
        )
        assert once == plain

    def test_seed_asns_survive_expansion(self, small_world, small_inputs, mapper):
        gto = next(g for g in small_world.ground_truth() if g.asns)
        seed = {gto.asns[0]}
        expanded = expand_to_asns(
            "Completely Unmatchable Name Xyzzy",
            mapper,
            small_inputs.as2org,
            seed_asns=seed,
        )
        assert seed <= expanded
