"""The resilience layer: retry/backoff determinism, circuit breaking,
deterministic fault injection, and graceful source degradation."""

from __future__ import annotations

import json

import pytest

from repro.config import ResilienceConfig, WorldConfig
from repro.core.pipeline import PipelineInputs, StateOwnershipPipeline
from repro.errors import (
    AttemptTimeoutError,
    CircuitOpenError,
    ConfigError,
    InjectedFaultError,
    PipelineError,
    QuarantinedSourceError,
    RetryExhaustedError,
    TransientSourceError,
)
from repro.io.jsonio import dataset_from_json, dataset_to_json
from repro.io.sqliteio import dataset_from_sqlite, dataset_to_sqlite
from repro.obs import get_metrics
from repro.parallel import ExecutionContext, ResultCache
from repro.resilience import (
    CircuitBreaker,
    FaultPlan,
    QuarantinedSource,
    RetryPolicy,
    SourceGuard,
    clear_fault_plan,
    install_fault_plan,
    worker_fault_point,
)
from repro.sources.base import InputSource
from repro.world.generator import WorldGenerator


@pytest.fixture(autouse=True)
def _no_fault_leakage():
    """Every test starts and ends without an active fault plan."""
    clear_fault_plan()
    yield
    clear_fault_plan()


def _flaky(failures, exc=TransientSourceError):
    """A callable failing ``failures`` times, then returning 'ok'."""
    calls = {"n": 0}

    def fn():
        calls["n"] += 1
        if calls["n"] <= failures:
            raise exc(f"boom #{calls['n']}")
        return "ok"

    fn.calls = calls
    return fn


class TestRetryPolicy:
    def test_success_first_try(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.call(_flaky(0), sleep=lambda _s: None) == "ok"

    def test_recovers_from_transient_failures(self):
        policy = RetryPolicy(max_attempts=3)
        fn = _flaky(2)
        assert policy.call(fn, sleep=lambda _s: None) == "ok"
        assert fn.calls["n"] == 3

    def test_exhaustion_raises_with_context(self):
        policy = RetryPolicy(max_attempts=2)
        with pytest.raises(RetryExhaustedError) as err:
            policy.call(_flaky(5), site="source.x", sleep=lambda _s: None)
        assert err.value.site == "source.x"
        assert err.value.attempts == 2
        assert isinstance(err.value.cause, TransientSourceError)

    def test_non_retryable_exception_propagates(self):
        policy = RetryPolicy(max_attempts=3)
        fn = _flaky(5, exc=ValueError)
        with pytest.raises(ValueError):
            policy.call(fn, sleep=lambda _s: None)
        assert fn.calls["n"] == 1

    def test_backoff_is_deterministic_per_seed(self):
        a = RetryPolicy(seed=7)
        b = RetryPolicy(seed=7)
        c = RetryPolicy(seed=8)
        delays_a = [a.backoff_delay("source.x", n) for n in (1, 2, 3)]
        delays_b = [b.backoff_delay("source.x", n) for n in (1, 2, 3)]
        delays_c = [c.backoff_delay("source.x", n) for n in (1, 2, 3)]
        assert delays_a == delays_b
        assert delays_a != delays_c

    def test_backoff_distinguishes_sites(self):
        policy = RetryPolicy(seed=7)
        assert policy.backoff_delay("source.x", 1) != policy.backoff_delay(
            "source.y", 1
        )

    def test_sleep_sequence_replays_identically(self):
        def run():
            slept = []
            RetryPolicy(max_attempts=4, seed=3).call(
                _flaky(3), site="source.x", sleep=slept.append
            )
            return slept

        first, second = run(), run()
        assert first == second
        assert len(first) == 3

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=0.25, jitter=0.0)
        delays = [policy.backoff_delay("s", n) for n in (1, 2, 3, 4)]
        assert delays == [0.1, 0.2, 0.25, 0.25]

    def test_jitter_stays_within_band(self):
        policy = RetryPolicy(base_delay=0.1, jitter=0.25, max_delay=10.0)
        for attempt in range(1, 6):
            base = min(10.0, 0.1 * 2.0 ** (attempt - 1))
            delay = policy.backoff_delay("s", attempt)
            assert base * 0.75 <= delay <= base * 1.25

    def test_attempt_timeout_raises_and_retries(self):
        import time as _time

        policy = RetryPolicy(max_attempts=2, attempt_timeout=0.05)
        with pytest.raises(RetryExhaustedError) as err:
            policy.call(lambda: _time.sleep(5), sleep=lambda _s: None)
        assert isinstance(err.value.cause, AttemptTimeoutError)

    def test_validation(self):
        with pytest.raises(ConfigError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ConfigError):
            RetryPolicy(multiplier=0.5)


class TestCircuitBreaker:
    def _breaker(self, clock, threshold=3, reset=10.0):
        return CircuitBreaker(
            name="test",
            failure_threshold=threshold,
            reset_timeout=reset,
            clock=lambda: clock["t"],
        )

    def test_opens_after_threshold(self):
        clock = {"t": 0.0}
        breaker = self._breaker(clock)
        for _ in range(3):
            breaker.allow()
            breaker.record_failure()
        assert breaker.state == "open"
        with pytest.raises(CircuitOpenError):
            breaker.allow()

    def test_half_open_after_cooldown_then_closes(self):
        clock = {"t": 0.0}
        breaker = self._breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        clock["t"] = 10.0
        assert breaker.state == "half-open"
        breaker.allow()  # probe allowed
        breaker.record_success()
        assert breaker.state == "closed"

    def test_failed_probe_reopens(self):
        clock = {"t": 0.0}
        breaker = self._breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        clock["t"] = 10.0
        assert breaker.state == "half-open"
        breaker.record_failure()
        assert breaker.state == "open"
        clock["t"] = 15.0
        assert breaker.state == "open"  # cooldown counted from reopen
        clock["t"] = 20.0
        assert breaker.state == "half-open"

    def test_success_resets_failure_streak(self):
        clock = {"t": 0.0}
        breaker = self._breaker(clock)
        for _ in range(2):
            breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_policy_trips_breaker_and_short_circuits(self):
        clock = {"t": 0.0}
        breaker = self._breaker(clock, threshold=2)
        policy = RetryPolicy(max_attempts=2)
        with pytest.raises(RetryExhaustedError):
            policy.call(_flaky(9), breaker=breaker, sleep=lambda _s: None)
        assert breaker.state == "open"
        fn = _flaky(0)
        with pytest.raises(CircuitOpenError):
            policy.call(fn, breaker=breaker, sleep=lambda _s: None)
        assert fn.calls["n"] == 0  # never reached the function

    def test_validation(self):
        with pytest.raises(ConfigError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ConfigError):
            CircuitBreaker(reset_timeout=-1)


class TestFaultPlan:
    def test_parse_round_trip(self):
        plan = FaultPlan.parse(
            "seed=42;source.orbis=fatal;cache.get=corrupt:0.5;"
            "worker.confirmation=crash"
        )
        assert plan.seed == 42
        assert FaultPlan.parse(plan.as_text()).as_text() == plan.as_text()

    def test_parse_accepts_commas(self):
        plan = FaultPlan.parse("seed=1,source.a=fatal,source.b=slow:0.1")
        assert len(plan.specs) == 2

    def test_parse_rejects_garbage(self):
        with pytest.raises(ConfigError):
            FaultPlan.parse("source.a=explode")
        with pytest.raises(ConfigError):
            FaultPlan.parse("just-a-word")
        with pytest.raises(ConfigError):
            FaultPlan.parse("seed=abc")
        with pytest.raises(ConfigError):
            FaultPlan.parse("source.a=slow:fast")

    def test_transient_fires_then_clears(self):
        plan = FaultPlan.parse("source.x=transient:2")
        for _ in range(2):
            with pytest.raises(InjectedFaultError):
                plan.before("source.x")
        plan.before("source.x")  # third call passes

    def test_fatal_always_fires(self):
        plan = FaultPlan.parse("source.x=fatal")
        for _ in range(5):
            with pytest.raises(InjectedFaultError):
                plan.before("source.x")

    def test_site_globs(self):
        plan = FaultPlan.parse("source.*=fatal")
        with pytest.raises(InjectedFaultError):
            plan.before("source.orbis")
        plan.before("cache.get")  # unaffected

    def test_slow_uses_injected_sleep(self):
        plan = FaultPlan.parse("source.x=slow:0.25")
        slept = []
        plan.before("source.x", sleep=slept.append)
        assert slept == [0.25]

    def test_mangle_is_deterministic(self):
        text = json.dumps({"k": list(range(50))})
        a = FaultPlan.parse("seed=5;cache.get=corrupt")
        b = FaultPlan.parse("seed=5;cache.get=corrupt")
        assert a.mangle("cache.get", text) == b.mangle("cache.get", text)
        assert a.mangle("cache.get", text) != text

    def test_truncate_shortens(self):
        text = "x" * 100
        plan = FaultPlan.parse("seed=5;cache.get=truncate")
        assert len(plan.mangle("cache.get", text)) < 100

    def test_zero_probability_never_mangles(self):
        plan = FaultPlan.parse("seed=5;cache.get=corrupt:0")
        assert plan.mangle("cache.get", "payload") == "payload"

    def test_crash_only_on_first_delivery(self):
        plan = FaultPlan.parse("worker.x=crash:1")
        assert not plan.crash_due("worker.x", attempt=1)
        assert plan.crash_due("worker.x", attempt=0)
        assert not plan.crash_due("worker.x", attempt=0)  # budget spent

    def test_worker_fault_point_is_noop_in_parent(self):
        # A crash fault must never _exit the coordinating process.
        install_fault_plan(FaultPlan.parse("worker.x=crash"))
        worker_fault_point("worker.x", 0)  # would os._exit in a worker

    def test_env_resolution(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "seed=9;source.x=fatal")
        clear_fault_plan()
        from repro.resilience import get_fault_plan

        plan = get_fault_plan()
        assert plan is not None and plan.seed == 9


class TestSourceGuard:
    def test_guard_retries_through_injected_faults(self):
        install_fault_plan(FaultPlan.parse("source.x=transient:2"))
        guard = SourceGuard(policy=RetryPolicy(max_attempts=3), sleep=lambda _s: None)
        assert guard.call("source.x", lambda: "ok") == "ok"

    def test_guard_exhausts_on_fatal(self):
        install_fault_plan(FaultPlan.parse("source.x=fatal"))
        guard = SourceGuard(policy=RetryPolicy(max_attempts=2), sleep=lambda _s: None)
        with pytest.raises(RetryExhaustedError):
            guard.call("source.x", lambda: "ok")

    def test_breakers_are_per_site(self):
        guard = SourceGuard()
        assert guard.breaker("source.a") is guard.breaker("source.a")
        assert guard.breaker("source.a") is not guard.breaker("source.b")

    def test_quarantined_source_fails_loudly(self):
        stub = QuarantinedSource("source.orbis")
        with pytest.raises(QuarantinedSourceError):
            stub.state_owned_telcos()
        # Dunder protocol must stay intact (pickle/copy/introspection).
        import pickle

        assert isinstance(pickle.loads(pickle.dumps(stub)), QuarantinedSource)

    def test_from_config(self):
        guard = SourceGuard.from_config(
            ResilienceConfig(max_attempts=7, breaker_threshold=2)
        )
        assert guard.policy.max_attempts == 7
        assert guard.breaker("s").failure_threshold == 2


class TestResilienceConfig:
    def test_defaults_valid(self):
        config = ResilienceConfig()
        assert config.max_attempts == 3 and not config.fail_fast

    def test_validation(self):
        with pytest.raises(ConfigError):
            ResilienceConfig(max_attempts=0)
        with pytest.raises(ConfigError):
            ResilienceConfig(jitter=2.0)


class TestCacheCorruption:
    def test_corrupt_entry_evicted_and_counted(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("cti", "k1", {"x": 1.5})
        path = tmp_path / "cti" / "k1.json"
        path.write_text("{\"x\": 1.5")  # truncated mid-write
        before = get_metrics().counter("cache.corrupt")
        assert cache.get("cti", "k1") is None
        assert not path.exists()
        assert get_metrics().counter("cache.corrupt") == before + 1
        # The eviction makes the next put/get cycle clean again.
        cache.put("cti", "k1", {"x": 2.5})
        assert cache.get("cti", "k1") == {"x": 2.5}

    def test_injected_corruption_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("cti", "k1", {"x": list(range(40))})
        install_fault_plan(FaultPlan.parse("seed=3;cache.get=corrupt"))
        assert cache.get("cti", "k1") is None

    def test_persistent_read_failure_bypasses(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("cti", "k1", {"x": 1})
        install_fault_plan(FaultPlan.parse("cache.get=fatal"))
        before = get_metrics().counter("cache.bypass")
        assert cache.get("cti", "k1") is None
        assert get_metrics().counter("cache.bypass") == before + 1


def _square(state, item):
    """Module-level so the process backend can address it."""
    return item * item


class TestWorkerCrashRequeue:
    def test_crashed_chunks_are_requeued(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "worker.square=crash:1")
        clear_fault_plan()  # workers (and we) re-read the environment
        items = list(range(12))
        before = get_metrics().counter("parallel.pool_restarts")
        with ExecutionContext(jobs=2, backend="process") as context:
            results = context.map_ordered(_square, items, label="square", chunksize=3)
        assert results == [i * i for i in items]
        assert get_metrics().counter("parallel.pool_restarts") > before


class _DegradedRuns:
    """Shared world + clean baselines, built once per test session."""

    world = None
    clean = None


@pytest.fixture(scope="module")
def resilience_world():
    if _DegradedRuns.world is None:
        _DegradedRuns.world = WorldGenerator(WorldConfig.tiny()).generate()
    return _DegradedRuns.world


def _run(world, plan=None, skip=(), fail_fast=False):
    if plan is not None:
        install_fault_plan(FaultPlan.parse(plan))
    else:
        clear_fault_plan()
    try:
        resilience = ResilienceConfig(fail_fast=fail_fast)
        inputs = PipelineInputs.from_world(world, resilience=resilience)
        pipeline = StateOwnershipPipeline(inputs, resilience=resilience)
        return pipeline.run(skip_sources=skip)
    finally:
        clear_fault_plan()


def _payload_without_provenance(result):
    payload = json.loads(dataset_to_json(result.dataset))
    payload.pop("degraded_sources")
    return payload


class TestGracefulDegradation:
    def test_clean_run_is_not_degraded(self, resilience_world):
        result = _run(resilience_world)
        assert result.degraded_sources == frozenset()
        assert not result.dataset.is_degraded
        assert result.stats["degraded_sources"] == 0

    def test_fatal_source_degrades_instead_of_failing(self, resilience_world):
        result = _run(resilience_world, plan="seed=42;source.orbis=fatal")
        assert result.degraded_sources == frozenset({InputSource.ORBIS})
        assert result.dataset.degraded_sources == ("O",)
        assert result.stats["degraded_sources"] == 1

    def test_degraded_equals_skip_run(self, resilience_world):
        degraded = _run(resilience_world, plan="seed=42;source.orbis=fatal")
        skipped = _run(resilience_world, skip=[InputSource.ORBIS])
        assert _payload_without_provenance(
            degraded
        ) == _payload_without_provenance(skipped)

    def test_degraded_run_replays_identically(self, resilience_world):
        first = _run(resilience_world, plan="seed=42;source.orbis=fatal")
        second = _run(resilience_world, plan="seed=42;source.orbis=fatal")
        assert dataset_to_json(first.dataset) == dataset_to_json(second.dataset)

    def test_geolocation_failure_cascades_to_cti(self, resilience_world):
        install_fault_plan(FaultPlan.parse("seed=1;source.geolocation=fatal"))
        try:
            inputs = PipelineInputs.from_world(resilience_world)
        finally:
            clear_fault_plan()
        assert inputs.degraded == frozenset({InputSource.GEOLOCATION, InputSource.CTI})
        assert inputs.degraded_sites == ("source.geolocation",)
        result = StateOwnershipPipeline(inputs).run()
        assert result.dataset.degraded_sources == ("C", "G")

    def test_transient_faults_recover_cleanly(self, resilience_world):
        result = _run(resilience_world, plan="seed=1;source.orbis=transient:2")
        assert result.degraded_sources == frozenset()

    def test_fail_fast_aborts(self, resilience_world):
        with pytest.raises((RetryExhaustedError, PipelineError)):
            _run(
                resilience_world,
                plan="seed=42;source.orbis=fatal",
                fail_fast=True,
            )

    def test_required_source_failure_is_fatal(self, resilience_world):
        with pytest.raises(RetryExhaustedError):
            _run(resilience_world, plan="seed=42;source.whois=fatal")

    def test_provenance_survives_json_round_trip(self, resilience_world):
        result = _run(resilience_world, plan="seed=42;source.orbis=fatal")
        loaded = dataset_from_json(dataset_to_json(result.dataset))
        assert loaded.degraded_sources == ("O",)
        assert loaded.is_degraded

    def test_provenance_survives_sqlite_round_trip(self, resilience_world, tmp_path):
        result = _run(resilience_world, plan="seed=42;source.orbis=fatal")
        path = tmp_path / "degraded.db"
        dataset_to_sqlite(result.dataset, path)
        assert dataset_from_sqlite(path).degraded_sources == ("O",)

    def test_quarantine_metrics_flow(self, resilience_world):
        before = get_metrics().counter("resilience.quarantined")
        _run(resilience_world, plan="seed=42;source.orbis=fatal")
        assert get_metrics().counter("resilience.quarantined") > before

    def test_report_renders_for_degraded_run(self, resilience_world):
        from repro.analysis.report import full_report

        install_fault_plan(FaultPlan.parse("seed=2;source.eyeballs=fatal"))
        try:
            inputs = PipelineInputs.from_world(resilience_world)
            result = StateOwnershipPipeline(inputs).run()
        finally:
            clear_fault_plan()
        text = full_report(result, inputs)
        assert text.startswith("DEGRADED RUN")
        assert "Table 8 — skipped" in text
