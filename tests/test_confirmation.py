"""Tests for the ownership-confirmation analyst on hand-made corpora."""

import pytest

from repro.core.confirmation import (
    ConfirmationStatus,
    ExclusionReason,
    OwnershipAnalyst,
    classify_exclusion,
)
from repro.sources.documents import (
    ConfirmationCorpus,
    Document,
    OwnershipClaim,
    SourceType,
)


def doc(
    doc_id,
    subject,
    claims=(),
    source=SourceType.COMPANY_WEBSITE,
    cc="XX",
    subsidiaries=(),
    quote="q",
):
    return Document(
        doc_id=doc_id,
        source_type=source,
        cc=cc,
        url=f"https://example/{doc_id}",
        language="English",
        subject_names=(subject,) if isinstance(subject, str) else tuple(subject),
        claims=tuple(claims),
        subsidiary_names=tuple(subsidiaries),
        quote=quote,
    )


def gov_claim(subject, fraction, cc="XX"):
    return OwnershipClaim(
        subject_name=subject,
        holder_name=f"Government of {cc}",
        fraction=fraction,
        holder_is_government=True,
        holder_cc=cc,
    )


def corp_claim(subject, holder, fraction, cc="XX"):
    return OwnershipClaim(
        subject_name=subject,
        holder_name=holder,
        fraction=fraction,
        holder_is_government=False,
        holder_cc=cc,
    )


class TestDirectConfirmation:
    def test_majority_confirms(self):
        corpus = ConfirmationCorpus(
            [doc("d1", "Zamtelia Telecom", [gov_claim("Zamtelia Telecom", 0.547)])]
        )
        verdict = OwnershipAnalyst(corpus).investigate("Zamtelia Telecom")
        assert verdict.status is ConfirmationStatus.CONFIRMED
        assert verdict.controlling_cc == "XX"
        assert verdict.total_equity == pytest.approx(0.547)
        assert verdict.source_type is SourceType.COMPANY_WEBSITE

    def test_minority_logged(self):
        corpus = ConfirmationCorpus(
            [doc("d1", "Orangutan Telecom", [gov_claim("Orangutan Telecom", 0.23)])]
        )
        analyst = OwnershipAnalyst(corpus)
        verdict = analyst.investigate("Orangutan Telecom")
        assert verdict.status is ConfirmationStatus.MINORITY
        assert analyst.minority_log

    def test_no_documents_no_evidence(self):
        corpus = ConfirmationCorpus([doc("d1", "Unrelated Company Here")])
        verdict = OwnershipAnalyst(corpus).investigate("Ghost Operator Xy")
        assert verdict.status is ConfirmationStatus.NO_EVIDENCE

    def test_document_without_claims_no_evidence(self):
        corpus = ConfirmationCorpus([doc("d1", "Quiet Firma")])
        verdict = OwnershipAnalyst(corpus).investigate("Quiet Firma")
        assert verdict.status is ConfirmationStatus.NO_EVIDENCE

    def test_private_holders_not_state(self):
        corpus = ConfirmationCorpus(
            [doc(
                "d1",
                "Privy Netco",
                [corp_claim("Privy Netco", "Owner Capital Partners", 0.8)],
            )]
        )
        verdict = OwnershipAnalyst(corpus).investigate("Privy Netco")
        assert verdict.status is ConfirmationStatus.NOT_STATE


class TestChains:
    def test_fund_aggregation(self):
        """Telekom-Malaysia pattern: three sub-majority funds add up."""
        corpus = ConfirmationCorpus(
            [
                doc("d1", "Malaco Telecom", [
                    corp_claim("Malaco Telecom", "Khaz Fund", 0.26),
                    corp_claim("Malaco Telecom", "Amanah Fund", 0.18),
                    corp_claim("Malaco Telecom", "Pension Fund Alpha", 0.12),
                ]),
                doc("d2", "Khaz Fund", [gov_claim("Khaz Fund", 1.0)]),
                doc("d3", "Amanah Fund", [gov_claim("Amanah Fund", 0.9)]),
                doc(
                    "d4",
                    "Pension Fund Alpha",
                    [gov_claim("Pension Fund Alpha", 0.8)],
                ),
            ]
        )
        verdict = OwnershipAnalyst(corpus).investigate("Malaco Telecom")
        assert verdict.status is ConfirmationStatus.CONFIRMED
        assert verdict.total_equity == pytest.approx(0.56)

    def test_broken_chain_yields_minority(self):
        corpus = ConfirmationCorpus(
            [
                doc("d1", "Malaco Telecom", [
                    corp_claim("Malaco Telecom", "Khaz Fund", 0.26),
                    corp_claim("Malaco Telecom", "Mystery Fund", 0.3),
                ]),
                doc("d2", "Khaz Fund", [gov_claim("Khaz Fund", 1.0)]),
                # no document exists about Mystery Fund
            ]
        )
        verdict = OwnershipAnalyst(corpus).investigate("Malaco Telecom")
        assert verdict.status is ConfirmationStatus.MINORITY

    def test_parent_chain_confirms_subsidiary(self):
        corpus = ConfirmationCorpus(
            [
                doc("d1", "Qtel Tunisia", [
                    corp_claim("Qtel Tunisia", "Qtel Group", 0.9, cc="QA"),
                ], cc="TN"),
                doc(
                    "d2",
                    "Qtel Group",
                    [gov_claim("Qtel Group", 0.68, cc="QA")],
                    cc="QA",
                ),
            ]
        )
        verdict = OwnershipAnalyst(corpus).investigate("Qtel Tunisia")
        assert verdict.status is ConfirmationStatus.CONFIRMED
        assert verdict.controlling_cc == "QA"
        assert ("qtel", 0.9) in [  # "group" is stripped as a legal suffix
            (name, frac) for name, frac in verdict.parent_candidates
        ]

    def test_cycle_terminates(self):
        alpha = "Alpha Loop Holdings Xq"
        beta = "Beta Loop Holdings Xq"
        corpus = ConfirmationCorpus(
            [
                doc("d1", alpha, [corp_claim(alpha, beta, 0.6)]),
                doc("d2", beta, [corp_claim(beta, alpha, 0.6)]),
            ]
        )
        verdict = OwnershipAnalyst(corpus).investigate(alpha)
        assert verdict.status in (
            ConfirmationStatus.NOT_STATE, ConfirmationStatus.NO_EVIDENCE
        )


class TestAssertions:
    def test_authoritative_assertion_confirms(self):
        claim = OwnershipClaim(
            subject_name="Sahel Telecom",
            holder_name="the state",
            fraction=None,
            holder_is_government=True,
            holder_cc="ML",
        )
        corpus = ConfirmationCorpus(
            [doc("d1", "Sahel Telecom", [claim], source=SourceType.WORLD_BANK, cc="ML")]
        )
        verdict = OwnershipAnalyst(corpus).investigate("Sahel Telecom")
        assert verdict.status is ConfirmationStatus.CONFIRMED
        assert verdict.total_equity is None
        assert verdict.source_type is SourceType.WORLD_BANK

    def test_quantified_majority_beats_assertion(self):
        claims = [gov_claim("Dual Evidence Telco", 0.72)]
        assertion = OwnershipClaim(
            subject_name="Dual Evidence Telco",
            holder_name="the state",
            fraction=None,
            holder_is_government=True,
            holder_cc="XX",
        )
        corpus = ConfirmationCorpus(
            [
                doc("d1", "Dual Evidence Telco", claims),
                doc(
                    "d2",
                    "Dual Evidence Telco",
                    [assertion],
                    source=SourceType.FREEDOM_HOUSE,
                ),
            ]
        )
        verdict = OwnershipAnalyst(corpus).investigate("Dual Evidence Telco")
        assert verdict.total_equity == pytest.approx(0.72)


class TestSubnational:
    def test_subnational_majority_excluded(self):
        claim = OwnershipClaim(
            subject_name="Northland Regional Telecom",
            holder_name="Province of Northland",
            fraction=0.8,
            holder_is_government=False,
            holder_cc="XX",
            holder_is_subnational=True,
        )
        corpus = ConfirmationCorpus([doc("d1", "Northland Regional Telecom", [claim])])
        verdict = OwnershipAnalyst(corpus).investigate("Northland Regional Telecom")
        assert verdict.status is ConfirmationStatus.EXCLUDED_SUBNATIONAL


class TestJointVenture:
    def test_majority_government_wins(self):
        corpus = ConfirmationCorpus(
            [doc("d1", "Paktel Dual", [
                gov_claim("Paktel Dual", 0.62, cc="PK"),
                gov_claim("Paktel Dual", 0.26, cc="AE"),
            ])]
        )
        verdict = OwnershipAnalyst(corpus).investigate("Paktel Dual")
        assert verdict.controlling_cc == "PK"
        assert verdict.state_equity["AE"] == pytest.approx(0.26)


class TestSubsidiaryNames:
    def test_subsidiary_list_surfaces(self):
        corpus = ConfirmationCorpus(
            [doc(
                "d1",
                "Expansion Grp Telco",
                [gov_claim("Expansion Grp Telco", 0.7)],
                source=SourceType.ANNUAL_REPORT,
                subsidiaries=("Expansion Grp Kenya", "Expansion Grp Ghana"),
            )]
        )
        verdict = OwnershipAnalyst(corpus).investigate("Expansion Grp Telco")
        assert verdict.subsidiary_names == [
            "Expansion Grp Ghana", "Expansion Grp Kenya"
        ]


class TestExclusionClassifier:
    @pytest.mark.parametrize(
        "name,reason",
        [
            ("Kenya National Research and Education Network", ExclusionReason.ACADEMIC),
            ("University of Testland Network", ExclusionReason.ACADEMIC),
            ("Testland Government Network Agency", ExclusionReason.GOVNET),
            ("Testland Network Information Centre", ExclusionReason.NIC),
            ("Testland Northern Regional Telecom", ExclusionReason.SUBNATIONAL),
        ],
    )
    def test_names_classified(self, name, reason):
        assert classify_exclusion(name) is reason

    def test_ordinary_operator_not_excluded(self):
        assert classify_exclusion("Telekom Malaysia Berhad") is None

    def test_peeringdb_type_classifies(self):
        assert (
            classify_exclusion("Plain Name", "Educational/Research")
            is ExclusionReason.ACADEMIC
        )
        assert (
            classify_exclusion("Plain Name", "Government") is ExclusionReason.GOVNET
        )
        assert classify_exclusion("Plain Name", "NSP") is None


class TestMemoization:
    def test_repeated_investigation_cached(self):
        corpus = ConfirmationCorpus(
            [doc("d1", "Cachable Telco", [gov_claim("Cachable Telco", 0.9)])]
        )
        analyst = OwnershipAnalyst(corpus)
        first = analyst.investigate("Cachable Telco")
        second = analyst.investigate("Cachable Telco")
        assert first is second
