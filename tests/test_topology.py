"""Tests for the AS graph: relationships, validation, cones."""

import pytest

from repro.errors import TopologyError
from repro.net.topology import ASGraph, Relationship


def chain_graph():
    """1 <- 2 <- 3 (provider <- customer), 2~4 peers."""
    g = ASGraph()
    g.add_c2p(2, 1)
    g.add_c2p(3, 2)
    g.add_p2p(2, 4)
    return g


class TestConstruction:
    def test_add_as_idempotent(self):
        g = ASGraph()
        idx1 = g.add_as(10)
        idx2 = g.add_as(10)
        assert idx1 == idx2
        assert len(g) == 1

    def test_self_loop_rejected(self):
        g = ASGraph()
        with pytest.raises(TopologyError):
            g.add_c2p(5, 5)
        with pytest.raises(TopologyError):
            g.add_p2p(5, 5)

    def test_duplicate_edge_ignored(self):
        g = ASGraph()
        g.add_c2p(2, 1)
        g.add_c2p(2, 1)
        assert g.num_edges() == 1

    def test_conflicting_relationship_rejected(self):
        g = ASGraph()
        g.add_c2p(2, 1)
        with pytest.raises(TopologyError):
            g.add_c2p(1, 2)
        with pytest.raises(TopologyError):
            g.add_p2p(1, 2)

    def test_peer_then_c2p_conflict(self):
        g = ASGraph()
        g.add_p2p(1, 2)
        with pytest.raises(TopologyError):
            g.add_c2p(1, 2)

    def test_invalid_asn(self):
        g = ASGraph()
        with pytest.raises(TopologyError):
            g.add_as(0)


class TestQueries:
    def test_neighbors(self):
        g = chain_graph()
        assert g.providers_of(2) == [1]
        assert g.customers_of(2) == [3]
        assert g.peers_of(2) == [4]
        assert g.degree(2) == 3

    def test_relationship_views(self):
        g = chain_graph()
        assert g.relationship(2, 1) is Relationship.PROVIDER
        assert g.relationship(1, 2) is Relationship.CUSTOMER
        assert g.relationship(2, 4) is Relationship.PEER
        assert g.relationship(1, 3) is None

    def test_unknown_as_raises(self):
        g = chain_graph()
        with pytest.raises(TopologyError):
            g.providers_of(99)

    def test_stub_and_transit_free(self):
        g = chain_graph()
        assert g.is_stub(3)
        assert not g.is_stub(1)
        assert set(g.transit_free()) == {1, 4}

    def test_connected_components(self):
        g = chain_graph()
        g.add_c2p(20, 10)  # disconnected island
        components = g.connected_components()
        assert len(components) == 2
        assert {1, 2, 3, 4} in components
        assert {10, 20} in components


class TestCones:
    def test_stub_cone_is_self(self):
        g = chain_graph()
        assert g.customer_cone(3) == frozenset({3})
        assert g.customer_cone_size(3) == 1

    def test_chain_cone(self):
        g = chain_graph()
        assert g.customer_cone(1) == frozenset({1, 2, 3})
        assert g.customer_cone(2) == frozenset({2, 3})

    def test_peers_not_in_cone(self):
        g = chain_graph()
        assert 4 not in g.customer_cone(1)

    def test_diamond_counts_once(self):
        g = ASGraph()
        g.add_c2p(2, 1)
        g.add_c2p(3, 1)
        g.add_c2p(4, 2)
        g.add_c2p(4, 3)
        assert g.customer_cone_size(1) == 4

    def test_batch_sizes(self):
        g = chain_graph()
        sizes = g.customer_cone_sizes([1, 2, 3])
        assert sizes == {1: 3, 2: 2, 3: 1}


class TestValidation:
    def test_valid_graph_passes(self):
        chain_graph().validate()

    def test_cycle_detected(self):
        g = ASGraph()
        g.add_c2p(2, 1)
        g.add_c2p(3, 2)
        # Force a cycle by editing internals (the public API forbids it for
        # direct back-edges, but longer cycles are representable).
        g.add_c2p(1, 3)
        with pytest.raises(TopologyError):
            g.validate()

    def test_generated_world_is_valid(self, tiny_world):
        tiny_world.graph.validate()

    def test_generated_world_connected_to_tier1(self, tiny_world):
        # Everything with a prefix should reach the tier-1 mesh.
        components = tiny_world.graph.connected_components()
        largest = max(components, key=len)
        assert len(largest) / len(tiny_world.graph) > 0.99
