"""Tests for the evaluation analyses (tables, figures, report)."""

import pytest

from repro.analysis.cones import figure5_growth_series, table5_top_cones
from repro.analysis.contributions import (
    cti_only_ases,
    source_contributions,
    venn_regions,
    venn_three_categories,
)
from repro.analysis.footprint import (
    compute_footprints,
    figure1_map_data,
    figure4_histograms,
    figure6_map_data,
    table8_dominant_countries,
)
from repro.analysis.report import full_report, headline_stats
from repro.analysis.tables import (
    table1_confirmation_sources,
    table2_country_participation,
    table3_foreign_subsidiaries,
    table4_by_rir,
)
from repro.core import validate_against_world
from repro.sources.base import InputSource


@pytest.fixture(scope="module")
def footprints(pipeline_result, small_inputs):
    return compute_footprints(
        pipeline_result.dataset,
        small_inputs.prefix2as,
        small_inputs.geolocation,
        small_inputs.eyeballs,
    )


class TestHeadline:
    def test_shares_in_paper_band(self, pipeline_result, small_inputs):
        stats = headline_stats(pipeline_result, small_inputs)
        assert 0.08 <= stats["announced_space_share"] <= 0.3
        assert (stats["announced_space_share_ex_us"] > stats["announced_space_share"])

    def test_counts_consistent(self, pipeline_result, small_inputs):
        stats = headline_stats(pipeline_result, small_inputs)
        assert stats["foreign_subsidiary_asns"] <= stats["state_owned_asns"]
        assert (stats["foreign_subsidiary_companies"] <= stats["companies"])


class TestTable1:
    def test_website_dominates(self, pipeline_result):
        table = table1_confirmation_sources(pipeline_result)
        assert table["Company's website"] == max(table.values())

    def test_totals_match_org_count(self, pipeline_result):
        table = table1_confirmation_sources(pipeline_result)
        assert sum(table.values()) == len(pipeline_result.dataset)


class TestTable2:
    def test_shape(self, pipeline_result):
        table = table2_country_participation(pipeline_result)
        assert table["state_owned_operators"] > table["subsidiaries"]
        assert table["total_countries"] >= table["state_owned_operators"]


class TestTable3:
    def test_owners_sorted_by_reach(self, pipeline_result):
        rows = table3_foreign_subsidiaries(pipeline_result)
        counts = [count for _, count, _ in rows]
        assert counts == sorted(counts, reverse=True)

    def test_targets_differ_from_owner(self, pipeline_result):
        for owner, _count, targets in table3_foreign_subsidiaries(pipeline_result):
            assert owner not in targets


class TestTable4:
    def test_arin_is_the_outlier(self, pipeline_result):
        table = table4_by_rir(pipeline_result)
        arin_pct = table["ARIN"][2]
        for rir in ("AFRINIC", "APNIC", "RIPE"):
            assert table[rir][2] > arin_pct

    def test_world_row_aggregates(self, pipeline_result):
        table = table4_by_rir(pipeline_result)
        rirs = [r for r in table if r != "World"]
        assert table["World"][0] == sum(table[r][0] for r in rirs)


class TestTable5AndFigure5:
    def test_top_cones_shape(self, pipeline_result, small_inputs):
        rows = table5_top_cones(
            pipeline_result.dataset, small_inputs.asrank, small_inputs.whois
        )
        assert len(rows) == 10
        sizes = [size for *_x, size in rows]
        assert sizes == sorted(sizes, reverse=True)
        assert sizes[0] > 50  # state carriers serve real cones

    def test_growth_series(self, pipeline_result, small_inputs):
        series = figure5_growth_series(
            pipeline_result.dataset, small_inputs.asrank, k=2
        )
        assert len(series) == 2
        for history in series.values():
            assert history[0][0] == (2010, 1)
            assert history[-1][0] == (2020, 4)
            assert history[-1][1] >= history[0][1]  # the decade grew


class TestContributions:
    def test_every_source_contributes(self, pipeline_result):
        table = source_contributions(pipeline_result)
        for code in ("G", "E", "C", "W", "O"):
            ases, _subs, _minority = table[code]
            assert ases > 0, f"source {code} contributed nothing"

    def test_cti_is_smallest(self, pipeline_result):
        table = source_contributions(pipeline_result)
        cti = table["C"][0]
        for code in ("G", "E", "W", "O"):
            assert table[code][0] > cti

    def test_total_row(self, pipeline_result):
        table = source_contributions(pipeline_result)
        assert table["TOTAL"][0] == len(pipeline_result.dataset.all_asns())

    def test_cti_unique_contribution(self, pipeline_result, small_inputs):
        rows = cti_only_ases(pipeline_result, small_inputs.whois)
        assert rows, "CTI must contribute ASes no other source finds"
        for asn, cc, name in rows:
            assert pipeline_result.asn_inputs[asn] == frozenset({InputSource.CTI})

    def test_venn_regions_sum(self, pipeline_result):
        regions = venn_regions(pipeline_result)
        attributed = sum(regions.values())
        assert attributed <= len(pipeline_result.dataset.all_asns())
        assert "00000" not in regions

    def test_three_category_venn_sum(self, pipeline_result):
        venn = venn_three_categories(pipeline_result)
        total = sum(venn.values())
        assert total <= len(pipeline_result.dataset.all_asns())
        assert venn["all_three"] > 0


class TestFootprint:
    def test_shares_bounded(self, footprints):
        for fp in footprints.values():
            for value in (
                fp.domestic_addr_share,
                fp.domestic_eyeball_share,
                fp.foreign_addr_share,
                fp.foreign_eyeball_share,
            ):
                assert 0.0 <= value <= 1.0 + 1e-9

    def test_us_has_no_domestic_state_footprint(self, footprints):
        us = footprints.get("US")
        assert us is not None
        assert us.domestic_addr_share == 0.0

    def test_africa_hosts_foreign_footprints(self, footprints, small_world):
        region_of = {c.cc: c.region for c in small_world.countries}
        african_foreign = [
            fp.foreign_max
            for cc, fp in footprints.items()
            if region_of.get(cc) == "Africa"
        ]
        assert sum(1 for v in african_foreign if v > 0.05) >= 3

    def test_figure1_map(self, footprints):
        data = figure1_map_data(footprints)
        for blue, green in data.values():
            assert 0.0 <= blue <= 1.0 + 1e-9
            assert 0.0 <= green <= 1.0 + 1e-9

    def test_figure4_bins(self, footprints):
        for proxy in ("addresses", "eyeballs"):
            bins = figure4_histograms(footprints, proxy)
            assert set(bins) == {f"{i / 10:.1f}" for i in range(11)}

    def test_figure4_rejects_bad_proxy(self, footprints):
        with pytest.raises(ValueError):
            figure4_histograms(footprints, "bananas")

    def test_table8_dominants(self, footprints):
        dominant = table8_dominant_countries(footprints)
        assert len(dominant) >= 3
        for _cc, value in dominant:
            assert value >= 0.9

    def test_figure6_colors(self, pipeline_result):
        colors = figure6_map_data(pipeline_result.dataset, {"DE"})
        assert set(colors.values()) <= {"majority", "minority", "none"}
        assert "US" in colors and colors["US"] == "none"


class TestFullReport:
    def test_report_renders(self, pipeline_result, small_inputs, small_world):
        validation = validate_against_world(pipeline_result, small_world)
        text = full_report(pipeline_result, small_inputs, validation)
        for marker in (
            "Headline",
            "Table 1",
            "Table 2",
            "Table 3",
            "Table 4",
            "Table 5",
            "Table 6",
            "Table 7",
            "Table 8",
            "Figure 3",
            "Validation",
        ):
            assert marker in text
