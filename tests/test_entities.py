"""Tests for entity dataclasses and their validation."""

import pytest

from repro.errors import OwnershipError
from repro.world.entities import (
    AsnRecord,
    Entity,
    EntityKind,
    Operator,
    OperatorRole,
    OperatorScope,
    OwnershipStake,
    RESTRICTED_ROLES,
)


class TestEntity:
    def test_display_name_prefers_brand(self):
        e = Entity("x", EntityKind.OPERATOR, "Legal Name Ltd", "NO", brand="Brand")
        assert e.display_name == "Brand"

    def test_display_name_falls_back(self):
        e = Entity("x", EntityKind.PRIVATE, "Legal Name Ltd", "NO")
        assert e.display_name == "Legal Name Ltd"

    def test_empty_id_rejected(self):
        with pytest.raises(OwnershipError):
            Entity("", EntityKind.PRIVATE, "Name", "NO")

    def test_empty_name_rejected(self):
        with pytest.raises(OwnershipError):
            Entity("x", EntityKind.PRIVATE, "", "NO")


class TestOperator:
    def test_wrong_kind_rejected(self):
        with pytest.raises(OwnershipError):
            Operator(
                entity_id="x",
                kind=EntityKind.PRIVATE,
                name="N",
                cc="NO",
            )

    def test_restricted_roles(self):
        assert OperatorRole.ACADEMIC in RESTRICTED_ROLES
        assert OperatorRole.INCUMBENT not in RESTRICTED_ROLES
        op = Operator(
            entity_id="x",
            kind=EntityKind.OPERATOR,
            name="N",
            cc="NO",
            role=OperatorRole.GOVNET,
        )
        assert not op.offers_unrestricted_service

    def test_default_scope_national(self):
        op = Operator(entity_id="x", kind=EntityKind.OPERATOR, name="N", cc="NO")
        assert op.scope is OperatorScope.NATIONAL


class TestAsnRecord:
    def test_num_addresses(self):
        record = AsnRecord(
            asn=100,
            operator_id="op",
            cc="NO",
            rir="RIPE",
            registered_name="N",
            role=OperatorRole.ACCESS,
            prefixes=[(0, 24), (256 * 256, 16)],
        )
        assert record.num_addresses == 256 + 65536

    def test_invalid_asn(self):
        with pytest.raises(OwnershipError):
            AsnRecord(
                asn=0,
                operator_id="op",
                cc="NO",
                rir="RIPE",
                registered_name="N",
                role=OperatorRole.ACCESS,
            )

    def test_negative_eyeballs(self):
        with pytest.raises(OwnershipError):
            AsnRecord(
                asn=5,
                operator_id="op",
                cc="NO",
                rir="RIPE",
                registered_name="N",
                role=OperatorRole.ACCESS,
                eyeballs=-1,
            )


class TestOwnershipStakeValidation:
    def test_since_year_default(self):
        stake = OwnershipStake("a", "b", 0.5)
        assert stake.since_year == 2000
