"""Invariant tests for the synthetic world generator."""

from collections import Counter


from repro.config import WorldConfig
from repro.net.prefix import Prefix, PrefixTrie
from repro.world.entities import EntityKind, OperatorRole, OperatorScope
from repro.world.generator import WorldGenerator


class TestStructure:
    def test_asns_unique_across_operators(self, tiny_world):
        seen = set()
        for asns in tiny_world.operator_asns.values():
            for asn in asns:
                assert asn not in seen
                seen.add(asn)

    def test_every_record_has_an_operator(self, tiny_world):
        for record in tiny_world.asn_records.values():
            operator = tiny_world.operator(record.operator_id)
            assert operator.kind is EntityKind.OPERATOR

    def test_prefixes_do_not_overlap_across_operators(self, tiny_world):
        # More-specific announcements only happen within one operator's
        # sibling set; cross-operator prefixes must be disjoint.
        trie = PrefixTrie()
        for asn, record in tiny_world.asn_records.items():
            for base, length in record.prefixes:
                trie.insert(Prefix(base, length), record.operator_id)
        for prefix, owner in trie.items():
            for covering, other_owner in trie.covering(prefix):
                assert other_owner == owner

    def test_rir_matches_country(self, tiny_world):
        rir_of = {c.cc: c.rir for c in tiny_world.countries}
        for record in tiny_world.asn_records.values():
            assert record.rir == rir_of[record.cc]

    def test_topology_contains_all_asns(self, tiny_world):
        for asn in tiny_world.asn_records:
            assert asn in tiny_world.graph

    def test_monitor_hosts_exist(self, tiny_world):
        for monitor in tiny_world.monitors:
            assert monitor.host_asn in tiny_world.graph


class TestGroundTruth:
    def test_us_has_no_domestic_state_operators(self, tiny_world):
        for gto in tiny_world.ground_truth():
            if gto.operator.cc == "US":
                # only foreign subsidiaries may operate in the US
                assert gto.is_foreign_subsidiary

    def test_restricted_roles_excluded(self, tiny_world):
        roles = {gto.operator.role for gto in tiny_world.ground_truth()}
        assert OperatorRole.ACADEMIC not in roles
        assert OperatorRole.GOVNET not in roles
        assert OperatorRole.NIC not in roles

    def test_subnational_excluded(self, tiny_world):
        for gto in tiny_world.ground_truth():
            assert gto.operator.scope is OperatorScope.NATIONAL

    def test_expansion_profiles_realized(self, tiny_world):
        owners = Counter()
        for gto in tiny_world.ground_truth():
            if gto.is_foreign_subsidiary:
                owners[gto.controlling_cc] += 1
        profiles = tiny_world.config.expansion_profiles
        # Most configured expanders materialize (ASN-less subs may vanish).
        realized = sum(1 for cc in profiles if owners.get(cc, 0) > 0)
        assert realized >= len(profiles) * 0.7

    def test_foreign_subsidiaries_have_parents(self, tiny_world):
        for gto in tiny_world.ground_truth():
            if gto.is_foreign_subsidiary:
                parent = tiny_world.ownership.majority_parent(gto.operator.entity_id)
                assert parent is not None

    def test_forced_cable_countries(self, tiny_world):
        cable_ccs = {
            gto.operator.cc
            for gto in tiny_world.ground_truth()
            if gto.operator.role is OperatorRole.CABLE
        }
        for cc in tiny_world.config.forced_cable_ccs:
            assert cc in cable_ccs

    def test_forced_share_countries_state_owned(self, tiny_world):
        owners = tiny_world.state_owned_countries()
        for cc in tiny_world.config.forced_state_share:
            assert cc in owners


class TestCalibration:
    def test_address_share_in_band(self, small_world):
        counts = small_world.true_address_counts()
        total = sum(counts.values())
        so = sum(counts.get(a, 0) for a in small_world.ground_truth_asns())
        assert 0.10 <= so / total <= 0.30   # paper: 0.17

    def test_us_overrepresented(self, small_world):
        counts = small_world.true_address_counts()
        total = sum(counts.values())
        us = sum(
            counts.get(a, 0) for a, r in small_world.asn_records.items() if r.cc == "US"
        )
        assert us / total > 0.2

    def test_country_counts_in_band(self, small_world):
        owners = small_world.state_owned_countries()
        assert 90 <= len(owners) <= 160     # paper: 123

    def test_transit_dominant_count(self, small_world):
        assert 40 <= len(small_world.transit_dominant_ccs) <= 110  # paper: 75


class TestDeterminism:
    def test_same_seed_same_world(self):
        config = WorldConfig.tiny(seed=123)
        w1 = WorldGenerator(config).generate()
        w2 = WorldGenerator(WorldConfig.tiny(seed=123)).generate()
        assert set(w1.asn_records) == set(w2.asn_records)
        assert w1.ground_truth_asns() == w2.ground_truth_asns()
        assert w1.graph.num_edges() == w2.graph.num_edges()

    def test_different_seed_different_world(self):
        w1 = WorldGenerator(WorldConfig.tiny(seed=1)).generate()
        w2 = WorldGenerator(WorldConfig.tiny(seed=2)).generate()
        assert set(w1.asn_records) != set(w2.asn_records)


class TestWiringShmProtocol:
    """The per-country wiring plan survives the shared-memory result path."""

    def test_country_wiring_roundtrip(self):
        from repro.world.generator import _CountryWiring

        original = _CountryWiring(
            cc="BR",
            has_operators=True,
            gateways=[64512, 64513],
            edges=[("c2p", 64512, 100), ("p2p", 64512, 64513), ("c2p", 64514, 64512)],
            exports=[(64512, ["AR", "CL"]), (64513, [])],
        )
        meta, buffers = original.__shm_export__()
        rebuilt = _CountryWiring.__shm_rebuild__(
            meta, [memoryview(bytes(memoryview(buf))).cast(fmt) for fmt, buf in buffers]
        )
        assert rebuilt == original

    def test_empty_wiring_roundtrip(self):
        from repro.world.generator import _CountryWiring

        original = _CountryWiring("AQ", False, [], [], [])
        meta, buffers = original.__shm_export__()
        rebuilt = _CountryWiring.__shm_rebuild__(
            meta, [memoryview(bytes(memoryview(buf))).cast(fmt) for fmt, buf in buffers]
        )
        assert rebuilt == original

    def test_parallel_worldgen_matches_serial(self):
        from repro.parallel import ExecutionContext

        config = WorldConfig(seed=97, scale=0.3)
        serial = WorldGenerator(config).generate()
        with ExecutionContext(jobs=2, backend="process") as context:
            parallel = WorldGenerator(config, context=context).generate()
        assert dict(serial.asn_records) == dict(parallel.asn_records)
        ga, gb = serial.graph, parallel.graph
        assert sorted(ga.asns) == sorted(gb.asns)
        for asn in ga.asns:
            assert sorted(ga.providers_of(asn)) == sorted(gb.providers_of(asn))
            assert sorted(ga.peers_of(asn)) == sorted(gb.peers_of(asn))
