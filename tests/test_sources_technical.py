"""Tests for the technical data sources: prefix2as, geolocation, eyeballs,
WHOIS, PeeringDB, AS2Org, ASRank."""

import pytest

from repro.config import SourceNoiseConfig
from repro.errors import SourceError
from repro.net.prefix import Prefix
from repro.sources.as2org import As2OrgDataset
from repro.sources.asrank import AsRankDataset, linear_trend
from repro.sources.eyeballs import EyeballDataset
from repro.sources.geolocation import GeolocationService
from repro.sources.peeringdb import PeeringDBDataset
from repro.sources.prefix2as import Prefix2ASTable
from repro.sources.whois import WhoisDatabase
from repro.text.normalize import normalize_name


@pytest.fixture(scope="module")
def p2a(tiny_world):
    return Prefix2ASTable.from_world(tiny_world)


@pytest.fixture(scope="module")
def whois(tiny_world):
    return WhoisDatabase.from_world(tiny_world)


class TestPrefix2AS:
    def test_covers_all_records(self, tiny_world, p2a):
        assert p2a.origins == set(tiny_world.asn_records)

    def test_empty_rejected(self):
        with pytest.raises(SourceError):
            Prefix2ASTable([])

    def test_origin_lookup(self, tiny_world, p2a):
        prefix, origin = next(iter(p2a))
        assert p2a.origin_of(prefix.base) is not None
        assert p2a.origin_of_prefix(prefix) == origin

    def test_address_counts_match_world(self, tiny_world, p2a):
        assert p2a.announced_address_counts() == tiny_world.true_address_counts()

    def test_total_positive(self, p2a):
        assert p2a.total_announced_addresses() > 0


class TestGeolocation:
    def test_locate_prefix_conserves_addresses(self, tiny_world, p2a):
        geo = GeolocationService.from_world(tiny_world)
        for prefix, origin in list(p2a)[:50]:
            split = geo.locate_prefix(prefix, origin)
            assert sum(split.values()) == prefix.num_addresses

    def test_determinism(self, tiny_world, p2a):
        geo = GeolocationService.from_world(tiny_world)
        prefix, origin = next(iter(p2a))
        assert geo.locate_prefix(prefix, origin) == geo.locate_prefix(prefix, origin)

    def test_mostly_correct(self, tiny_world, p2a):
        geo = GeolocationService.from_world(tiny_world)
        correct = total = 0
        for prefix, origin in list(p2a)[:200]:
            true_cc = tiny_world.asn_records[origin].cc
            split = geo.locate_prefix(prefix, origin)
            correct += split.get(true_cc, 0)
            total += prefix.num_addresses
        assert correct / total > 0.85

    def test_perfect_accuracy_no_leak(self, tiny_world, p2a):
        noise = SourceNoiseConfig(geolocation_accuracy=1.0)
        geo = GeolocationService.from_world(tiny_world, noise)
        for prefix, origin in list(p2a)[:50]:
            split = geo.locate_prefix(prefix, origin)
            assert len(split) == 1

    def test_unknown_origin_raises(self, tiny_world):
        geo = GeolocationService.from_world(tiny_world)
        with pytest.raises(SourceError):
            geo.locate_prefix(Prefix.parse("10.0.0.0/24"), 999999999)

    def test_triplets_shape(self, tiny_world, p2a):
        geo = GeolocationService.from_world(tiny_world)
        triplets = geo.country_asn_addresses(p2a)
        assert triplets
        for (asn, cc), count in triplets.items():
            assert count > 0
            assert asn in tiny_world.asn_records
            assert len(cc) == 2


class TestEyeballs:
    def test_only_eyeball_ases_covered(self, tiny_world):
        eyeballs = EyeballDataset.from_world(tiny_world)
        for asn in eyeballs.covered_asns():
            assert tiny_world.asn_records[asn].eyeballs > 0

    def test_estimates_near_truth(self, tiny_world):
        eyeballs = EyeballDataset.from_world(tiny_world)
        ratio_ok = 0
        asns = eyeballs.covered_asns()
        for asn in asns:
            true = tiny_world.asn_records[asn].eyeballs
            est = eyeballs.estimate(asn)
            if 0.4 <= est / true <= 2.5:
                ratio_ok += 1
        assert ratio_ok / len(asns) > 0.9

    def test_country_shares_sum_to_one(self, tiny_world):
        eyeballs = EyeballDataset.from_world(tiny_world)
        for cc in ("CN", "NO", "BR"):
            shares = eyeballs.country_shares(cc)
            if shares:
                assert sum(shares.values()) == pytest.approx(1.0)

    def test_coverage_below_one(self, tiny_world):
        noise = SourceNoiseConfig(eyeball_coverage=0.5)
        eyeballs = EyeballDataset.from_world(tiny_world, noise)
        candidates = sum(1 for r in tiny_world.asn_records.values() if r.eyeballs > 0)
        assert len(eyeballs) < candidates


class TestWhois:
    def test_every_asn_has_record(self, tiny_world, whois):
        assert len(whois) == len(tiny_world.asn_records)
        for asn in tiny_world.asn_records:
            assert whois.lookup(asn) is not None

    def test_record_fields(self, tiny_world, whois):
        record = whois.lookup(next(iter(tiny_world.asn_records)))
        assert record.org_id.startswith("ORG-")
        assert record.rir in ("AFRINIC", "APNIC", "ARIN", "LACNIC", "RIPE")
        assert record.as_name

    def test_same_registrant_same_name_same_org_id(self, tiny_world, whois):
        # Handles are per registrant: one operator re-using one legal name
        # across its ASNs shares an org handle...
        by_key = {}
        for record in whois:
            operator_id = tiny_world.asn_records[record.asn].operator_id
            key = (normalize_name(record.org_name), record.rir, operator_id)
            if key in by_key:
                assert by_key[key] == record.org_id
            by_key[key] = record.org_id

    def test_org_id_never_spans_operators(self, tiny_world, whois):
        # ...and no handle ever covers ASNs of two different operators,
        # even when their registered names collide.
        for org_id in whois.org_ids():
            operators = {
                tiny_world.asn_records[asn].operator_id
                for asn in whois.asns_of_org(org_id)
            }
            assert len(operators) == 1

    def test_search_name(self, whois):
        record = next(iter(whois))
        token = normalize_name(record.org_name).split()[0]
        results = whois.search_name(token)
        assert record.asn in {r.asn for r in results}

    def test_search_empty(self, whois):
        assert whois.search_name("") == []

    def test_most_names_match_operator(self, tiny_world, whois):
        matches = 0
        total = 0
        for record in whois:
            operator = tiny_world.operator(
                tiny_world.asn_records[record.asn].operator_id
            )
            total += 1
            if normalize_name(record.org_name) == normalize_name(operator.name):
                matches += 1
        # Stale names, acquisitions and aliases make this < 1, but the
        # majority of records still carry the operator's legal name.
        assert matches / total > 0.5


class TestPeeringDB:
    def test_partial_coverage(self, tiny_world):
        pdb = PeeringDBDataset.from_world(tiny_world)
        coverage = pdb.coverage(len(tiny_world.asn_records))
        assert 0.1 < coverage < 0.5

    def test_names_are_brands(self, tiny_world):
        pdb = PeeringDBDataset.from_world(tiny_world)
        for record in list(pdb)[:50]:
            operator = tiny_world.operator(
                tiny_world.asn_records[record.asn].operator_id
            )
            assert record.name == operator.display_name

    def test_transit_bias(self, tiny_world):
        pdb = PeeringDBDataset.from_world(tiny_world)
        covered = {r.asn for r in pdb}
        transit_total = transit_covered = 0
        other_total = other_covered = 0
        for asn, record in tiny_world.asn_records.items():
            if record.role.value in ("transit", "cable"):
                transit_total += 1
                transit_covered += asn in covered
            else:
                other_total += 1
                other_covered += asn in covered
        assert (
            transit_covered / max(transit_total, 1)
            > other_covered / max(other_total, 1)
        )


class TestAs2Org:
    def test_same_name_siblings_clustered(self, tiny_world, whois):
        a2o = As2OrgDataset.from_world(tiny_world, whois)
        for operator_id, asns in tiny_world.operator_asns.items():
            if len(asns) < 2:
                continue
            primary_name = normalize_name(whois.lookup(asns[0]).org_name)
            for sibling in asns[1:]:
                if normalize_name(whois.lookup(sibling).org_name) == primary_name:
                    assert a2o.org_of(sibling) == a2o.org_of(asns[0])

    def test_clusters_never_span_operators(self, tiny_world, whois):
        a2o = As2OrgDataset.from_world(tiny_world, whois)
        for org_id in a2o.org_ids():
            operators = {
                tiny_world.asn_records[asn].operator_id
                for asn in a2o.members_of(org_id)
            }
            assert len(operators) == 1

    def test_misses_exist(self, tiny_world, whois):
        noise = SourceNoiseConfig(as2org_miss_prob=1.0)
        a2o = As2OrgDataset.from_world(tiny_world, whois, noise)
        missed = 0
        for operator_id, asns in tiny_world.operator_asns.items():
            if len(asns) < 2:
                continue
            orgs = {a2o.org_of(a) for a in asns}
            if len(orgs) > 1:
                missed += 1
        assert missed > 0

    def test_siblings_of_unknown(self, tiny_world, whois):
        a2o = As2OrgDataset.from_world(tiny_world, whois)
        assert a2o.siblings_of(987654321) == frozenset({987654321})


class TestAsRank:
    def test_cone_matches_graph(self, tiny_world):
        asrank = AsRankDataset.from_world(tiny_world)
        for asn in list(tiny_world.graph)[:50]:
            assert asrank.cone_size(asn) == tiny_world.graph.customer_cone_size(asn)

    def test_unknown_asn_raises(self, tiny_world):
        asrank = AsRankDataset.from_world(tiny_world)
        with pytest.raises(SourceError):
            asrank.cone_size(987654321)

    def test_history_ends_at_current(self, tiny_world):
        asrank = AsRankDataset.from_world(tiny_world)
        asn = next(iter(tiny_world.graph))
        history = asrank.cone_history(asn)
        assert history[-1][0] == (2020, 4)
        assert history[-1][1] == asrank.cone_size(asn)

    def test_cable_profile_starts_at_zero(self, tiny_world):
        asrank = AsRankDataset.from_world(tiny_world)
        cable_asns = [
            asn
            for asn, record in tiny_world.asn_records.items()
            if record.role.value == "cable"
        ]
        assert cable_asns
        for asn in cable_asns:
            history = asrank.cone_history(asn)
            assert history[0][1] <= history[-1][1]

    def test_top_cones_sorted(self, tiny_world):
        asrank = AsRankDataset.from_world(tiny_world)
        top = asrank.top_cones(tiny_world.graph.asns, k=5)
        sizes = [size for _, size in top]
        assert sizes == sorted(sizes, reverse=True)

    def test_linear_trend(self):
        series = [((2010 + i, 1), 10 * i) for i in range(5)]
        assert linear_trend(series) == pytest.approx(10.0)
        assert linear_trend(series[:1]) == 0.0

    def test_fastest_growing_includes_cables(self, tiny_world):
        asrank = AsRankDataset.from_world(tiny_world)
        so = tiny_world.ground_truth_asns()
        fastest = [a for a, _ in asrank.fastest_growing(so, k=2)]
        roles = {tiny_world.asn_records[a].role.value for a in fastest}
        assert roles & {"cable", "transit", "incumbent"}
