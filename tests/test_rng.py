"""Tests for deterministic RNG streams."""

from hypothesis import given
from hypothesis import strategies as st

from repro.rng import SeedSequenceFactory, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "topology") == derive_seed(42, "topology")

    def test_name_sensitivity(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_seed_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    @given(st.integers(), st.text(max_size=30))
    def test_range(self, seed, name):
        value = derive_seed(seed, name)
        assert 0 <= value < 2**64


class TestFactory:
    def test_stream_cached(self):
        factory = SeedSequenceFactory(7)
        assert factory.stream("x") is factory.stream("x")

    def test_streams_independent(self):
        f1 = SeedSequenceFactory(7)
        f2 = SeedSequenceFactory(7)
        # Consuming stream "a" must not perturb stream "b".
        f1.stream("a").random()
        seq1 = [f1.stream("b").random() for _ in range(5)]
        seq2 = [f2.stream("b").random() for _ in range(5)]
        assert seq1 == seq2

    def test_fresh_restarts(self):
        factory = SeedSequenceFactory(7)
        first = factory.fresh("x").random()
        again = factory.fresh("x").random()
        assert first == again

    def test_spawn_differs_from_parent(self):
        parent = SeedSequenceFactory(7)
        child = parent.spawn("sub")
        assert child.master_seed != parent.master_seed
        assert (
            child.stream("a").random() != SeedSequenceFactory(7).stream("a").random()
        )
