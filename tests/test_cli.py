"""Tests for the command-line interface (on a tiny world for speed)."""

import pytest

from repro.cli import build_parser, main

ARGS = ["--seed", "20210701", "--scale", "0.12"]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_defaults(self):
        args = build_parser().parse_args(["generate"])
        assert args.scale == 0.3
        assert args.seed == 20210701


class TestGenerate:
    def test_generate_summary(self, capsys):
        assert main(["generate", *ARGS]) == 0
        out = capsys.readouterr().out
        assert "state-owned operators" in out
        assert "state-owned ASNs" in out


@pytest.mark.slow
class TestRunAndShow:
    def test_run_exports_and_show_reads(self, tmp_path, capsys):
        json_path = tmp_path / "out.json"
        db_path = tmp_path / "out.db"
        assert main(
            ["run", *ARGS, "--json", str(json_path), "--sqlite", str(db_path)]
        ) == 0
        assert json_path.exists() and db_path.exists()
        capsys.readouterr()

        assert main(["show", str(json_path)]) == 0
        out = capsys.readouterr().out
        assert "org_id" in out

        assert main(["show", str(db_path), "--country", "NO"]) == 0

    def test_validate_command(self, capsys):
        assert main(["validate", *ARGS]) == 0
        out = capsys.readouterr().out
        assert "precision" in out
