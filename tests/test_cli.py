"""Tests for the command-line interface (on a tiny world for speed)."""

import json

import pytest

from repro.cli import build_parser, main

ARGS = ["--seed", "20210701", "--scale", "0.12"]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_defaults(self):
        args = build_parser().parse_args(["generate"])
        assert args.scale == 0.3
        assert args.seed == 20210701


class TestGenerate:
    def test_generate_summary(self, capsys):
        assert main(["generate", *ARGS]) == 0
        out = capsys.readouterr().out
        assert "state-owned operators" in out
        assert "state-owned ASNs" in out


class TestShowErrors:
    def test_missing_file_exits_2(self, tmp_path, capsys):
        missing = tmp_path / "nope.json"
        assert main(["show", str(missing)]) == 2
        err = capsys.readouterr().err
        assert "nope.json" in err
        assert err.count("\n") == 1  # one-line message, not a traceback

    def test_corrupt_sqlite_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.db"
        bad.write_text("this is not a database")
        assert main(["show", str(bad)]) == 2
        assert "bad.db" in capsys.readouterr().err

    def test_truncated_json_exits_2(self, tmp_path, capsys):
        truncated = tmp_path / "cut.json"
        truncated.write_text('{"format_version": 1, "organizations": [{"or')
        assert main(["show", str(truncated)]) == 2
        assert "cut.json" in capsys.readouterr().err

    def test_wrong_format_version_exits_2(self, tmp_path, capsys):
        wrong = tmp_path / "wrong.json"
        wrong.write_text('{"format_version": 99}')
        assert main(["show", str(wrong)]) == 2
        assert "wrong.json" in capsys.readouterr().err

    def test_unwritable_log_json_exits_2(self, tmp_path, capsys):
        target = tmp_path / "no-such-dir" / "events.jsonl"
        assert main(["run", *ARGS, "--log-json", str(target)]) == 2
        assert "events.jsonl" in capsys.readouterr().err

    def test_bad_jobs_exits_2(self, capsys):
        assert main(["run", *ARGS, "--jobs", "-3"]) == 2
        err = capsys.readouterr().err
        assert "jobs must be >= 1" in err
        assert "Traceback" not in err


@pytest.mark.slow
class TestRunAndShow:
    def test_run_exports_and_show_reads(self, tmp_path, capsys):
        json_path = tmp_path / "out.json"
        db_path = tmp_path / "out.db"
        events_path = tmp_path / "events.jsonl"
        assert main(
            [
                "run",
                *ARGS,
                "--trace",
                "--log-json",
                str(events_path),
                "--json",
                str(json_path),
                "--sqlite",
                str(db_path),
            ]
        ) == 0
        assert json_path.exists() and db_path.exists()
        err = capsys.readouterr().err
        # --trace prints per-stage wall time and counters.
        assert "pipeline.candidates" in err
        assert "pipeline.confirmation" in err
        assert "ms" in err
        assert "origins_pruned=" in err
        # ...and ends with the cache / pool-reuse counter summary.
        assert "run.summary" in err
        # --log-json emits one valid JSON object per line.
        events = [json.loads(line) for line in events_path.read_text().splitlines()]
        assert events
        names = {event["name"] for event in events}
        assert "pipeline.expansion" in names
        assert "export.sqlite" in names
        # Spans plus the final run.summary counter event.
        assert all(event["event"] in {"span", "summary"} for event in events)
        assert events[-1]["name"] == "run.summary"

        assert main(["show", str(json_path)]) == 0
        out = capsys.readouterr().out
        assert "org_id" in out

        assert main(["show", str(db_path), "--country", "NO"]) == 0

    def test_validate_command(self, capsys):
        assert main(["validate", *ARGS]) == 0
        out = capsys.readouterr().out
        assert "precision" in out
