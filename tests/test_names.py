"""Tests for the company-name forge."""

import random

from repro.text.names import NameForge


def make_forge(seed=3):
    return NameForge(random.Random(seed))


class TestUniqueness:
    def test_incumbents_unique(self):
        forge = make_forge()
        seen = set()
        for i in range(120):
            legal, brand = forge.incumbent(f"Country{i % 40}", "RIPE")
            assert legal.lower() not in seen
            assert brand.lower() not in seen
            seen.add(legal.lower())
            seen.add(brand.lower())

    def test_all_generators_globally_unique(self):
        forge = make_forge()
        names = []
        for i in range(40):
            legal, brand = forge.challenger("Xlandia", "APNIC")
            names.extend([legal, brand])
            legal, brand = forge.transit_operator("Xlandia", "AFRINIC")
            names.extend([legal, brand])
            legal, brand = forge.subsidiary("MegaBrand", f"Target{i}", "LACNIC")
            names.extend([legal, brand])
        lowered = [n.lower() for n in names]
        # Brands may equal their own base legal name minus the suffix; only
        # exact duplicates across entries are forbidden.
        assert len(set(lowered)) == len(lowered)


class TestDeterminism:
    def test_same_seed_same_names(self):
        a, b = make_forge(9), make_forge(9)
        for _ in range(20):
            assert a.incumbent("Foo", "RIPE") == b.incumbent("Foo", "RIPE")
            assert a.fund("Foo") == b.fund("Foo")


class TestShapes:
    def test_incumbent_contains_country(self):
        forge = make_forge()
        legal, brand = forge.incumbent("Zambonia", "AFRINIC")
        assert "Zambonia" in legal
        assert brand  # contracted brand exists

    def test_subsidiary_carries_parent_brand(self):
        forge = make_forge()
        legal, brand = forge.subsidiary("Ooredoo", "Tunisia", "AFRINIC")
        assert "Ooredoo" in legal
        assert "Tunisia" in brand

    def test_unrelated_legal_name_has_suffix(self):
        forge = make_forge()
        name = forge.unrelated_legal_name("LACNIC")
        assert len(name.split()) >= 3

    def test_stale_variant_differs(self):
        forge = make_forge()
        stale = forge.stale_variant("Zambonia Telecom Ltd")
        assert stale != "Zambonia Telecom Ltd"
        assert stale.split()[0] in ("Zambonia", "The")

    def test_misleading_name_sounds_private(self):
        forge = make_forge()
        legal, brand = forge.misleading_private_name("Fiji")
        assert "Fiji" in legal

    def test_typo_variant_short_name_unchanged(self):
        forge = make_forge()
        assert forge.typo_variant("abc") == "abc"
