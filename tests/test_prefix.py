"""Unit and property tests for IPv4 prefix arithmetic and the trie."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PrefixError
from repro.net.prefix import Prefix, PrefixTrie, summarize_address_counts


def addr(a, b, c, d):
    return (a << 24) | (b << 16) | (c << 8) | d


class TestPrefixParsing:
    def test_parse_basic(self):
        p = Prefix.parse("192.0.2.0/24")
        assert p.base == addr(192, 0, 2, 0)
        assert p.length == 24

    def test_parse_default_route(self):
        p = Prefix.parse("0.0.0.0/0")
        assert p.num_addresses == 2**32

    def test_parse_host_route(self):
        p = Prefix.parse("10.1.2.3/32")
        assert p.num_addresses == 1

    def test_str_round_trip(self):
        for text in ("10.0.0.0/8", "172.16.0.0/12", "203.0.113.64/26"):
            assert str(Prefix.parse(text)) == text

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "10.0.0.0",
            "10.0.0/24",
            "10.0.0.0/33",
            "10.0.0.0/-1",
            "256.0.0.0/8",
            "a.b.c.d/8",
            "10.0.0.0/8/8",
        ],
    )
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(PrefixError):
            Prefix.parse(bad)

    def test_rejects_host_bits(self):
        with pytest.raises(PrefixError):
            Prefix(addr(10, 0, 0, 1), 24)

    def test_from_host_masks(self):
        p = Prefix.from_host(addr(10, 1, 2, 3), 16)
        assert p == Prefix.parse("10.1.0.0/16")


class TestPrefixSetOps:
    def test_covers_self(self):
        p = Prefix.parse("10.0.0.0/8")
        assert p.covers(p)

    def test_covers_more_specific(self):
        assert Prefix.parse("10.0.0.0/8").covers(Prefix.parse("10.1.0.0/16"))
        assert not Prefix.parse("10.1.0.0/16").covers(Prefix.parse("10.0.0.0/8"))

    def test_disjoint_do_not_cover(self):
        assert not Prefix.parse("10.0.0.0/8").covers(Prefix.parse("11.0.0.0/8"))

    def test_overlaps_symmetry(self):
        a, b = Prefix.parse("10.0.0.0/8"), Prefix.parse("10.2.0.0/16")
        assert a.overlaps(b) and b.overlaps(a)

    def test_contains_address_bounds(self):
        p = Prefix.parse("10.0.0.0/24")
        assert p.contains_address(p.base)
        assert p.contains_address(p.last)
        assert not p.contains_address(p.last + 1)
        assert not p.contains_address(p.base - 1)

    def test_split_halves(self):
        left, right = Prefix.parse("10.0.0.0/8").split()
        assert left == Prefix.parse("10.0.0.0/9")
        assert right == Prefix.parse("10.128.0.0/9")

    def test_split_host_route_fails(self):
        with pytest.raises(PrefixError):
            Prefix.parse("10.0.0.1/32").split()

    def test_subprefixes_count(self):
        subs = list(Prefix.parse("10.0.0.0/22").subprefixes(24))
        assert len(subs) == 4
        assert subs[0] == Prefix.parse("10.0.0.0/24")
        assert subs[-1] == Prefix.parse("10.0.3.0/24")

    def test_subprefixes_shorter_fails(self):
        with pytest.raises(PrefixError):
            list(Prefix.parse("10.0.0.0/24").subprefixes(16))


class TestPrefixTrie:
    def test_insert_and_get(self):
        trie = PrefixTrie()
        trie.insert(Prefix.parse("10.0.0.0/8"), "a")
        assert trie.get(Prefix.parse("10.0.0.0/8")) == "a"
        assert trie.get(Prefix.parse("10.0.0.0/16")) is None

    def test_replace_value(self):
        trie = PrefixTrie()
        p = Prefix.parse("10.0.0.0/8")
        trie.insert(p, "a")
        trie.insert(p, "b")
        assert trie.get(p) == "b"
        assert len(trie) == 1

    def test_longest_match_prefers_specific(self):
        trie = PrefixTrie()
        trie.insert(Prefix.parse("10.0.0.0/8"), "wide")
        trie.insert(Prefix.parse("10.1.0.0/16"), "narrow")
        match = trie.longest_match(addr(10, 1, 2, 3))
        assert match is not None
        assert match[1] == "narrow"
        match = trie.longest_match(addr(10, 2, 0, 1))
        assert match[1] == "wide"

    def test_longest_match_miss(self):
        trie = PrefixTrie()
        trie.insert(Prefix.parse("10.0.0.0/8"), "x")
        assert trie.longest_match(addr(11, 0, 0, 0)) is None

    def test_items_ordered(self):
        trie = PrefixTrie()
        prefixes = [
            Prefix.parse("11.0.0.0/8"),
            Prefix.parse("10.0.0.0/8"),
            Prefix.parse("10.5.0.0/16"),
        ]
        for p in prefixes:
            trie.insert(p, str(p))
        listed = [p for p, _ in trie.items()]
        assert listed == sorted(prefixes, key=lambda p: (p.base, p.length))

    def test_covering_chain(self):
        trie = PrefixTrie()
        for text in ("10.0.0.0/8", "10.1.0.0/16", "10.1.2.0/24"):
            trie.insert(Prefix.parse(text), text)
        covering = trie.covering(Prefix.parse("10.1.2.0/24"))
        assert [v for _, v in covering] == ["10.0.0.0/8", "10.1.0.0/16", "10.1.2.0/24"]

    def test_covered_by(self):
        trie = PrefixTrie()
        for text in ("10.0.0.0/8", "10.1.0.0/16", "11.0.0.0/8"):
            trie.insert(Prefix.parse(text), text)
        covered = {v for _, v in trie.covered_by(Prefix.parse("10.0.0.0/8"))}
        assert covered == {"10.0.0.0/8", "10.1.0.0/16"}

    def test_uncovered_addresses_no_specifics(self):
        trie = PrefixTrie()
        p = Prefix.parse("10.0.0.0/16")
        trie.insert(p, "x")
        assert trie.uncovered_addresses(p) == p.num_addresses

    def test_uncovered_addresses_subtracts_specifics(self):
        trie = PrefixTrie()
        wide = Prefix.parse("10.0.0.0/16")
        trie.insert(wide, "x")
        trie.insert(Prefix.parse("10.0.1.0/24"), "y")
        assert trie.uncovered_addresses(wide) == wide.num_addresses - 256

    def test_uncovered_addresses_nested_specifics_not_double_counted(self):
        trie = PrefixTrie()
        wide = Prefix.parse("10.0.0.0/16")
        trie.insert(wide, "x")
        trie.insert(Prefix.parse("10.0.0.0/20"), "y")
        trie.insert(Prefix.parse("10.0.1.0/24"), "z")  # inside the /20
        assert trie.uncovered_addresses(wide) == wide.num_addresses - 4096


class TestSummarizeAddressCounts:
    def test_disjoint(self):
        counts = summarize_address_counts(
            [
                (Prefix.parse("10.0.0.0/24"), 1),
                (Prefix.parse("10.0.1.0/24"), 2),
            ]
        )
        assert counts == {1: 256, 2: 256}

    def test_more_specific_attribution(self):
        counts = summarize_address_counts(
            [
                (Prefix.parse("10.0.0.0/16"), 1),
                (Prefix.parse("10.0.1.0/24"), 2),
            ]
        )
        assert counts[2] == 256
        assert counts[1] == 65536 - 256

    def test_same_origin_specific(self):
        counts = summarize_address_counts(
            [
                (Prefix.parse("10.0.0.0/16"), 1),
                (Prefix.parse("10.0.1.0/24"), 1),
            ]
        )
        assert counts == {1: 65536}


# ---------------------------------------------------------------------------
# Property tests
# ---------------------------------------------------------------------------
prefix_strategy = st.builds(
    Prefix.from_host,
    st.integers(min_value=0, max_value=2**32 - 1),
    st.integers(min_value=0, max_value=32),
)


class TestPrefixProperties:
    @given(prefix_strategy)
    def test_round_trip(self, p):
        assert Prefix.parse(str(p)) == p

    @given(prefix_strategy)
    def test_last_in_range(self, p):
        assert p.contains_address(p.base)
        assert p.contains_address(p.last)

    @given(prefix_strategy, prefix_strategy)
    def test_covers_implies_overlap(self, a, b):
        if a.covers(b):
            assert a.overlaps(b)
            assert a.num_addresses >= b.num_addresses

    @given(prefix_strategy, prefix_strategy, prefix_strategy)
    def test_covers_transitive(self, a, b, c):
        if a.covers(b) and b.covers(c):
            assert a.covers(c)

    @given(st.lists(
        st.tuples(prefix_strategy, st.integers(1, 5)), min_size=1, max_size=20
    ))
    @settings(max_examples=50, deadline=None)
    def test_uncovered_bounded(self, items):
        trie = PrefixTrie(items)
        for p, _ in items:
            uncovered = trie.uncovered_addresses(p)
            assert 0 <= uncovered <= p.num_addresses

    @given(st.lists(
        st.tuples(prefix_strategy, st.integers(1, 3)), min_size=1, max_size=15
    ))
    @settings(max_examples=50, deadline=None)
    def test_summary_conserves_union(self, items):
        # Total attributed addresses equals the size of the union of all
        # announced prefixes (each address counted exactly once).
        trie = PrefixTrie()
        for p, v in items:
            trie.insert(p, v)
        union_total = sum(trie.uncovered_addresses(p) for p, _ in trie.items())
        counts = summarize_address_counts(items)
        assert sum(counts.values()) == union_total
