"""Tests for Gao-Rexford route propagation."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TopologyError
from repro.net.bgp import RouteClass, RoutingTreeCache, propagate_routes
from repro.net.topology import ASGraph, Relationship


def valley_free(graph: ASGraph, path):
    """Check the valley-free property: once the path goes 'down' (p2c) or
    sideways (p2p), it must keep going down."""
    # Walk from origin outward: reverse so path[0] is origin.
    hops = list(reversed(path))
    seen_down_or_peer = False
    peers_used = 0
    for a, b in zip(hops, hops[1:]):
        rel = graph.relationship(b, a)  # what is a from b's perspective?
        if rel is Relationship.CUSTOMER:
            # b learned the route from its customer a: uphill segment.
            if seen_down_or_peer:
                return False
        elif rel is Relationship.PEER:
            if seen_down_or_peer:
                return False
            seen_down_or_peer = True
            peers_used += 1
            if peers_used > 1:
                return False
        else:
            seen_down_or_peer = True
    return True


class TestBasicPropagation:
    def test_origin_has_zero_distance(self):
        g = ASGraph()
        g.add_c2p(2, 1)
        tree = propagate_routes(g, 2)
        assert tree.distance(2) == 0
        assert tree.route_class(2) is RouteClass.ORIGIN
        assert tree.path_from(2) == (2,)

    def test_provider_learns_customer_route(self):
        g = ASGraph()
        g.add_c2p(2, 1)
        tree = propagate_routes(g, 2)
        assert tree.route_class(1) is RouteClass.CUSTOMER
        assert tree.path_from(1) == (1, 2)

    def test_customer_learns_provider_route(self):
        g = ASGraph()
        g.add_c2p(2, 1)
        tree = propagate_routes(g, 1)
        assert tree.route_class(2) is RouteClass.PROVIDER
        assert tree.path_from(2) == (2, 1)

    def test_peer_route_single_hop(self):
        g = ASGraph()
        g.add_p2p(1, 2)
        tree = propagate_routes(g, 1)
        assert tree.route_class(2) is RouteClass.PEER
        assert tree.path_from(2) == (2, 1)

    def test_peer_routes_not_transitive(self):
        # 1~2~3 peers: 3 must NOT reach 1 via 2 (no valley-free export).
        g = ASGraph()
        g.add_p2p(1, 2)
        g.add_p2p(2, 3)
        tree = propagate_routes(g, 1)
        assert not tree.has_route(3)

    def test_unknown_origin(self):
        g = ASGraph()
        g.add_c2p(2, 1)
        with pytest.raises(TopologyError):
            propagate_routes(g, 42)


class TestPreferences:
    def test_customer_preferred_over_peer(self):
        # 9's route to 5: via customer 5 directly... build: 9 has customer 5
        # and peer 6, where 6 also reaches 5.
        g = ASGraph()
        g.add_c2p(5, 9)     # 5 is customer of 9
        g.add_p2p(9, 6)
        g.add_c2p(5, 6)
        tree = propagate_routes(g, 5)
        assert tree.route_class(9) is RouteClass.CUSTOMER
        assert tree.path_from(9) == (9, 5)

    def test_peer_preferred_over_provider(self):
        # 3 can reach origin 1 via peer 2 (short) or via provider 4.
        g = ASGraph()
        g.add_p2p(3, 2)
        g.add_c2p(1, 2)     # 2 has customer 1 -> exports to peer 3
        g.add_c2p(3, 4)     # 4 is provider of 3
        g.add_c2p(1, 4)
        tree = propagate_routes(g, 1)
        assert tree.route_class(3) is RouteClass.PEER

    def test_customer_route_preferred_even_if_longer(self):
        # Origin 1.  AS 10 can reach via a 3-hop customer chain or a 1-hop
        # provider; Gao-Rexford prefers the customer route.
        g = ASGraph()
        g.add_c2p(1, 2)
        g.add_c2p(2, 3)
        g.add_c2p(3, 10)    # customer chain 10 <- 3 <- 2 <- 1
        g.add_c2p(10, 20)   # 20 provider of 10
        g.add_c2p(1, 20)
        tree = propagate_routes(g, 1)
        assert tree.route_class(10) is RouteClass.CUSTOMER
        assert tree.path_from(10) == (10, 3, 2, 1)

    def test_shortest_within_class(self):
        g = ASGraph()
        # two provider paths to origin 1: length 2 and length 3.
        g.add_c2p(1, 2)
        g.add_c2p(5, 2)       # 5 -> 2 -> 1 (via provider 2)
        g.add_c2p(1, 3)
        g.add_c2p(4, 3)
        g.add_c2p(5, 4)       # 5 -> 4 -> 3 -> 1
        tree = propagate_routes(g, 1)
        assert tree.distance(5) == 2

    def test_deterministic_tie_break_lowest_asn(self):
        g = ASGraph()
        g.add_c2p(1, 7)
        g.add_c2p(1, 3)
        g.add_c2p(9, 7)
        g.add_c2p(9, 3)
        tree = propagate_routes(g, 1)
        # 9 has two equal-length provider... actually customer routes via 3
        # and 7; lowest next-hop ASN (3) must win.
        assert tree.path_from(9) == (9, 3, 1)


class TestTreeCache:
    def test_cache_reuses_trees(self):
        g = ASGraph()
        g.add_c2p(2, 1)
        cache = RoutingTreeCache(g)
        t1 = cache.tree(1)
        t2 = cache.tree(1)
        assert t1 is t2
        assert len(cache) == 1


def random_valley_free_graph(rng: random.Random, n_levels=4, per_level=4):
    """Random layered graph: providers always in strictly higher layers."""
    g = ASGraph()
    levels = []
    asn = 1
    for level in range(n_levels):
        layer = []
        for _ in range(per_level):
            g.add_as(asn)
            layer.append(asn)
            asn += 1
        levels.append(layer)
    for i, layer in enumerate(levels[1:], start=1):
        for node in layer:
            providers = rng.sample(
                levels[i - 1], k=rng.randint(1, min(2, len(levels[i - 1])))
            )
            for p in providers:
                g.add_c2p(node, p)
    # a few peering edges within levels
    for layer in levels:
        for a, b in zip(layer, layer[1:]):
            if rng.random() < 0.5:
                g.add_p2p(a, b)
    return g


class TestValleyFreeProperty:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_all_paths_valley_free(self, seed):
        rng = random.Random(seed)
        g = random_valley_free_graph(rng)
        g.validate()
        origins = rng.sample(g.asns, k=3)
        for origin in origins:
            tree = propagate_routes(g, origin)
            for asn in g.asns:
                path = tree.path_from(asn)
                if path is None or len(path) < 2:
                    continue
                assert valley_free(g, path), (origin, path)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_paths_loop_free_and_consistent(self, seed):
        rng = random.Random(seed)
        g = random_valley_free_graph(rng)
        origin = rng.choice(g.asns)
        tree = propagate_routes(g, origin)
        for asn in g.asns:
            path = tree.path_from(asn)
            if path is None:
                continue
            assert len(set(path)) == len(path)       # loop-free
            assert path[0] == asn and path[-1] == origin
            assert tree.distance(asn) == len(path) - 1
