"""Tests for the adversarial scenario-pack library.

The expensive part — a full matrix run over the tiny world — happens once
in a module-scoped fixture; the assertions then slice that one report.
Cross-run determinism is checked by re-running a single pack and demanding
its outcome dict match the full-matrix run key for key, value for value
(same seed derivation, same plan, same floats).  The CI ``scenario-smoke``
job layers byte-level report comparison at scale 0.2 on top of this.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import WorldError
from repro.net.topology import ASGraph
from repro.world.scenarios import (
    SCENARIO_PACKS,
    _rebuild_graph,
    all_pack_names,
    run_scenario_packs,
)


@pytest.fixture(scope="module")
def full_report(tiny_world):
    """One full scenario-matrix run, shared by every assertion below."""
    return run_scenario_packs(tiny_world)


class TestRegistry:
    def test_at_least_five_packs(self):
        # The acceptance bar: >=5 packs asserting directional shifts.
        assert len(SCENARIO_PACKS) >= 5

    def test_names_unique_and_listed(self):
        names = all_pack_names()
        assert len(names) == len(set(names)) == len(SCENARIO_PACKS)

    def test_every_pack_documented(self):
        for pack in SCENARIO_PACKS:
            assert pack.name
            assert pack.description

    def test_unknown_pack_rejected(self, tiny_world):
        with pytest.raises(WorldError, match="unknown scenario pack"):
            run_scenario_packs(tiny_world, names=["not-a-pack"])


class TestRebuildGraph:
    def _old(self):
        g = ASGraph()
        g.add_p2p(1, 2)
        g.add_c2p(10, 1)
        g.add_c2p(10, 2)
        g.add_c2p(100, 10)
        return g

    def test_drops_and_adds_c2p_edges(self):
        new = _rebuild_graph(self._old(), {(10, 1)}, [(100, 2)])
        assert 1 not in new.providers_of(10)
        assert 2 in new.providers_of(10)
        assert sorted(new.providers_of(100)) == [2, 10]

    def test_preserves_nodes_and_peerings(self):
        old = self._old()
        new = _rebuild_graph(old, {(10, 1)}, [])
        assert new.asns == old.asns
        assert set(new.peers_of(1)) == {2}
        assert set(new.peers_of(2)) == {1}

    def test_noop_rebuild_routes_identically(self):
        from repro.net.bgp import propagate_routes

        old = self._old()
        new = _rebuild_graph(old, set(), [])
        for origin in old.asns:
            a = propagate_routes(old, origin)
            b = propagate_routes(new, origin)
            assert all(a.path_from(x) == b.path_from(x) for x in old.asns)


class TestFullMatrix:
    def test_every_pack_passes_on_tiny_world(self, full_report):
        failing = [o.name for o in full_report.outcomes if not o.passed]
        assert full_report.passed, f"failing packs: {failing}"
        assert len(full_report.outcomes) == len(SCENARIO_PACKS)

    def test_assertions_carry_evidence(self, full_report):
        for outcome in full_report.outcomes:
            assert outcome.assertions
            for assertion in outcome.assertions:
                assert assertion.name
                assert assertion.detail

    def test_report_dict_shape(self, full_report, tiny_world):
        data = full_report.as_dict()
        assert data["seed"] == tiny_world.config.seed
        assert data["scale"] == tiny_world.config.scale
        assert data["packs_total"] == len(SCENARIO_PACKS)
        assert data["packs_passed"] == len(SCENARIO_PACKS)
        assert set(data["packs"]) == set(all_pack_names())

    def test_json_is_canonical(self, full_report):
        text = full_report.to_json()
        assert text.endswith("\n")
        parsed = json.loads(text)
        assert parsed == full_report.as_dict()
        # Canonical form: re-encoding the parsed dict reproduces the text.
        assert (json.dumps(parsed, sort_keys=True, indent=2) + "\n" == text)

    def test_text_rendering(self, full_report):
        text = full_report.as_text()
        assert "[PASS]" in text
        assert f"{len(SCENARIO_PACKS)}/{len(SCENARIO_PACKS)} packs passed" in text

    def test_baseline_world_not_mutated(self, full_report, tiny_world):
        # Packs perturb deep copies; the shared fixture world must come
        # out of a full matrix run untouched.
        for outcome in full_report.outcomes:
            assert outcome.baseline["truth_asns"] == sorted(
                tiny_world.ground_truth_asns()
            )
        assert tiny_world.routing_policy is None

    def test_degraded_pack_rode_the_fault_plan(self, full_report):
        by_name = {o.name: o for o in full_report.outcomes}
        degraded = by_name["route_leak_degraded"]
        assert degraded.perturbed["degraded_sources"] == ["O"]
        # ...and the fault plan must not leak into sibling packs.
        assert by_name["route_leak"].perturbed["degraded_sources"] == []


class TestDeterminism:
    def test_single_pack_rerun_matches_matrix_run(self, full_report, tiny_world):
        """An independent run of one pack reproduces the full-matrix
        outcome exactly — every float, every sorted list, every detail
        string — because pack randomness derives from (world seed, pack
        name) alone."""
        solo = run_scenario_packs(tiny_world, names=["route_leak"])
        matrix = next(o for o in full_report.outcomes if o.name == "route_leak")
        assert solo.outcomes[0].as_dict() == matrix.as_dict()
        assert json.dumps(
            solo.outcomes[0].as_dict(), sort_keys=True
        ) == json.dumps(matrix.as_dict(), sort_keys=True)
