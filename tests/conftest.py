"""Shared fixtures.

Expensive artifacts (worlds, a full pipeline run) are session-scoped: the
small world takes a couple of seconds to generate and the pipeline run ~20
seconds, so every integration test reuses one instance.
"""

from __future__ import annotations

import pytest

from repro.config import PipelineConfig, SourceNoiseConfig, WorldConfig
from repro.core import PipelineInputs, StateOwnershipPipeline
from repro.world.generator import World, WorldGenerator


@pytest.fixture(scope="session")
def tiny_world() -> World:
    """A minimal world for fast structural tests."""
    return WorldGenerator(WorldConfig.tiny()).generate()


@pytest.fixture(scope="session")
def small_world() -> World:
    """The standard integration-test world."""
    return WorldGenerator(WorldConfig.small()).generate()


@pytest.fixture(scope="session")
def small_inputs(small_world):
    """All derived data sources for the small world."""
    return PipelineInputs.from_world(small_world)


@pytest.fixture(scope="session")
def pipeline_result(small_inputs):
    """One full pipeline run over the small world (shared, read-only)."""
    return StateOwnershipPipeline(small_inputs).run()


@pytest.fixture()
def noise() -> SourceNoiseConfig:
    return SourceNoiseConfig()


@pytest.fixture()
def pipeline_config() -> PipelineConfig:
    return PipelineConfig()
