"""Shared fixtures.

Expensive artifacts (worlds, a full pipeline run) are session-scoped: the
small world takes a couple of seconds to generate and the pipeline run ~20
seconds, so every integration test reuses one instance.

With ``REPRO_WORLD_CACHE=1`` (set by the CI workflow, whose
``actions/cache`` step restores ``~/.cache/repro`` across jobs) the world
fixtures go through the digest-verified blob cache in
:mod:`repro.world.worldcache` instead of regenerating; a cold run writes
the blobs back for the next job.  Local runs default to plain generation.
"""

from __future__ import annotations

import os

import pytest

from repro.config import PipelineConfig, SourceNoiseConfig, WorldConfig
from repro.core import PipelineInputs, StateOwnershipPipeline
from repro.parallel import ResultCache, resolve_cache_dir
from repro.world.generator import World, WorldGenerator
from repro.world.worldcache import load_or_generate


def _materialize_world(config: WorldConfig) -> World:
    if os.environ.get("REPRO_WORLD_CACHE") == "1":
        root = resolve_cache_dir()
        cache = ResultCache(root) if root is not None else None
        return load_or_generate(config, cache)
    return WorldGenerator(config).generate()


@pytest.fixture(scope="session")
def tiny_world() -> World:
    """A minimal world for fast structural tests."""
    return _materialize_world(WorldConfig.tiny())


@pytest.fixture(scope="session")
def small_world() -> World:
    """The standard integration-test world."""
    return _materialize_world(WorldConfig.small())


@pytest.fixture(scope="session")
def small_inputs(small_world):
    """All derived data sources for the small world."""
    return PipelineInputs.from_world(small_world)


@pytest.fixture(scope="session")
def pipeline_result(small_inputs):
    """One full pipeline run over the small world (shared, read-only)."""
    return StateOwnershipPipeline(small_inputs).run()


@pytest.fixture()
def noise() -> SourceNoiseConfig:
    return SourceNoiseConfig()


@pytest.fixture()
def pipeline_config() -> PipelineConfig:
    return PipelineConfig()
