"""Tests for ownership churn and the dataset-ageing study (§9 extension)."""

import pytest

from repro.config import WorldConfig
from repro.errors import WorldError
from repro.world.events import (
    ChurnRates,
    ChurnSimulator,
    EventKind,
    OwnershipEvent,
    ageing_study,
)
from repro.world.generator import WorldGenerator


@pytest.fixture()
def churn_world():
    """A private world instance (the simulator mutates it)."""
    return WorldGenerator(WorldConfig.tiny(seed=77)).generate()


HOT_RATES = ChurnRates(
    privatization=0.3, nationalization=0.1, new_subsidiary_per_expander=0.5
)


class TestSimulator:
    def test_negative_years_rejected(self, churn_world):
        with pytest.raises(WorldError):
            ChurnSimulator(churn_world).simulate_years(2021, -1)

    def test_zero_years_no_events(self, churn_world):
        assert ChurnSimulator(churn_world).simulate_years(2021, 0) == []

    def test_events_have_valid_shape(self, churn_world):
        events = ChurnSimulator(churn_world, HOT_RATES).simulate_years(2021, 2)
        assert events
        for event in events:
            assert isinstance(event, OwnershipEvent)
            assert event.year in (2021, 2022)
            assert event.kind in EventKind
            assert event.operator_name

    def test_privatization_removes_control(self, churn_world):
        before = churn_world.ground_truth_asns()
        simulator = ChurnSimulator(churn_world, HOT_RATES)
        events = simulator.simulate_years(2021, 1)
        privatized_ids = {
            e.operator_id for e in events if e.kind is EventKind.PRIVATIZATION
        }
        if not privatized_ids:
            pytest.skip("no privatization drawn")
        after_ids = churn_world.ground_truth_operator_ids()
        for operator_id in privatized_ids:
            assert operator_id not in after_ids

    def test_nationalization_adds_control(self, churn_world):
        simulator = ChurnSimulator(churn_world, HOT_RATES)
        events = simulator.simulate_years(2021, 2)
        nationalized = {
            e.operator_id for e in events if e.kind is EventKind.NATIONALIZATION
        }
        if not nationalized:
            pytest.skip("no nationalization drawn")
        truth_ids = churn_world.ground_truth_operator_ids()
        # Nationalized operators join the ground truth (unless privatized
        # again in a later simulated year).
        rejoined = nationalized & truth_ids
        assert rejoined or len(nationalized) <= 2

    def test_new_subsidiaries_are_asnless(self, churn_world):
        simulator = ChurnSimulator(churn_world, HOT_RATES)
        events = simulator.simulate_years(2021, 1)
        for event in events:
            if event.kind is EventKind.NEW_SUBSIDIARY:
                assert churn_world.operator_asns[event.operator_id] == []

    def test_graph_stays_consistent(self, churn_world):
        ChurnSimulator(churn_world, HOT_RATES).simulate_years(2021, 3)
        churn_world.ownership.validate()

    def test_deterministic(self):
        w1 = WorldGenerator(WorldConfig.tiny(seed=5)).generate()
        w2 = WorldGenerator(WorldConfig.tiny(seed=5)).generate()
        e1 = ChurnSimulator(w1, HOT_RATES).simulate_years(2021, 2)
        e2 = ChurnSimulator(w2, HOT_RATES).simulate_years(2021, 2)
        assert [(e.kind, e.operator_id) for e in e1] == [
            (e.kind, e.operator_id) for e in e2
        ]


class TestAgeingStudy:
    def test_rows_shape(self, churn_world):
        frozen = churn_world.ground_truth_asns()
        rows = ageing_study(
            churn_world, frozen, start_year=2021, years=3, rates=HOT_RATES
        )
        assert len(rows) == 3
        for row in rows:
            assert 0.0 <= row["precision"] <= 1.0
            assert 0.0 <= row["recall"] <= 1.0

    def test_frozen_list_decays(self, churn_world):
        frozen = churn_world.ground_truth_asns()
        rows = ageing_study(
            churn_world, frozen, start_year=2021, years=4, rates=HOT_RATES
        )
        # With hot churn the frozen snapshot cannot stay perfect.
        assert rows[-1]["precision"] < 1.0 or rows[-1]["recall"] < 1.0
        # Decay is monotone-ish: later precision never exceeds year one's.
        assert rows[-1]["precision"] <= rows[0]["precision"] + 1e-9


class TestMonthlyStepping:
    def test_batch_count_and_years(self, churn_world):
        batches = ChurnSimulator(churn_world, HOT_RATES).simulate_months(
            2021, 14, start_month=7
        )
        assert len(batches) == 14
        # Months 7..12 of 2021, then 1..8 of 2022.
        for offset, batch in enumerate(batches):
            expected_year = 2021 + (6 + offset) // 12
            for event in batch:
                assert event.year == expected_year

    def test_zero_months(self, churn_world):
        assert ChurnSimulator(churn_world).simulate_months(2021, 0) == []

    def test_negative_months_rejected(self, churn_world):
        with pytest.raises(WorldError):
            ChurnSimulator(churn_world).simulate_months(2021, -1)

    def test_bad_start_month_rejected(self, churn_world):
        with pytest.raises(WorldError):
            ChurnSimulator(churn_world).simulate_months(2021, 1, start_month=0)
        with pytest.raises(WorldError):
            ChurnSimulator(churn_world).simulate_months(2021, 1, start_month=13)

    def test_deterministic_across_fresh_worlds(self):
        """Same seed, same rates ⇒ identical monthly event sequences —
        what makes a maintain loop reproducible end to end."""
        w1 = WorldGenerator(WorldConfig.tiny(seed=5)).generate()
        w2 = WorldGenerator(WorldConfig.tiny(seed=5)).generate()
        b1 = ChurnSimulator(w1, HOT_RATES).simulate_months(2021, 12)
        b2 = ChurnSimulator(w2, HOT_RATES).simulate_months(2021, 12)
        flat1 = [(e.kind, e.operator_id, e.year) for b in b1 for e in b]
        flat2 = [(e.kind, e.operator_id, e.year) for b in b2 for e in b]
        assert flat1 == flat2
        assert flat1, "hot rates over a year produced no events"

    def test_monthly_rates_are_damped(self):
        """Twelve monthly draws land in the same order of magnitude as one
        annual draw — the 1/12 scaling is applied, not ignored."""
        annual_world = WorldGenerator(WorldConfig.tiny(seed=5)).generate()
        monthly_world = WorldGenerator(WorldConfig.tiny(seed=5)).generate()
        annual = ChurnSimulator(annual_world, HOT_RATES).simulate_years(2021, 1)
        monthly_batches = ChurnSimulator(monthly_world, HOT_RATES).simulate_months(
            2021, 12
        )
        monthly = [e for batch in monthly_batches for e in batch]
        assert monthly
        # Without damping, 12 monthly draws would multiply event volume by
        # roughly 12; with it, they stay within ~3x of the annual draw.
        assert len(monthly) <= max(3 * len(annual), len(annual) + 10)

    def test_ownership_stays_consistent(self, churn_world):
        batches = ChurnSimulator(churn_world, HOT_RATES).simulate_months(2021, 12)
        if not any(batches):
            pytest.skip("no events drawn")
        churn_world.ownership.validate()
