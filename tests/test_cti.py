"""Tests for the CTI metric (Appendix G) and candidate selection."""

import pytest

from repro.config import SourceNoiseConfig
from repro.cti.metric import CTIComputer
from repro.cti.selection import select_cti_candidates
from repro.net.monitors import Monitor, MonitorSet, RouteCollector
from repro.net.prefix import Prefix
from repro.net.topology import ASGraph
from repro.sources.geolocation import GeolocationService
from repro.sources.prefix2as import Prefix2ASTable


def gateway_scenario():
    """A transit-dominant toy country.

    AS 100, 101 are domestic origins in country XX; both buy transit only
    from gateway AS 10, which buys from tier-1 AS 1; the monitor lives in
    tier-1 AS 2 (peered with AS 1).
    """
    graph = ASGraph()
    graph.add_p2p(1, 2)
    graph.add_c2p(10, 1)
    graph.add_c2p(100, 10)
    graph.add_c2p(101, 10)
    entries = [
        (Prefix.parse("10.0.0.0/16"), 100),
        (Prefix.parse("10.1.0.0/16"), 101),
        (Prefix.parse("20.0.0.0/16"), 10),
        (Prefix.parse("30.0.0.0/8"), 1),
        (Prefix.parse("40.0.0.0/8"), 2),
    ]
    table = Prefix2ASTable(entries)
    true_cc = {100: "XX", 101: "XX", 10: "XX", 1: "T1", 2: "T1"}
    geo = GeolocationService(
        true_cc,
        ["XX", "T1"],
        SourceNoiseConfig(geolocation_accuracy=1.0),
        seed=1,
    )
    monitors = MonitorSet([Monitor("m0", 2)])
    collector = RouteCollector(graph, monitors)
    return CTIComputer(table, geo, collector)


class TestCTIFormula:
    def test_gateway_dominates(self):
        cti = gateway_scenario()
        scores = cti.country_cti("XX")
        assert scores[10] == max(scores.values())

    def test_origin_not_credited_for_own_prefixes(self):
        cti = gateway_scenario()
        scores = cti.country_cti("XX")
        # ASes 100/101 originate XX space but transit nothing.
        assert 100 not in scores
        assert 101 not in scores

    def test_gateway_score_value(self):
        # The gateway carries 2/3 of XX's addresses (its own /16 is origin
        # space) at distance 1: CTI = (1/3)/1 + (1/3)/1 = 2/3.
        cti = gateway_scenario()
        assert cti.country_cti("XX")[10] == pytest.approx(2 / 3, abs=1e-6)

    def test_distance_discount(self):
        # Tier-1 AS 1 sits at distance 2 from the XX origins and at
        # distance 1 from the gateway's own prefix.
        cti = gateway_scenario()
        expected = (1 / 3) / 2 + (1 / 3) / 2 + (1 / 3) / 1
        assert cti.country_cti("XX")[1] == pytest.approx(expected, abs=1e-6)

    def test_monitor_host_not_credited(self):
        cti = gateway_scenario()
        scores = cti.country_cti("XX")
        assert 2 not in scores  # the monitor sits inside AS 2

    def test_country_totals(self):
        cti = gateway_scenario()
        assert cti.country_address_total("XX") == 3 * 65536

    def test_unknown_country_empty(self):
        cti = gateway_scenario()
        assert cti.country_cti("ZZ") == {}

    def test_scores_bounded(self):
        cti = gateway_scenario()
        for cc in cti.countries():
            for score in cti.country_cti(cc).values():
                assert 0.0 < score <= 1.0 + 1e-9


class TestMonitorWeighting:
    def test_two_monitors_same_as_weight_half(self):
        monitors = MonitorSet([Monitor("a", 1), Monitor("b", 1), Monitor("c", 2)])
        assert monitors.weight(Monitor("a", 1)) == pytest.approx(0.5)
        assert monitors.weight(Monitor("c", 2)) == pytest.approx(1.0)


def _reference_country_cti(cti, cc):
    """The pre-optimization formula: w(m)/|M| recomputed for every
    origin x monitor iteration.  Kept as the oracle for the hot-loop
    regression test — the hoisted implementation must match bit for bit."""
    origin_weights = cti._per_country.get(cc)
    total = cti._country_totals.get(cc, 0)
    if not origin_weights or total == 0:
        return {}
    monitors = cti._collector.monitors
    monitor_count = len(monitors)
    scores = {}
    for origin, weight in origin_weights.items():
        address_fraction = weight / total
        if address_fraction < cti._min_address_fraction:
            continue
        for monitor in monitors:
            path = cti._collector.path(monitor, origin)
            if path is None or len(path) < 2:
                continue
            w = cti._collector.monitors.weight(monitor) / monitor_count
            length = len(path)
            for index, asn in enumerate(path):
                distance = length - 1 - index
                if distance == 0:
                    continue
                if asn == monitor.host_asn:
                    continue
                scores[asn] = scores.get(asn, 0.0) + (w * address_fraction / distance)
    return scores


class TestScoreDeterminism:
    def test_toy_scenario_bit_identical(self):
        cti = gateway_scenario()
        assert cti.country_cti("XX") == _reference_country_cti(cti, "XX")

    def test_fixed_seed_world_bit_identical(self, small_world, small_inputs):
        """Scores on a full fixed-seed world match the unhoisted formula
        exactly (==, not approx): the weight hoist must not perturb a
        single bit of any score."""
        cti = CTIComputer(
            small_inputs.prefix2as,
            small_inputs.geolocation,
            small_world.collector,
        )
        ccs = sorted(small_world.transit_dominant_ccs)
        assert ccs, "fixture world must have transit-dominant countries"
        for cc in ccs:
            assert cti.country_cti(cc) == _reference_country_cti(cti, cc)

    def test_cached_recall_identical(self):
        cti = gateway_scenario()
        first = dict(cti.country_cti("XX"))
        assert cti.country_cti("XX") == first


class TestSelection:
    def test_top_k_selected(self):
        cti = gateway_scenario()
        selection = select_cti_candidates(cti, ["XX"], top_k=2, min_score=0.01)
        assert 10 in selection.asns
        assert selection.countries_applied == ("XX",)

    def test_min_score_filters(self):
        cti = gateway_scenario()
        selection = select_cti_candidates(cti, ["XX"], top_k=2, min_score=10.0)
        assert not selection.asns

    def test_provenance(self):
        cti = gateway_scenario()
        selection = select_cti_candidates(cti, ["XX"], top_k=2)
        assert selection.countries_of(10) == ["XX"]
        for asn in selection.asns:
            assert selection.provenance[asn]

    def test_world_selection_finds_state_gateways(self, small_world, small_inputs):
        cti = CTIComputer(
            small_inputs.prefix2as,
            small_inputs.geolocation,
            small_world.collector,
        )
        selection = select_cti_candidates(cti, sorted(small_world.transit_dominant_ccs))
        so = small_world.ground_truth_asns()
        # CTI candidates include a meaningful number of state-owned ASes.
        assert len(set(selection.asns) & so) >= 5


class TestStreamingScores:
    """``stream_country_scores`` — the generator behind batch scoring."""

    def test_stream_matches_batch(self):
        batch = gateway_scenario()
        batch.score_countries(["XX", "T1"])
        streamed = gateway_scenario()
        got = dict(streamed.stream_country_scores(["XX", "T1"]))
        assert got == batch.computed_scores()

    def test_stream_preserves_input_order(self):
        cti = gateway_scenario()
        order = [cc for cc, _ in cti.stream_country_scores(["T1", "XX"])]
        assert order == ["T1", "XX"]

    def test_retain_false_drops_cache_entries(self):
        cti = gateway_scenario()
        scores = dict(cti.stream_country_scores(["XX"], retain=False))
        assert scores["XX"]
        assert "XX" not in cti.computed_scores()
        # Scoring again recomputes identically.
        assert cti.country_cti("XX") == scores["XX"]

    def test_sharded_stream_identical(self, monkeypatch):
        monkeypatch.setenv("REPRO_CTI_SHARD", "1")
        sharded = dict(gateway_scenario().stream_country_scores(["XX", "T1"]))
        monkeypatch.delenv("REPRO_CTI_SHARD")
        whole = dict(gateway_scenario().stream_country_scores(["XX", "T1"]))
        assert sharded == whole
