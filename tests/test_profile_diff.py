"""Tests for country profiles and dataset diffing."""

import pytest

from repro.analysis.country_profile import build_country_profile, profile_text
from repro.core.dataset import OrganizationRecord, StateOwnedDataset
from repro.core.diffing import asn_churn_fraction, diff_datasets


def make_org(org_id, name, cc="NO", target_cc=None):
    return OrganizationRecord(
        conglomerate_name=name,
        org_id=org_id,
        org_name=name,
        ownership_cc=cc,
        ownership_country_name=cc,
        rir="RIPE",
        source="Company's website",
        quote="q",
        quote_lang="English",
        url="https://x.example",
        target_cc=target_cc,
        target_country_name=target_cc,
    )


class TestCountryProfile:
    def test_profile_for_state_owned_country(self, pipeline_result, small_inputs):
        owner_ccs = sorted(pipeline_result.dataset.owner_countries())
        cc = owner_ccs[0]
        profile = build_country_profile(cc, pipeline_result, small_inputs)
        assert profile.cc == cc
        assert profile.domestic_orgs or profile.foreign_orgs

    def test_profile_text_renders(self, pipeline_result, small_inputs):
        cc = sorted(pipeline_result.dataset.owner_countries())[0]
        profile = build_country_profile(cc, pipeline_result, small_inputs)
        text = profile_text(profile)
        assert profile.name in text
        assert "state" in text

    def test_us_profile_is_clean_domestically(self, pipeline_result, small_inputs):
        profile = build_country_profile("US", pipeline_result, small_inputs)
        assert not profile.domestic_orgs

    def test_expander_owns_abroad(self, pipeline_result, small_inputs):
        subs = pipeline_result.dataset.foreign_subsidiaries()
        if not subs:
            pytest.skip("no foreign subsidiaries in this run")
        owner = subs[0].ownership_cc
        profile = build_country_profile(owner, pipeline_result, small_inputs)
        assert profile.owns_abroad


class TestDatasetDiff:
    def test_identical_datasets_empty_diff(self):
        ds = StateOwnedDataset([make_org("O1", "Telenor")], {"O1": [1, 2]})
        diff = diff_datasets(ds, ds)
        assert diff.is_empty()

    def test_additions_and_removals(self):
        old = StateOwnedDataset([make_org("O1", "Telenor")], {"O1": [1]})
        new = StateOwnedDataset(
            [make_org("O1", "Telenor"), make_org("O2", "ArSat", cc="AR")],
            {"O1": [1, 5], "O2": [9]},
        )
        diff = diff_datasets(old, new)
        assert diff.added_orgs == ("ArSat",)
        assert diff.removed_orgs == ()
        assert diff.added_asns == frozenset({5, 9})
        assert diff.removed_asns == frozenset()
        assert "+1 orgs" in diff.summary()

    def test_ownership_change_detected(self):
        old = StateOwnedDataset([make_org("O1", "Ucell", cc="SE")], {"O1": [1]})
        new = StateOwnedDataset([make_org("O1", "Ucell", cc="UZ")], {"O1": [1]})
        diff = diff_datasets(old, new)
        assert diff.owner_changes == {"Ucell": ("SE", "UZ")}

    def test_name_matching_is_normalized(self):
        old = StateOwnedDataset(
            [make_org("O1", "Telenor Norge AS")], {"O1": [1]}
        )
        new = StateOwnedDataset([make_org("OX", "Telenor Norge")], {"OX": [1]})
        diff = diff_datasets(old, new)
        assert diff.added_orgs == ()
        assert diff.removed_orgs == ()

    def test_churned_pipeline_snapshot(self, pipeline_result):
        """A dataset diffed against a truncated copy reports the gap."""
        ds = pipeline_result.dataset
        orgs = ds.organizations()[:-5]
        truncated = StateOwnedDataset(
            orgs, {o.org_id: ds.asns_of(o.org_id) for o in orgs}
        )
        diff = diff_datasets(truncated, ds)
        assert len(diff.added_orgs) >= 1
        assert not diff.removed_orgs


class TestChurnFraction:
    """Regression tests for the churn_fraction denominator bug.

    The old formula divided the number of changed ASNs by itself
    (``len(added | removed)``), so every non-empty diff reported 100%
    churn.  The denominator must be the *old* snapshot's ASN count.
    """

    def _diff(self, old_asns, new_asns):
        old = StateOwnedDataset([make_org("O1", "Telenor")], {"O1": old_asns})
        new = StateOwnedDataset([make_org("O1", "Telenor")], {"O1": new_asns})
        return diff_datasets(old, new)

    def test_partial_churn_is_fractional(self):
        # {1,2,3,4} -> {1,2,3,5}: 2 changed ASNs over 4 old ones = 50%.
        # The old formula returned 2/2 = 1.0 here.
        diff = self._diff([1, 2, 3, 4], [1, 2, 3, 5])
        assert diff.added_asns == frozenset({5})
        assert diff.removed_asns == frozenset({4})
        assert diff.old_asn_count == 4
        assert diff.churn_fraction == pytest.approx(0.5)

    def test_single_addition_small_fraction(self):
        diff = self._diff([1, 2, 3, 4], [1, 2, 3, 4, 5])
        assert diff.churn_fraction == pytest.approx(0.25)

    def test_no_churn_is_zero(self):
        assert self._diff([1, 2], [1, 2]).churn_fraction == 0.0

    def test_empty_old_snapshot_is_no_churn(self):
        # A bootstrap snapshot has no previous release to churn against:
        # 0.0, not the alarm-tripping 1.0 the old formula reported.
        assert self._diff([], [1]).churn_fraction == 0.0

    def test_both_empty_is_zero(self):
        assert self._diff([], []).churn_fraction == 0.0

    def test_helper_matches_diff(self):
        old, new = frozenset({1, 2, 3, 4}), frozenset({1, 2, 3, 5})
        assert asn_churn_fraction(old, new) == pytest.approx(0.5)
        assert asn_churn_fraction(old, old) == 0.0
        assert asn_churn_fraction(frozenset(), new) == 0.0
        assert asn_churn_fraction(frozenset(), frozenset()) == 0.0

    def test_to_dict_round_trips_through_json(self):
        import json

        diff = self._diff([1, 2, 3, 4], [1, 2, 3, 5])
        payload = json.loads(json.dumps(diff.to_dict()))
        assert payload["added_asns"] == [5]
        assert payload["removed_asns"] == [4]
        assert payload["old_asn_count"] == 4
        assert payload["churn_fraction"] == pytest.approx(0.5)
