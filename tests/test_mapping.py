"""Tests for AS <-> company mapping."""

import pytest

from repro.core.mapping import CompanyMapper
from repro.text.normalize import normalize_name


@pytest.fixture(scope="module")
def mapper(small_inputs, ):
    return CompanyMapper(
        small_inputs.whois, small_inputs.peeringdb, small_inputs.corpus
    )


class TestForwardMapping:
    def test_maps_most_incumbent_asns_correctly(self, small_world, mapper):
        correct = total = 0
        for gto in small_world.ground_truth():
            if gto.operator.role.value != "incumbent" or not gto.asns:
                continue
            total += 1
            mapped = mapper.map_asn(gto.asns[0])
            if mapped is None:
                continue
            truth_names = {
                normalize_name(gto.operator.name),
                normalize_name(gto.operator.display_name),
            }
            if normalize_name(mapped.company_name) in truth_names:
                correct += 1
        assert total > 10
        assert correct / total > 0.8

    def test_unknown_asn_returns_none(self, mapper):
        assert mapper.map_asn(999999999) is None

    def test_mapping_carries_country(self, small_world, mapper):
        gto = next(g for g in small_world.ground_truth() if g.asns)
        mapped = mapper.map_asn(gto.asns[0])
        assert mapped is not None
        assert mapped.cc == small_world.asn_records[gto.asns[0]].cc

    def test_via_field_valid(self, small_world, mapper):
        gto = next(g for g in small_world.ground_truth() if g.asns)
        mapped = mapper.map_asn(gto.asns[0])
        assert mapped.via in ("peeringdb", "whois", "domain")

    def test_confidence_bounds(self, small_world, mapper):
        for gto in small_world.ground_truth()[:20]:
            for asn in gto.asns[:1]:
                mapped = mapper.map_asn(asn)
                if mapped is not None:
                    assert 0.0 < mapped.confidence <= 1.0


class TestReverseMapping:
    def test_finds_primary_asns(self, small_world, mapper):
        hit = total = 0
        for gto in small_world.ground_truth():
            if not gto.asns:
                continue
            total += 1
            found = mapper.asns_of_company(gto.operator.name, cc=gto.operator.cc)
            if gto.asns[0] in found:
                hit += 1
        assert hit / total > 0.75

    def test_country_restriction(self, small_world, mapper):
        gto = next(g for g in small_world.ground_truth() if g.asns)
        found = mapper.asns_of_company(gto.operator.name, cc=gto.operator.cc)
        for asn in found:
            record = small_world.asn_records.get(asn)
            if record is not None:
                assert record.cc == gto.operator.cc

    def test_no_wild_overmatching(self, small_world, mapper):
        """Reverse mapping must not pull in other operators' ASNs."""
        wrong = total = 0
        for gto in small_world.ground_truth()[:60]:
            found = mapper.asns_of_company(gto.operator.name, cc=gto.operator.cc)
            for asn in found:
                record = small_world.asn_records.get(asn)
                if record is None:
                    continue
                total += 1
                if record.operator_id != gto.operator.entity_id:
                    wrong += 1
        if total:
            assert wrong / total < 0.1

    def test_company_key_normalizes(self, mapper):
        assert mapper.company_key("Telekom Malaysia Berhad") == "telekom malaysia"
