"""Integrity tests for the static country table."""

from repro.world.countries import (
    COUNTRIES,
    REGIONS,
    RIRS,
    countries_by_region,
    countries_by_rir,
    country_by_cc,
)


class TestTableIntegrity:
    def test_reasonable_size(self):
        assert 180 <= len(COUNTRIES) <= 220

    def test_unique_codes(self):
        codes = [c.cc for c in COUNTRIES]
        assert len(set(codes)) == len(codes)

    def test_codes_are_alpha2(self):
        for c in COUNTRIES:
            assert len(c.cc) == 2 and c.cc.isupper()

    def test_rirs_valid(self):
        assert {c.rir for c in COUNTRIES} == set(RIRS)

    def test_regions_valid(self):
        assert {c.region for c in COUNTRIES} <= set(REGIONS)

    def test_classes_in_range(self):
        for c in COUNTRIES:
            assert 0 <= c.addr_class <= 5
            assert 0 <= c.pop_class <= 5
            assert c.dev_tier in (0, 1, 2)

    def test_us_is_the_only_class5(self):
        class5 = [c.cc for c in COUNTRIES if c.addr_class == 5]
        assert class5 == ["US"]


class TestLookups:
    def test_country_by_cc(self):
        assert country_by_cc("no").name == "Norway"

    def test_rir_memberships_plausible(self):
        # Rough RIR membership shapes used by Table 4's percentages.
        assert len(countries_by_rir("RIPE")) > 55
        assert len(countries_by_rir("AFRINIC")) > 45
        assert 10 <= len(countries_by_rir("ARIN")) <= 35
        assert 20 <= len(countries_by_rir("LACNIC")) <= 35

    def test_regions_nonempty(self):
        for region in REGIONS:
            assert countries_by_region(region)

    def test_expansion_profiles_reference_known_countries(self):
        from repro.config import EXPANSION_PROFILES

        known = {c.cc for c in COUNTRIES}
        for owner, targets in EXPANSION_PROFILES.items():
            assert owner in known
            for target in targets:
                assert target in known, (owner, target)
