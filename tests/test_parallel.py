"""The parallel execution layer: contexts, the persistent cache, and the
bit-identity guarantee of parallel pipeline runs."""

from __future__ import annotations

import json
import os
import pickle

import pytest

from repro.config import ParallelConfig, WorldConfig
from repro.core import StateOwnershipPipeline
from repro.core.confirmation import OwnershipAnalyst
from repro.cti.metric import CTIComputer
from repro.errors import ConfigError
from repro.io.jsonio import dataset_to_json
from repro.obs import get_metrics
from repro.parallel import (
    BACKENDS,
    ExecutionContext,
    ResultCache,
    resolve_cache_dir,
    stable_digest,
    world_fingerprint,
)


def _double(state, item):
    """Module-level so the process backend can address it."""
    return (state or 0) + item * 2


def _ident(state, item):
    return item


class TestExecutionContext:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_map_ordered_preserves_input_order(self, backend):
        with ExecutionContext(jobs=2, backend=backend) as context:
            items = list(range(23))
            assert context.map_ordered(_double, items, state=5) == [
                5 + i * 2 for i in items
            ]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_empty_batch(self, backend):
        with ExecutionContext(jobs=2, backend=backend) as context:
            assert context.map_ordered(_ident, []) == []

    def test_serial_forces_single_job(self):
        assert ExecutionContext(jobs=8, backend="serial").jobs == 1

    def test_single_job_is_serial(self):
        assert ExecutionContext(jobs=1, backend="process").is_serial

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigError):
            ExecutionContext(jobs=2, backend="gpu")

    def test_nonpositive_jobs_rejected(self):
        with pytest.raises(ConfigError):
            ExecutionContext(jobs=0)

    def test_resolve_defaults_to_serial(self):
        context = ExecutionContext.resolve(env={})
        assert context.jobs == 1
        assert context.backend == "serial"

    def test_resolve_reads_environment(self):
        context = ExecutionContext.resolve(
            env={"REPRO_JOBS": "3", "REPRO_BACKEND": "thread"}
        )
        assert context.jobs == 3
        assert context.backend == "thread"

    def test_resolve_explicit_wins_over_env(self):
        context = ExecutionContext.resolve(
            jobs=2, backend="thread", env={"REPRO_JOBS": "7"}
        )
        assert context.jobs == 2
        assert context.backend == "thread"

    def test_resolve_zero_means_all_cores(self):
        context = ExecutionContext.resolve(jobs=0, env={})
        assert context.jobs == (os.cpu_count() or 1)

    def test_resolve_multi_job_defaults_to_process(self):
        assert ExecutionContext.resolve(jobs=2, env={}).backend == "process"

    def test_resolve_rejects_garbage_env(self):
        with pytest.raises(ConfigError):
            ExecutionContext.resolve(env={"REPRO_JOBS": "many"})

    def test_task_metrics_flow(self):
        metrics = get_metrics()
        before = metrics.counter("parallel.tasks")
        with ExecutionContext(jobs=2, backend="thread") as context:
            context.map_ordered(_ident, [1, 2, 3])
        assert metrics.counter("parallel.tasks") - before == 3


class TestParallelConfig:
    def test_defaults_are_serial_and_uncached(self):
        config = ParallelConfig()
        assert config.jobs == 1
        assert config.backend == "serial"
        assert config.cache_dir is None

    def test_rejects_bad_backend(self):
        with pytest.raises(ConfigError):
            ParallelConfig(backend="cluster")

    def test_rejects_bad_jobs(self):
        with pytest.raises(ConfigError):
            ParallelConfig(jobs=0)


class TestStableDigest:
    def test_key_order_is_irrelevant(self):
        assert stable_digest({"a": 1, "b": 2}) == stable_digest({"b": 2, "a": 1})

    def test_values_matter(self):
        assert stable_digest({"a": 1}) != stable_digest({"a": 2})

    def test_tuples_and_lists_coincide(self):
        assert stable_digest((1, 2, 3)) == stable_digest([1, 2, 3])

    def test_world_fingerprint_tracks_config(self):
        a = world_fingerprint(WorldConfig(seed=1, scale=0.1))
        b = world_fingerprint(WorldConfig(seed=2, scale=0.1))
        assert a != b
        assert a == world_fingerprint(WorldConfig(seed=1, scale=0.1))


class TestResolveCacheDir:
    def test_env_override(self, tmp_path):
        assert resolve_cache_dir(env={"REPRO_CACHE_DIR": str(tmp_path)}) == tmp_path

    def test_empty_env_disables(self):
        assert resolve_cache_dir(env={"REPRO_CACHE_DIR": ""}) is None

    def test_default_under_home(self):
        path = resolve_cache_dir(env={})
        assert path is not None
        assert path.name == "repro"


class TestResultCache:
    def test_floats_roundtrip_exactly(self, tmp_path):
        cache = ResultCache(tmp_path)
        scores = {"NO": {"64512": 0.1 + 0.2, "64513": 1e-17 + 1.0}}
        cache.put("cti", "k1", {"scores": scores})
        loaded = cache.get("cti", "k1")
        assert loaded == {"scores": scores}
        assert (loaded["scores"]["NO"]["64512"] == scores["NO"]["64512"])  # bit-exact

    def test_absent_key_is_a_miss(self, tmp_path):
        metrics = get_metrics()
        before = metrics.counter("cache.misses")
        assert ResultCache(tmp_path).get("cti", "nothing") is None
        assert metrics.counter("cache.misses") - before == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("cti", "k1", {"x": 1})
        (tmp_path / "cti" / "k1.json").write_text("{truncated")
        assert cache.get("cti", "k1") is None

    def test_non_dict_payload_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        (tmp_path / "cti").mkdir()
        (tmp_path / "cti" / "k1.json").write_text("[1, 2]")
        assert cache.get("cti", "k1") is None

    def test_hit_and_write_counters(self, tmp_path):
        metrics = get_metrics()
        cache = ResultCache(tmp_path)
        writes = metrics.counter("cache.writes")
        hits = metrics.counter("cache.hits")
        cache.put("cti", "k1", {"x": 1})
        assert metrics.counter("cache.writes") - writes == 1
        assert cache.get("cti", "k1") == {"x": 1}
        assert metrics.counter("cache.hits") - hits == 1

    def test_invalid_section_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ResultCache(tmp_path).get("../escape", "k")


class TestWorkerStatePickling:
    def test_analyst_survives_pickling(self, small_inputs):
        analyst = OwnershipAnalyst(small_inputs.corpus)
        clone = pickle.loads(pickle.dumps(analyst))
        assert clone._in_progress() == set()

    def test_collector_pickles_without_trees(self, small_inputs):
        collector = small_inputs.collector
        clone = pickle.loads(pickle.dumps(collector))
        assert clone.trees_computed() == 0
        origin = sorted(collector._graph.asns)[0]
        monitor = next(iter(collector.monitors))
        assert clone.path(monitor, origin) == collector.path(monitor, origin)


class TestCTILaziness:
    def test_init_does_not_scan_the_table(self, small_inputs):
        cti = CTIComputer(
            small_inputs.prefix2as,
            small_inputs.geolocation,
            small_inputs.collector,
        )
        assert cti._index is None

    def test_preloaded_scores_skip_computation(self, small_inputs):
        cti = CTIComputer(
            small_inputs.prefix2as,
            small_inputs.geolocation,
            small_inputs.collector,
        )
        cti.preload_scores({"NO": {64512: 0.5}})
        metrics = get_metrics()
        before = metrics.counter("cti.countries_computed")
        assert cti.country_cti("NO") == {64512: 0.5}
        assert metrics.counter("cti.countries_computed") == before
        assert cti._index is None  # still no index build

    def test_precompute_shares_terms_across_countries(self, small_inputs):
        cti = CTIComputer(
            small_inputs.prefix2as,
            small_inputs.geolocation,
            small_inputs.collector,
        )
        ccs = cti.countries()[:3]
        walked = cti.precompute(ccs)
        stats = cti.transit_term_stats()
        assert stats["origins_walked"] == walked
        for cc in ccs:
            cti.country_cti(cc)
        # Scoring after precompute never walks a new origin.
        assert cti.transit_term_stats()["origins_walked"] == walked
        # A second precompute over cached countries is free.
        assert cti.precompute(ccs) == 0


def _result_key(result):
    """Everything observable about a run, modulo wall-clock."""
    stats = {k: v for k, v in result.stats.items() if k != "runtime_seconds"}
    return dataset_to_json(result.dataset), stats


class TestPipelineDeterminism:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_parallel_runs_are_bit_identical(
        self, backend, small_inputs, pipeline_result
    ):
        parallel = StateOwnershipPipeline(
            small_inputs,
            parallel=ParallelConfig(jobs=2, backend=backend),
        ).run()
        assert _result_key(parallel) == _result_key(pipeline_result)
        assert parallel.confirmed_keys == pipeline_result.confirmed_keys
        assert parallel.minority_keys == pipeline_result.minority_keys
        assert parallel.excluded == pipeline_result.excluded

    def test_warm_cache_skips_cti_and_matches(
        self, tmp_path, small_inputs, pipeline_result
    ):
        parallel = ParallelConfig(cache_dir=str(tmp_path / "cache"))
        metrics = get_metrics()

        cold = StateOwnershipPipeline(small_inputs, parallel=parallel).run()
        assert metrics.counter("cache.writes") >= 1

        computed_before = metrics.counter("cti.countries_computed")
        hits_before = metrics.counter("cache.hits")
        warm = StateOwnershipPipeline(small_inputs, parallel=parallel).run()
        # The warm run serves every CTI score map from disk: no country is
        # recomputed, and the cache reports at least one hit.
        assert metrics.counter("cti.countries_computed") == computed_before
        assert metrics.counter("cache.hits") - hits_before >= 1
        assert _result_key(warm) == _result_key(cold)
        assert _result_key(warm) == _result_key(pipeline_result)

    def test_cache_entry_is_valid_json(self, tmp_path, small_inputs):
        parallel = ParallelConfig(cache_dir=str(tmp_path / "cache"))
        StateOwnershipPipeline(small_inputs, parallel=parallel).run()
        entries = list((tmp_path / "cache" / "cti").glob("*.json"))
        assert entries
        payload = json.loads(entries[0].read_text())
        assert "scores" in payload and "tree_stats" in payload
