"""Tests for the policy-aware valley-free propagation engine.

Three pillars hold :mod:`repro.net.routing` to its contract:

* a 50-seed randomized equivalence suite proving the policy engine makes
  *exactly* the decisions of the static :mod:`repro.net.bgp` oracle under a
  neutral policy (same paths, classes and distances — not just same
  reachability);
* valley-free invariant checks — policies that only disable edges or add
  hijack announcers must never manufacture a valley, while a route leak
  must be able to (the negative control that proves the checker has teeth);
* byte-identity of propagated-route CTI across the serial, thread and
  process backends, policy riding along through pickle and shared memory.
"""

from __future__ import annotations

import pickle
import random

import pytest

from repro.config import SourceNoiseConfig
from repro.cti.metric import CTIComputer
from repro.errors import TopologyError
from repro.net.bgp import (
    RouteClass,
    RoutingTreeCache,
    _reference_propagate_routes,
    propagate_routes,
)
from repro.net.monitors import Monitor, MonitorSet, RouteCollector
from repro.net.prefix import Prefix
from repro.net.propagation import PropagationKernel
from repro.net.routing import (
    NEUTRAL_POLICY,
    PolicyRoutingCache,
    RoutingPolicy,
    _reference_propagate_policy_routes,
    propagate_policy_routes,
)
from repro.net.topology import ASGraph
from repro.parallel import ExecutionContext
from repro.sources.geolocation import GeolocationService
from repro.sources.prefix2as import Prefix2ASTable

from tests.test_bgp import random_valley_free_graph, valley_free


def leak_quad():
    """The canonical route-leak shape.

    Tier-1s AS1 ~ AS2 peer; AS3 multihomes under both; the origin AS4 buys
    from AS1 only.  Neutrally AS2 reaches AS4 over the peering (2,1,4);
    when AS3 leaks, its provider route (3,1,4) arrives at AS2 as a
    *customer* route, which outranks the peer route.
    """
    g = ASGraph()
    g.add_p2p(1, 2)
    g.add_c2p(3, 1)
    g.add_c2p(3, 2)
    g.add_c2p(4, 1)
    return g


class TestRoutingPolicy:
    def test_build_normalizes_down_edges(self):
        p = RoutingPolicy.build(down_edges=[(2, 1), (1, 2), (5, 9)])
        assert p.down_edges == ((1, 2), (5, 9))

    def test_build_normalizes_hijacks(self):
        # Victim never announces against itself; duplicates collapse.
        p = RoutingPolicy.build(hijacks={4: [5, 4, 5], 7: [7]})
        assert p.hijacks == ((4, (5,)),)
        assert p.hijackers_of(4) == (5,)
        assert p.hijackers_of(7) == ()

    def test_construction_order_irrelevant(self):
        a = RoutingPolicy.build(
            down_edges=[(9, 3), (1, 2)], leakers=[8, 5], hijacks={4: [6, 5]}
        )
        b = RoutingPolicy.build(
            down_edges=[(2, 1), (3, 9)], leakers=[5, 8], hijacks={4: [5, 6]}
        )
        assert a == b
        assert hash(a) == hash(b)

    def test_neutrality(self):
        assert NEUTRAL_POLICY.is_neutral
        assert RoutingPolicy.build().is_neutral
        assert not RoutingPolicy.build(leakers=[3]).is_neutral
        assert not RoutingPolicy.build(down_edges=[(1, 2)]).is_neutral
        assert not RoutingPolicy.build(hijacks={4: [5]}).is_neutral

    def test_dict_roundtrip(self):
        p = RoutingPolicy.build(down_edges=[(1, 2)], leakers=[3], hijacks={4: [5, 6]})
        assert RoutingPolicy.from_dict(p.as_dict()) == p
        assert RoutingPolicy.from_dict(NEUTRAL_POLICY.as_dict()).is_neutral

    def test_pickle_roundtrip(self):
        p = RoutingPolicy.build(down_edges=[(1, 2)], leakers=[3])
        assert pickle.loads(pickle.dumps(p)) == p


class TestNeutralEquivalence:
    """The policy engine IS the oracle when the policy says nothing."""

    @pytest.mark.parametrize("seed", range(50))
    def test_matches_static_oracle(self, seed):
        rng = random.Random(seed)
        graph = random_valley_free_graph(rng)
        for origin in graph.asns:
            oracle = propagate_routes(graph, origin)
            tree = propagate_policy_routes(graph, origin, NEUTRAL_POLICY)
            for asn in graph.asns:
                assert tree.has_route(asn) == oracle.has_route(asn)
                if not oracle.has_route(asn):
                    continue
                assert tree.path_from(asn) == oracle.path_from(asn)
                assert tree.route_class(asn) is oracle.route_class(asn)
                assert tree.distance(asn) == oracle.distance(asn)

    def test_none_policy_means_neutral(self):
        graph = random_valley_free_graph(random.Random(99))
        origin = graph.asns[-1]
        a = propagate_policy_routes(graph, origin)
        b = propagate_routes(graph, origin)
        assert all(a.path_from(x) == b.path_from(x) for x in graph.asns)

    def test_unknown_origin_raises(self):
        with pytest.raises(TopologyError):
            propagate_policy_routes(leak_quad(), 999)


class TestValleyFreeInvariant:
    @pytest.mark.parametrize("seed", range(10))
    def test_down_edges_and_hijacks_never_make_valleys(self, seed):
        """Disabling adjacencies or adding announcers only re-selects among
        valley-free candidates; it can never create a valley."""
        rng = random.Random(1000 + seed)
        graph = random_valley_free_graph(rng)
        asns = graph.asns
        down = []
        for asn in rng.sample(asns, k=4):
            providers = sorted(graph.providers_of(asn))
            if providers and rng.random() < 0.8:
                down.append((asn, rng.choice(providers)))
            peers = sorted(graph.peers_of(asn))
            if peers:
                down.append((asn, rng.choice(peers)))
        victim, hijacker = rng.sample(asns, k=2)
        policy = RoutingPolicy.build(down_edges=down, hijacks={victim: [hijacker]})
        for origin in asns:
            tree = propagate_policy_routes(graph, origin, policy)
            for asn in asns:
                if tree.has_route(asn):
                    assert valley_free(graph, tree.path_from(asn))

    def test_leak_creates_a_valley(self):
        """Negative control: the leaked customer route at AS2 climbs back
        up through the leaker — exactly the valley the checker must flag."""
        graph = leak_quad()
        neutral = propagate_policy_routes(graph, 4)
        assert neutral.path_from(2) == (2, 1, 4)
        assert valley_free(graph, neutral.path_from(2))

        leaked = propagate_policy_routes(graph, 4, RoutingPolicy.build(leakers=[3]))
        assert leaked.path_from(2) == (2, 3, 1, 4)
        assert leaked.route_class(2) is RouteClass.CUSTOMER
        assert not valley_free(graph, leaked.path_from(2))

    def test_leak_does_not_displace_better_routes(self):
        # AS1 already holds a customer route of length 1; the leaker's
        # longer customer offer must lose the tie-break.
        graph = leak_quad()
        leaked = propagate_policy_routes(graph, 4, RoutingPolicy.build(leakers=[3]))
        assert leaked.path_from(1) == (1, 4)

    @pytest.mark.parametrize("seed", range(20))
    def test_leak_storm_stays_loop_free(self, seed):
        rng = random.Random(2000 + seed)
        graph = random_valley_free_graph(rng)
        leakers = rng.sample(graph.asns, k=3)
        policy = RoutingPolicy.build(leakers=leakers)
        for origin in graph.asns:
            tree = propagate_policy_routes(graph, origin, policy)
            for asn in graph.asns:
                if tree.has_route(asn):
                    path = tree.path_from(asn)
                    assert len(set(path)) == len(path), (origin, path)
                    assert path[-1] == origin


class TestPolicyMechanics:
    def test_down_edge_blocks_propagation(self):
        g = ASGraph()
        g.add_p2p(1, 2)
        policy = RoutingPolicy.build(down_edges=[(2, 1)])
        tree = propagate_policy_routes(g, 1, policy)
        assert not tree.has_route(2)

    def test_down_edge_forces_detour(self):
        g = ASGraph()
        g.add_p2p(1, 2)
        g.add_c2p(10, 1)
        g.add_c2p(10, 2)
        g.add_c2p(100, 10)
        tree = propagate_policy_routes(
            g, 100, RoutingPolicy.build(down_edges=[(10, 1)])
        )
        # AS1 can no longer hear 100 from its customer 10; the peer AS2
        # still can, and exports over the peering.
        assert tree.path_from(1) == (1, 2, 10, 100)

    def test_hijack_splits_the_graph(self):
        g = ASGraph()
        g.add_p2p(1, 2)
        g.add_c2p(4, 1)
        g.add_c2p(5, 2)
        policy = RoutingPolicy.build(hijacks={4: [5]})
        tree = propagate_policy_routes(g, 4, policy)
        # Each tier-1 prefers its own customer's announcement.
        assert tree.path_from(1) == (1, 4)
        assert tree.path_from(2) == (2, 5)
        for asn in g.asns:
            assert tree.path_from(asn)[-1] in (4, 5)

    def test_hijacker_not_in_graph_is_ignored(self):
        graph = leak_quad()
        tree = propagate_policy_routes(
            graph, 4, RoutingPolicy.build(hijacks={4: [999]})
        )
        oracle = propagate_routes(graph, 4)
        assert all(tree.path_from(a) == oracle.path_from(a) for a in graph.asns)

    def test_cache_computes_each_origin_once(self):
        cache = PolicyRoutingCache(leak_quad(), RoutingPolicy.build(leakers=[3]))
        first = cache.tree(4)
        assert cache.tree(4) is first
        assert len(cache) == 1
        assert cache.policy.leakers == (3,)


def _leak_collector(policy=None):
    monitors = MonitorSet([Monitor("m0", 2), Monitor("m1", 1)])
    return RouteCollector(leak_quad(), monitors, policy=policy)


class TestCollectorPolicy:
    def test_default_is_static_oracle(self):
        collector = _leak_collector()
        assert collector.policy is None

    def test_policy_changes_observed_paths(self):
        leak = RoutingPolicy.build(leakers=[3])
        assert _leak_collector().paths_to(4)["m0"] == (2, 1, 4)
        assert _leak_collector(leak).paths_to(4)["m0"] == (2, 3, 1, 4)

    def test_neutral_policy_observes_oracle_paths(self):
        static = _leak_collector()
        neutral = _leak_collector(NEUTRAL_POLICY)
        for origin in (1, 2, 3, 4):
            assert neutral.paths_to(origin) == static.paths_to(origin)

    def test_pickle_preserves_policy(self):
        leak = RoutingPolicy.build(leakers=[3])
        original = _leak_collector(leak)
        expected = original.paths_to(4)
        clone = pickle.loads(pickle.dumps(original))
        assert clone.policy == leak
        assert clone.trees_computed() == 0  # caches never travel
        assert clone.paths_to(4) == expected

    def test_shm_rebuild_preserves_policy(self):
        leak = RoutingPolicy.build(leakers=[3], down_edges=[(1, 2)])
        original = _leak_collector(leak)
        meta, buffers = original.__shm_export__()
        rebuilt = RouteCollector.__shm_rebuild__(
            meta, [buf for _, buf in buffers]
        )
        assert rebuilt.policy == leak
        for origin in (1, 2, 3, 4):
            assert rebuilt.paths_to(origin) == original.paths_to(origin)

    def test_shm_rebuild_without_policy_stays_static(self):
        original = _leak_collector()
        meta, buffers = original.__shm_export__()
        rebuilt = RouteCollector.__shm_rebuild__(
            meta, [buf for _, buf in buffers]
        )
        assert rebuilt.policy is None
        assert rebuilt.paths_to(4) == original.paths_to(4)


_CTI_CCS = ["XX", "YY"]


_CTI_POLICY = RoutingPolicy.build(leakers=[12], down_edges=[(1, 3)])


def _policy_cti_scenario(policy=_CTI_POLICY):
    """Two toy countries behind gateways, scored under a non-neutral policy.

    The leak (AS12) and the depeered adjacency (1~3) both reroute monitor
    paths, so the scores genuinely exercise the policy engine rather than
    coinciding with the static trees.
    """
    graph = ASGraph()
    graph.add_p2p(1, 2)
    graph.add_p2p(1, 3)
    graph.add_p2p(2, 3)
    graph.add_c2p(10, 1)
    graph.add_c2p(11, 2)
    graph.add_c2p(12, 1)
    graph.add_c2p(12, 3)
    graph.add_c2p(100, 10)
    graph.add_c2p(101, 10)
    graph.add_c2p(102, 11)
    graph.add_c2p(103, 11)
    entries = [
        (Prefix.parse("10.0.0.0/16"), 100),
        (Prefix.parse("10.1.0.0/16"), 101),
        (Prefix.parse("10.2.0.0/16"), 102),
        (Prefix.parse("10.3.0.0/16"), 103),
        (Prefix.parse("20.0.0.0/16"), 10),
        (Prefix.parse("20.1.0.0/16"), 11),
        (Prefix.parse("20.2.0.0/16"), 12),
    ]
    true_cc = {
        100: "XX",
        101: "XX",
        10: "XX",
        102: "YY",
        103: "YY",
        11: "YY",
        12: "ZZ",
        1: "T1",
        2: "T1",
        3: "T1",
    }
    geo = GeolocationService(
        true_cc,
        ["XX", "YY", "ZZ", "T1"],
        SourceNoiseConfig(geolocation_accuracy=1.0),
        seed=1,
    )
    monitors = MonitorSet([Monitor("m0", 2), Monitor("m1", 3)])
    collector = RouteCollector(graph, monitors, policy=policy)
    return CTIComputer(Prefix2ASTable(entries), geo, collector)


def _policy_scores(backend=None, jobs=1, policy=_CTI_POLICY):
    cti = _policy_cti_scenario(policy)
    if backend is None:
        cti.score_countries(_CTI_CCS)
    else:
        with ExecutionContext(jobs=jobs, backend=backend) as context:
            cti.score_countries(_CTI_CCS, context=context)
    return {cc: cti.country_cti(cc) for cc in _CTI_CCS}


class TestPropagatedCTIByteIdentity:
    def test_policy_perturbs_scores(self):
        # Sanity: the non-neutral policy must actually move the metric,
        # otherwise byte-identity across backends would be vacuous.
        assert _policy_scores() != _policy_scores(policy=None)

    def test_serial_thread_process_bit_identical(self):
        serial = _policy_scores()
        threaded = _policy_scores(backend="thread", jobs=2)
        forked = _policy_scores(backend="process", jobs=2)
        # Exact float equality — not approx: every backend must make the
        # same additions in the same order on the same policy paths.
        assert serial == threaded
        assert serial == forked


class TestKernelOracleEquivalence:
    """The flat-array kernel IS both retained oracles, feature by feature.

    ``propagate_routes`` / ``propagate_policy_routes`` now delegate to
    :class:`~repro.net.propagation.PropagationKernel`, so the neutral
    50-seed suite above compares kernel to kernel.  This suite pins the
    kernel against the retained ``_reference_*`` tree builders explicitly
    — static and policy-aware — under every policy feature the engine
    supports, and proves buffer reuse inside one kernel never bleeds
    state between origins.
    """

    @staticmethod
    def _assert_same_tree(graph, kernel_tree, oracle_tree):
        for asn in graph.asns:
            assert kernel_tree.has_route(asn) == oracle_tree.has_route(asn), asn
            if not oracle_tree.has_route(asn):
                continue
            assert kernel_tree.path_from(asn) == oracle_tree.path_from(asn), asn
            assert kernel_tree.route_class(asn) is oracle_tree.route_class(asn)
            assert kernel_tree.distance(asn) == oracle_tree.distance(asn)

    @staticmethod
    def _random_policies(graph, rng):
        asns = graph.asns
        down = []
        for asn in rng.sample(asns, k=4):
            providers = sorted(graph.providers_of(asn))
            if providers:
                down.append((asn, rng.choice(providers)))
            peers = sorted(graph.peers_of(asn))
            if peers and rng.random() < 0.5:
                down.append((asn, rng.choice(peers)))
        leakers = rng.sample(asns, k=2)
        victim, hijacker = rng.sample(asns, k=2)
        return [
            RoutingPolicy.build(down_edges=down),
            RoutingPolicy.build(leakers=leakers),
            RoutingPolicy.build(hijacks={victim: [hijacker]}),
            RoutingPolicy.build(
                down_edges=down, leakers=leakers, hijacks={victim: [hijacker]}
            ),
        ]

    @pytest.mark.parametrize("seed", range(50))
    def test_kernel_matches_static_oracle(self, seed):
        rng = random.Random(7000 + seed)
        graph = random_valley_free_graph(rng)
        kernel = PropagationKernel(graph)
        for origin in graph.asns:
            self._assert_same_tree(
                graph,
                kernel.propagate(origin),
                _reference_propagate_routes(graph, origin),
            )

    @pytest.mark.parametrize("seed", range(50))
    def test_kernel_matches_policy_oracle_under_every_feature(self, seed):
        rng = random.Random(8000 + seed)
        graph = random_valley_free_graph(rng)
        origins = rng.sample(graph.asns, k=6)
        for policy in self._random_policies(graph, rng):
            kernel = PropagationKernel(graph, policy)
            for origin in origins:
                self._assert_same_tree(
                    graph,
                    kernel.propagate(origin),
                    _reference_propagate_policy_routes(graph, origin, policy),
                )

    def test_buffer_reuse_does_not_bleed_between_origins(self):
        """A tree handed out earlier must be unchanged by later propagations
        on the same kernel — its arrays are copies, not views of the
        kernel's reusable scratch buffers."""
        rng = random.Random(424242)
        graph = random_valley_free_graph(rng)
        kernel = PropagationKernel(graph)
        first_origin = graph.asns[0]
        first = kernel.propagate(first_origin)
        snapshot = {
            asn: (
                first.has_route(asn),
                first.path_from(asn) if first.has_route(asn) else None,
                first.route_class(asn) if first.has_route(asn) else None,
                first.distance(asn) if first.has_route(asn) else None,
            )
            for asn in graph.asns
        }
        for origin in graph.asns[1:]:
            kernel.propagate(origin)
        after = {
            asn: (
                first.has_route(asn),
                first.path_from(asn) if first.has_route(asn) else None,
                first.route_class(asn) if first.has_route(asn) else None,
                first.distance(asn) if first.has_route(asn) else None,
            )
            for asn in graph.asns
        }
        assert after == snapshot

    def test_kernel_is_reused_by_both_caches(self):
        graph = leak_quad()
        static_cache = RoutingTreeCache(graph)
        static_cache.tree(4)
        policy_cache = PolicyRoutingCache(graph, RoutingPolicy.build(leakers=[3]))
        policy_cache.tree(4)
        assert static_cache.tree(4).path_from(2) == (2, 1, 4)
        assert policy_cache.tree(4).path_from(2) == (2, 3, 1, 4)
