"""Tests for name normalization and similarity scoring."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.text.normalize import (
    acronym_match,
    acronym_of,
    edit_distance,
    jaccard_similarity,
    name_similarity,
    name_tokens,
    normalize_name,
)


class TestNormalizeName:
    def test_lowercase_and_punctuation(self):
        assert normalize_name("Tele-Com, S.A.") == "tele com"

    def test_strips_trailing_legal_suffixes(self):
        assert normalize_name("Telekom Malaysia Berhad") == "telekom malaysia"
        assert normalize_name("Acme Telecom Co., Ltd.") == "acme telecom"

    def test_keeps_leading_suffix_token(self):
        # "AS" is a legal form in Norway but also a leading word elsewhere.
        assert normalize_name("AS Telecom") == "as telecom"

    def test_accents_stripped(self):
        assert normalize_name("Télécom São Tomé") == "telecom sao tome"

    def test_empty(self):
        assert normalize_name("") == ""
        assert normalize_name("S.A.") == ""

    def test_tokens(self):
        assert name_tokens("Angola Cables S.A.") == ("angola", "cables")
        assert name_tokens("") == ()


class TestEditDistance:
    def test_identity(self):
        assert edit_distance("abc", "abc") == 0

    def test_empty(self):
        assert edit_distance("", "abc") == 3
        assert edit_distance("abc", "") == 3

    def test_known_value(self):
        assert edit_distance("kitten", "sitting") == 3

    @given(st.text(max_size=12), st.text(max_size=12))
    @settings(max_examples=100, deadline=None)
    def test_symmetry(self, a, b):
        assert edit_distance(a, b) == edit_distance(b, a)

    @given(st.text(max_size=10), st.text(max_size=10), st.text(max_size=10))
    @settings(max_examples=60, deadline=None)
    def test_triangle_inequality(self, a, b, c):
        assert edit_distance(a, c) <= edit_distance(a, b) + edit_distance(b, c)


class TestJaccard:
    def test_bounds(self):
        assert jaccard_similarity(["a"], ["a"]) == 1.0
        assert jaccard_similarity(["a"], ["b"]) == 0.0
        assert jaccard_similarity([], []) == 1.0
        assert jaccard_similarity(["a"], []) == 0.0


class TestAcronyms:
    def test_acronym_of_keeps_legal_form(self):
        assert acronym_of("Bangladesh Submarine Cable Company Limited") == "BSCCL"

    def test_acronym_match(self):
        assert acronym_match("BSCCL", "Bangladesh Submarine Cable Company Limited")

    def test_short_acronyms_rejected(self):
        assert not acronym_match("TTK", "Trans Telecom Kompany")

    def test_non_acronym(self):
        assert not acronym_match("Telenor", "Bangladesh Submarine Cable Co")


class TestNameSimilarity:
    def test_identical(self):
        assert name_similarity("Telenor Norge AS", "Telenor Norge AS") == 1.0

    def test_legal_suffix_invariance(self):
        assert name_similarity("Telekom Malaysia Berhad", "Telekom Malaysia") == 1.0

    def test_generic_stem_does_not_connect(self):
        # Different distinctive tokens, shared generic vocabulary.
        assert name_similarity("Macao Telekom", "Canada Telekom") < 0.5
        assert name_similarity(
            "Honduras State Holding", "Honduras Communications Ltd"
        ) < 0.7

    def test_brand_containment(self):
        assert name_similarity("ZamTel", "ZamTel Communications Ltd") >= 0.8

    def test_generic_containment_no_bonus(self):
        score = name_similarity(
            "honduras state", "honduras state telecommunication enterprise"
        )
        assert score < 0.8

    def test_acronym_bonus(self):
        assert name_similarity(
            "BSCCL", "Bangladesh Submarine Cable Company Limited"
        ) >= 0.9

    def test_unrelated_names_score_zero(self):
        assert name_similarity("Internexa", "Transamerican Telecomunication") == 0.0

    def test_transliteration_slip_tolerated(self):
        score = name_similarity(
            "Telecomunication Services Zambia", "Telecommunication Services Zambia"
        )
        assert score > 0.9

    @given(st.text(max_size=30), st.text(max_size=30))
    @settings(max_examples=100, deadline=None)
    def test_bounds_and_symmetry(self, a, b):
        score = name_similarity(a, b)
        assert 0.0 <= score <= 1.0
        assert score == pytest.approx(name_similarity(b, a))

    @given(st.text(min_size=1, max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_identity_property(self, name):
        if normalize_name(name):
            assert name_similarity(name, name) == 1.0


class TestMemoization:
    """The hot name functions are lru_cache-wrapped; the cache must be an
    invisible optimization — cached answers equal the raw computation."""

    CASES = [
        "Telekom Malaysia Berhad",
        "Tele-Com, S.A.",
        "AS Telecom",
        "  ",
        "Ḡlobal Ñet",
        "BSCCL",
    ]

    @pytest.mark.parametrize("name", CASES)
    def test_normalize_name_cache_transparent(self, name):
        assert normalize_name(name) == normalize_name.__wrapped__(name)

    @pytest.mark.parametrize("name", CASES)
    def test_name_tokens_cache_transparent(self, name):
        assert name_tokens(name) == name_tokens.__wrapped__(name)

    def test_name_similarity_cache_transparent(self):
        pairs = [
            ("ZamTel", "ZamTel Communications Ltd"),
            ("Internexa", "Transamerican Telecomunication"),
            ("BSCCL", "Bangladesh Submarine Cable Company Limited"),
        ]
        for a, b in pairs:
            assert name_similarity(a, b) == name_similarity.__wrapped__(a, b)

    def test_caches_are_actually_enabled(self):
        for fn in (normalize_name, name_tokens, name_similarity):
            assert hasattr(fn, "cache_info"), fn
