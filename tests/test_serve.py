"""Tests for the ``repro serve`` stack: indices, hot swap, HTTP endpoints.

The integration tests run a real :class:`~repro.serve.QueryServer` on an
ephemeral localhost port and query it with stdlib HTTP clients, including
concurrent clients hammering the API while snapshots swap underneath.
"""

from __future__ import annotations

import http.client
import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.core.dataset import OrganizationRecord, StateOwnedDataset
from repro.errors import DatasetError
from repro.io.jsonio import dump_cti_json, dump_json
from repro.obs import get_metrics
from repro.serve import ServerThread, SnapshotStore, build_index


def make_org(org_id, name, cc="NO", target_cc=None, parent=None):
    return OrganizationRecord(
        conglomerate_name=name,
        org_id=org_id,
        org_name=name,
        ownership_cc=cc,
        ownership_country_name=cc,
        rir="RIPE",
        source="Company's website",
        quote="q",
        quote_lang="English",
        url="https://x.example",
        parent_org=parent,
        target_cc=target_cc,
        target_country_name=target_cc,
    )


def dataset_v1():
    """Two Norwegian orgs (one a parent), one foreign subsidiary in SE."""
    return StateOwnedDataset(
        [
            make_org("O1", "Telenor"),
            make_org("O2", "Telenor Sweden", target_cc="SE", parent="O1"),
            make_org("O3", "Uzbektelecom", cc="UZ"),
        ],
        {"O1": [100, 101], "O2": [200], "O3": [300]},
    )


def dataset_v2():
    """v1 with O3 privatized away and a new Argentine org added."""
    return StateOwnedDataset(
        [
            make_org("O1", "Telenor"),
            make_org("O2", "Telenor Sweden", target_cc="SE", parent="O1"),
            make_org("O4", "ArSat", cc="AR"),
        ],
        {"O1": [100, 101], "O2": [200], "O4": [400, 401]},
    )


class _Selection:
    """Duck-typed CTISelection stand-in for sidecar exports."""

    def __init__(self, provenance, countries):
        self.provenance = provenance
        self.countries_applied = countries


def cti_selection():
    return _Selection(
        {
            100: (("NO", 1, 0.41), ("SE", 2, 0.11)),
            200: (("SE", 1, 0.30),),
        },
        ("NO", "SE"),
    )


@pytest.fixture()
def snapshot(tmp_path):
    """A v1 snapshot file with its CTI sidecar, plus its store."""
    path = tmp_path / "dataset.json"
    dump_json(dataset_v1(), path)
    dump_cti_json(cti_selection(), tmp_path / "dataset.json.cti.json")
    store = SnapshotStore(path)
    store.load_initial()
    return store


@pytest.fixture()
def server(snapshot):
    with ServerThread(snapshot, poll_interval=0.05) as thread:
        yield thread


def get_json(port, endpoint):
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}{endpoint}", timeout=10
    ) as resp:
        return json.loads(resp.read())


class TestSnapshotIndex:
    def test_owner_chain_walks_parents(self, snapshot):
        index = snapshot.current
        payload = index.owner_chain(200)
        assert payload["state_owned"] is True
        assert payload["organization"]["org_id"] == "O2"
        assert [o["org_id"] for o in payload["owner_chain"]] == ["O2", "O1"]

    def test_unknown_asn_not_state_owned(self, snapshot):
        payload = snapshot.current.owner_chain(99999)
        assert payload["state_owned"] is False

    def test_country_footprint(self, snapshot):
        payload = snapshot.current.country_footprint("se")
        assert payload["cc"] == "SE"
        assert not payload["domestic"]
        assert [o["org_id"] for o in payload["foreign_operators_present"]] == ["O2"]
        assert payload["state_owned_asns"] == [200]
        assert payload["top_cti_gateway"] == {"asn": 200, "score": 0.30}
        norway = snapshot.current.country_footprint("NO")
        assert [o["org_id"] for o in norway["owns_abroad"]] == ["O2"]

    def test_cti_rankings_sorted(self, snapshot):
        top = snapshot.current.top_cti(5)
        assert [r["asn"] for r in top["rankings"]] == [100, 200]
        per_cc = snapshot.current.top_cti(5, cc="SE")
        assert [r["asn"] for r in per_cc["rankings"]] == [200, 100]

    def test_digest_matches_file_bytes(self, snapshot, tmp_path):
        import hashlib

        expected = hashlib.sha256((tmp_path / "dataset.json").read_bytes()).hexdigest()
        assert snapshot.current.stamp.digest == expected

    def test_parent_cycle_terminates(self, tmp_path):
        ds = StateOwnedDataset(
            [
                make_org("A", "Alpha", parent="B"),
                make_org("B", "Beta", parent="A"),
            ],
            {"A": [1], "B": [2]},
        )
        path = tmp_path / "cycle.json"
        dump_json(ds, path)
        index = build_index(path)
        chain = index.owner_chain(1)["owner_chain"]
        assert [o["org_id"] for o in chain] == ["A", "B"]

    def test_missing_file_raises_dataset_error(self, tmp_path):
        with pytest.raises(DatasetError):
            build_index(tmp_path / "nope.json")


class TestEndpoints:
    def test_health_and_snapshot(self, server, snapshot):
        health = get_json(server.port, "/health")
        assert health["status"] == "ok"
        assert health["snapshot"] == snapshot.current.stamp.digest
        assert health["organizations"] == 3
        assert health["asns"] == 4
        assert health["reload"]["swaps"] == 0
        meta = get_json(server.port, "/snapshot")
        assert meta["snapshot"] == health["snapshot"]
        assert meta["cti"] is True

    def test_asn_endpoint(self, server):
        payload = get_json(server.port, "/asn/200")
        assert payload["state_owned"] is True
        assert payload["organization"]["org_name"] == "Telenor Sweden"
        assert [o["org_id"] for o in payload["owner_chain"]] == ["O2", "O1"]
        assert get_json(server.port, "/asn/4242")["state_owned"] is False

    def test_country_endpoint(self, server):
        payload = get_json(server.port, "/country/NO")
        assert [o["org_id"] for o in payload["domestic"]] == ["O1"]
        assert payload["asn_count"] == 2
        assert payload["cti_applied"] is True

    def test_cti_endpoint(self, server):
        payload = get_json(server.port, "/cti/top?n=1")
        assert [r["asn"] for r in payload["rankings"]] == [100]
        per_cc = get_json(server.port, "/cti/top?n=5&country=SE")
        assert [r["asn"] for r in per_cc["rankings"]] == [200, 100]

    def test_metrics_endpoint(self, server):
        get_json(server.port, "/asn/100")
        payload = get_json(server.port, "/metrics")
        assert payload["requests"]["asn"] >= 1
        assert "p95_ms" in payload["latency"]["asn"]

    def test_bad_requests(self, server):
        for endpoint, code in [
            ("/asn/notanumber", 400),
            ("/country/x1", 400),
            ("/cti/top?n=zero", 400),
            ("/cti/top?n=0", 400),
            ("/nope", 404),
            ("/diff", 404),  # no previous snapshot yet
        ]:
            with pytest.raises(urllib.error.HTTPError) as err:
                get_json(server.port, endpoint)
            assert err.value.code == code
            assert "error" in json.loads(err.value.read())

    def test_post_rejected(self, server):
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=10)
        conn.request("POST", "/health", body=b"{}")
        assert conn.getresponse().status == 405
        conn.close()

    def test_keep_alive_across_requests(self, server):
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=10)
        for _ in range(3):
            conn.request("GET", "/health")
            resp = conn.getresponse()
            assert resp.status == 200
            resp.read()
        conn.close()


class TestHotSwap:
    def test_swap_serves_new_snapshot_and_diff(self, server, snapshot):
        old_digest = snapshot.current.stamp.digest
        dump_json(dataset_v2(), snapshot.path)
        assert snapshot.poll() is True
        meta = get_json(server.port, "/snapshot")
        assert meta["snapshot"] != old_digest
        assert get_json(server.port, "/asn/400")["state_owned"] is True
        diff = get_json(server.port, "/diff")
        assert diff["old_snapshot"] == old_digest
        assert diff["added_orgs"] == ["ArSat"]
        assert diff["removed_orgs"] == ["Uzbektelecom"]
        # +{400, 401} -{300} over an old snapshot of 4 ASNs.
        assert diff["old_asn_count"] == 4
        assert diff["churn_fraction"] == pytest.approx(3 / 4)

    def test_unchanged_file_does_not_swap(self, snapshot):
        assert snapshot.poll() is False
        assert snapshot.swaps == 0

    def test_rewrite_with_identical_bytes_is_not_a_swap(self, snapshot):
        dump_json(dataset_v1(), snapshot.path)
        assert snapshot.poll() is False
        assert snapshot.swaps == 0

    def test_reloader_picks_up_swap_without_explicit_poll(self, server, snapshot):
        import time

        dump_json(dataset_v2(), snapshot.path)
        deadline = time.time() + 5
        while time.time() < deadline:
            if get_json(server.port, "/asn/400")["state_owned"]:
                break
            time.sleep(0.02)
        else:
            pytest.fail("reload poller never swapped the snapshot")

    def test_concurrent_queries_never_see_mixed_snapshots(self, server, snapshot):
        """Hammer the API from several threads while snapshots flip."""
        digests = {}
        for build in (dataset_v1, dataset_v2):
            dump_json(build(), snapshot.path)
            snapshot.poll()
            digests[snapshot.current.stamp.digest] = build
        expected_counts = {
            digest: len(build().all_asns()) for digest, build in digests.items()
        }
        errors = []

        def client():
            conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=10)
            try:
                for _ in range(150):
                    conn.request("GET", "/country/NO")
                    resp = conn.getresponse()
                    body = json.loads(resp.read())
                    if resp.status != 200:
                        errors.append(f"status {resp.status}")
                    elif body["snapshot"] not in expected_counts:
                        errors.append(f"unknown digest {body['snapshot']}")
                    conn.request("GET", "/snapshot")
                    resp = conn.getresponse()
                    meta = json.loads(resp.read())
                    if resp.status != 200:
                        errors.append(f"status {resp.status}")
                    elif meta["asns"] != expected_counts[meta["snapshot"]]:
                        # The asn count must match the digest's dataset:
                        # a mixed response would pair them inconsistently.
                        errors.append(
                            f"mixed snapshot: {meta['snapshot']} " f"-> {meta['asns']}"
                        )
            except Exception as exc:  # noqa: BLE001 - collected for assert
                errors.append(repr(exc))
            finally:
                conn.close()

        threads = [threading.Thread(target=client) for _ in range(4)]
        for thread in threads:
            thread.start()
        flips = 0
        builders = [dataset_v1, dataset_v2]
        while any(t.is_alive() for t in threads):
            dump_json(builders[flips % 2](), snapshot.path)
            snapshot.poll()
            flips += 1
        for thread in threads:
            thread.join()
        assert not errors, errors[:5]
        assert flips > 2  # the swap path genuinely ran mid-traffic


class TestDegradedReload:
    def test_corrupt_snapshot_keeps_previous(self, server, snapshot):
        good_digest = snapshot.current.stamp.digest
        snapshot.path.write_text('{"format_version": 1, "organiza')
        assert snapshot.poll() is False
        assert snapshot.reload_failures == 1
        assert "DatasetError" in snapshot.last_error
        # Still serving the old snapshot, now flagged degraded.
        health = get_json(server.port, "/health")
        assert health["snapshot"] == good_digest
        assert health["status"] == "degraded"
        assert health["reload"]["reload_failures"] == 1

    def test_same_bad_file_state_diagnosed_once(self, snapshot):
        snapshot.path.write_text("not json")
        snapshot.poll()
        snapshot.poll()
        assert snapshot.reload_failures == 1

    def test_recovery_after_corruption(self, server, snapshot):
        snapshot.path.write_text("garbage")
        snapshot.poll()
        dump_json(dataset_v2(), snapshot.path)
        assert snapshot.poll() is True
        health = get_json(server.port, "/health")
        assert health["status"] == "ok"
        assert health["reload"]["last_error"] is None
        assert get_json(server.port, "/asn/400")["state_owned"] is True

    def test_vanished_file_degrades(self, snapshot):
        snapshot.path.unlink()
        assert snapshot.poll() is False
        assert snapshot.reload_failures == 1
        assert snapshot.current is not None
        # Diagnosed once, not on every tick.
        assert snapshot.poll() is False
        assert snapshot.reload_failures == 1

    def test_reload_failure_counts_in_metrics(self, snapshot):
        before = get_metrics().counter("serve.reload.failures")
        snapshot.path.write_text("][")
        snapshot.poll()
        assert get_metrics().counter("serve.reload.failures") == before + 1


class TestStoreWithoutSidecar:
    def test_serves_dataset_without_cti(self, tmp_path):
        path = tmp_path / "plain.json"
        dump_json(dataset_v1(), path)
        store = SnapshotStore(path)
        store.load_initial()
        assert store.current.has_cti is False
        assert store.current.top_cti(3)["rankings"] == []
        assert store.current.metadata()["cti"] is False
