"""Tests for the ground-truth validation scorer."""


from repro.core import validate_against_world


class TestValidationReport:
    def test_partition(self, pipeline_result, small_world):
        report = validate_against_world(pipeline_result, small_world)
        predicted = set(pipeline_result.dataset.all_asns())
        truth = set(small_world.ground_truth_asns())
        assert report.asn_true_positives == frozenset(predicted & truth)
        assert report.asn_false_positives == frozenset(predicted - truth)
        assert report.asn_false_negatives == frozenset(truth - predicted)

    def test_metrics_bounded(self, pipeline_result, small_world):
        report = validate_against_world(pipeline_result, small_world)
        for value in (
            report.asn_precision,
            report.asn_recall,
            report.asn_f1,
            report.company_precision,
            report.company_recall,
        ):
            assert 0.0 <= value <= 1.0

    def test_f1_between_precision_and_recall(self, pipeline_result, small_world):
        report = validate_against_world(pipeline_result, small_world)
        low = min(report.asn_precision, report.asn_recall)
        high = max(report.asn_precision, report.asn_recall)
        assert low <= report.asn_f1 <= high

    def test_per_region_populated(self, pipeline_result, small_world):
        report = validate_against_world(pipeline_result, small_world)
        assert "Africa" in report.per_region
        assert "Asia" in report.per_region
        for precision, recall in report.per_region.values():
            assert 0.0 <= precision <= 1.0
            assert 0.0 <= recall <= 1.0

    def test_per_rir_populated(self, pipeline_result, small_world):
        report = validate_against_world(pipeline_result, small_world)
        assert set(report.per_rir) <= {
            "AFRINIC", "APNIC", "ARIN", "LACNIC", "RIPE", "?"
        }

    def test_as_text(self, pipeline_result, small_world):
        report = validate_against_world(pipeline_result, small_world)
        text = report.as_text()
        assert "precision" in text
        assert "Africa" in text
