"""Integration tests: the full pipeline against a generated world."""


from repro.core import validate_against_world
from repro.core.pipeline import StateOwnershipPipeline
from repro.sources.base import InputSource
from repro.text.normalize import normalize_name
from repro.world.entities import OperatorRole, OperatorScope


class TestAccuracy:
    def test_precision_floor(self, pipeline_result, small_world):
        report = validate_against_world(pipeline_result, small_world)
        assert report.asn_precision > 0.9

    def test_recall_floor(self, pipeline_result, small_world):
        report = validate_against_world(pipeline_result, small_world)
        assert report.asn_recall > 0.65

    def test_company_level_floors(self, pipeline_result, small_world):
        report = validate_against_world(pipeline_result, small_world)
        assert report.company_precision > 0.9
        assert report.company_recall > 0.65


class TestDefinitionCompliance:
    def test_no_domestic_us_organizations(self, pipeline_result):
        for org in pipeline_result.dataset.organizations():
            assert org.ownership_cc != "US"

    def test_no_restricted_roles_in_dataset(self, pipeline_result, small_world):
        for asn in pipeline_result.dataset.all_asns():
            record = small_world.asn_records.get(asn)
            if record is None:
                continue
            operator = small_world.operator(record.operator_id)
            assert operator.role not in (
                OperatorRole.ACADEMIC, OperatorRole.GOVNET, OperatorRole.NIC
            ), operator.name

    def test_no_subnational_operators(self, pipeline_result, small_world):
        for asn in pipeline_result.dataset.all_asns():
            record = small_world.asn_records.get(asn)
            if record is None:
                continue
            operator = small_world.operator(record.operator_id)
            assert operator.scope is OperatorScope.NATIONAL

    def test_asn_belongs_to_one_org(self, pipeline_result):
        seen = set()
        for org in pipeline_result.dataset.organizations():
            for asn in pipeline_result.dataset.asns_of(org.org_id):
                assert asn not in seen
                seen.add(asn)


class TestRecordQuality:
    def test_every_org_has_confirmation_metadata(self, pipeline_result):
        for org in pipeline_result.dataset.organizations():
            assert org.source, org.org_name
            assert org.url
            assert org.ownership_country_name

    def test_foreign_records_have_target_fields(self, pipeline_result):
        for org in pipeline_result.dataset.foreign_subsidiaries():
            assert org.target_cc is not None
            assert org.target_country_name
            assert org.target_cc != org.ownership_cc

    def test_inputs_use_paper_codes(self, pipeline_result):
        valid = {"G", "E", "C", "W", "O"}
        for org in pipeline_result.dataset.organizations():
            assert set(org.inputs) <= valid

    def test_foreign_owners_match_expansion_profiles(
        self, pipeline_result, small_world
    ):
        profiles = set(small_world.config.expansion_profiles)
        for org in pipeline_result.dataset.foreign_subsidiaries():
            assert org.ownership_cc in profiles, org.org_name

    def test_conglomerate_names_present(self, pipeline_result):
        for org in pipeline_result.dataset.organizations():
            assert org.conglomerate_name


class TestDiagnostics:
    def test_funnel_stats_consistent(self, pipeline_result):
        stats = pipeline_result.stats
        assert stats["geo_eyeball_union"] <= stats["total_asns"]
        assert (
            stats["geo_eyeball_intersection"]
            <= min(stats["geolocation_asns"], stats["eyeball_asns"])
        )
        assert stats["state_owned_asns"] == len(pipeline_result.dataset.all_asns())

    def test_verdict_partition(self, pipeline_result):
        # Every investigated work item lands in exactly one outcome bucket.
        outcomes = (
            pipeline_result.confirmed_keys
            | pipeline_result.minority_keys
            | set(pipeline_result.excluded)
            | pipeline_result.unconfirmed_keys
        )
        for key in pipeline_result.work:
            if key in pipeline_result.verdicts or key in pipeline_result.excluded:
                assert key in outcomes

    def test_minority_not_in_dataset(self, pipeline_result):
        dataset_names = {
            normalize_name(org.org_name)
            for org in pipeline_result.dataset.organizations()
        }
        for key in pipeline_result.minority_keys:
            assert key not in dataset_names

    def test_asn_inputs_cover_dataset(self, pipeline_result):
        covered = set(pipeline_result.asn_inputs)
        dataset_asns = set(pipeline_result.dataset.all_asns())
        assert dataset_asns <= covered | dataset_asns
        # Every AS with provenance is in the dataset.
        assert covered <= dataset_asns

    def test_cti_selection_present(self, pipeline_result):
        assert pipeline_result.cti_selection is not None
        assert len(pipeline_result.cti_selection.countries_applied) > 10


class TestExclusions:
    def test_excluded_companies_recorded(self, pipeline_result, small_world):
        # Worlds include academic/government networks; if any reached the
        # candidate list they must be in the excluded bucket, never in the
        # dataset.
        assert isinstance(pipeline_result.excluded, dict)
        dataset_names = {
            normalize_name(org.org_name)
            for org in pipeline_result.dataset.organizations()
        }
        for key in pipeline_result.excluded:
            assert key not in dataset_names


class TestAblation:
    def test_skip_source_removes_candidates(self, small_inputs):
        pipeline = StateOwnershipPipeline(small_inputs)
        result = pipeline.run(skip_sources=[InputSource.CTI, InputSource.ORBIS])
        assert result.cti_selection is None
        assert result.stats["cti_asns"] == 0
        assert result.stats["orbis_companies"] == 0

    def test_skip_geolocation(self, small_inputs):
        pipeline = StateOwnershipPipeline(small_inputs)
        result = pipeline.run(
            skip_sources=[
                InputSource.GEOLOCATION,
                InputSource.CTI,  # skip CTI too: keeps the test fast
            ]
        )
        assert result.stats["geolocation_asns"] == 0
        assert not result.candidates.asns_from(InputSource.GEOLOCATION)


class TestDeterminism:
    def test_rerun_is_identical(self, small_inputs, pipeline_result):
        again = StateOwnershipPipeline(small_inputs).run()
        assert again.dataset.all_asns() == pipeline_result.dataset.all_asns()
        assert again.confirmed_keys == pipeline_result.confirmed_keys
