"""Tests for the output dataset container and its JSON/SQLite round-trips."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dataset import OrganizationRecord, StateOwnedDataset
from repro.errors import DatasetError
from repro.io.jsonio import (
    dataset_from_json,
    dataset_to_json,
    dump_cti_json,
    dump_json,
    load_cti_json,
    load_json,
)
from repro.io.sqliteio import dataset_from_sqlite, dataset_to_sqlite
from repro.io.tables import render_table


def org(org_id="ORG-1", cc="NO", target_cc=None, source="Company's website"):
    return OrganizationRecord(
        conglomerate_name="Telenor",
        org_id=org_id,
        org_name="Telenor Norge AS",
        ownership_cc=cc,
        ownership_country_name="Norway",
        rir="RIPE",
        source=source,
        quote="Major Shareholdings: Government of Norway (54.7%)",
        quote_lang="English",
        url="https://telenor.example/investors",
        inputs=("E", "G", "O", "W"),
        target_cc=target_cc,
        target_country_name="Sweden" if target_cc else None,
    )


class TestDatasetContainer:
    def test_basic_queries(self):
        ds = StateOwnedDataset([org()], {"ORG-1": [2119, 8210]})
        assert len(ds) == 1
        assert ds.asns_of("ORG-1") == (2119, 8210)
        assert ds.all_asns() == frozenset({2119, 8210})
        assert ds.owner_countries() == frozenset({"NO"})
        assert ds.org_of_asn(2119).org_id == "ORG-1"
        assert ds.org_of_asn(9999) is None

    def test_duplicate_org_rejected(self):
        with pytest.raises(DatasetError):
            StateOwnedDataset([org(), org()], {})

    def test_unknown_org_asns_rejected(self):
        with pytest.raises(DatasetError):
            StateOwnedDataset([org()], {"ORG-X": [1]})

    def test_foreign_subsidiary_flags(self):
        domestic = org("ORG-1")
        foreign = org("ORG-2", cc="NO", target_cc="SE")
        ds = StateOwnedDataset(
            [domestic, foreign], {"ORG-1": [1], "ORG-2": [2]}
        )
        assert not domestic.is_foreign_subsidiary
        assert foreign.is_foreign_subsidiary
        assert ds.foreign_subsidiary_asns() == frozenset({2})
        assert ds.subsidiary_owner_countries() == frozenset({"NO"})
        assert foreign.operating_cc == "SE"

    def test_organizations_in(self):
        ds = StateOwnedDataset(
            [org("ORG-1"), org("ORG-2", target_cc="SE")],
            {"ORG-1": [1], "ORG-2": [2]},
        )
        assert len(ds.organizations_in("SE")) == 1
        assert len(ds.organizations_in("NO")) == 1

    def test_asnless_org_allowed(self):
        ds = StateOwnedDataset([org()], {})
        assert ds.asns_of("ORG-1") == ()

    def test_merge(self):
        a = StateOwnedDataset([org("ORG-1")], {"ORG-1": [1]})
        b = StateOwnedDataset([org("ORG-2")], {"ORG-2": [2]})
        merged = a.merged_with(b)
        assert len(merged) == 2
        assert merged.all_asns() == frozenset({1, 2})

    def test_unknown_org_lookup_raises(self):
        ds = StateOwnedDataset([org()], {})
        with pytest.raises(DatasetError):
            ds.organization("ORG-NOPE")


class TestJsonRoundTrip:
    def test_round_trip_preserves_everything(self):
        ds = StateOwnedDataset(
            [org("ORG-1"), org("ORG-2", target_cc="SE")],
            {"ORG-1": [2119], "ORG-2": [8210, 39197]},
        )
        restored = dataset_from_json(dataset_to_json(ds))
        assert [o.to_dict() for o in restored.organizations()] == [
            o.to_dict() for o in ds.organizations()
        ]
        assert restored.asns_of("ORG-2") == (8210, 39197)

    def test_files(self, tmp_path):
        ds = StateOwnedDataset([org()], {"ORG-1": [2119]})
        path = tmp_path / "dataset.json"
        dump_json(ds, path)
        assert load_json(path).all_asns() == frozenset({2119})

    def test_malformed_json_rejected(self):
        with pytest.raises(DatasetError):
            dataset_from_json("not json at all {")

    def test_wrong_version_rejected(self):
        with pytest.raises(DatasetError):
            dataset_from_json('{"format_version": 99}')

    def test_missing_field_rejected(self):
        with pytest.raises(DatasetError):
            dataset_from_json(
                '{"format_version": 1, "organizations": [{"org_id": "x"}]}'
            )


class TestSqliteRoundTrip:
    def test_round_trip(self, tmp_path):
        ds = StateOwnedDataset(
            [org("ORG-1"), org("ORG-2", target_cc="SE")],
            {"ORG-1": [2119], "ORG-2": [8210]},
        )
        path = tmp_path / "dataset.db"
        dataset_to_sqlite(ds, path)
        restored = dataset_from_sqlite(path)
        assert [o.to_dict() for o in restored.organizations()] == sorted(
            (o.to_dict() for o in ds.organizations()),
            key=lambda d: d["org_id"],
        )

    def test_overwrites(self, tmp_path):
        path = tmp_path / "dataset.db"
        dataset_to_sqlite(StateOwnedDataset([org()], {"ORG-1": [1]}), path)
        dataset_to_sqlite(StateOwnedDataset([org()], {"ORG-1": [2]}), path)
        assert dataset_from_sqlite(path).all_asns() == frozenset({2})

    def test_missing_file(self, tmp_path):
        with pytest.raises(DatasetError):
            dataset_from_sqlite(tmp_path / "nope.db")

    def test_pipeline_dataset_round_trips(self, pipeline_result, tmp_path):
        ds = pipeline_result.dataset
        json_restored = dataset_from_json(dataset_to_json(ds))
        assert json_restored.all_asns() == ds.all_asns()
        path = tmp_path / "run.db"
        dataset_to_sqlite(ds, path)
        assert dataset_from_sqlite(path).all_asns() == ds.all_asns()


class _ExplodingDataset(StateOwnedDataset):
    """Simulates a crash partway through an export."""

    def asns_of(self, org_id):
        raise RuntimeError("simulated crash mid-export")


class TestAtomicExport:
    def _good(self, asns):
        return StateOwnedDataset([org()], {"ORG-1": asns})

    def test_sqlite_crash_leaves_previous_file_byte_identical(self, tmp_path):
        path = tmp_path / "dataset.db"
        dataset_to_sqlite(self._good([2119]), path)
        before = path.read_bytes()
        with pytest.raises(RuntimeError):
            dataset_to_sqlite(_ExplodingDataset([org()], {}), path)
        assert path.read_bytes() == before
        assert dataset_from_sqlite(path).all_asns() == frozenset({2119})

    def test_json_crash_leaves_previous_file_byte_identical(self, tmp_path):
        path = tmp_path / "dataset.json"
        dump_json(self._good([2119]), path)
        before = path.read_bytes()
        with pytest.raises(RuntimeError):
            dump_json(_ExplodingDataset([org()], {}), path)
        assert path.read_bytes() == before
        assert load_json(path).all_asns() == frozenset({2119})

    def test_no_temp_files_left_behind(self, tmp_path):
        db_path = tmp_path / "dataset.db"
        json_path = tmp_path / "dataset.json"
        dataset_to_sqlite(self._good([1]), db_path)
        dump_json(self._good([1]), json_path)
        for target in (db_path, json_path):
            with pytest.raises(RuntimeError):
                if target.suffix == ".db":
                    dataset_to_sqlite(_ExplodingDataset([org()], {}), target)
                else:
                    dump_json(_ExplodingDataset([org()], {}), target)
        assert sorted(p.name for p in tmp_path.iterdir()) == [
            "dataset.db",
            "dataset.json",
        ]

    def test_atomic_replace_overwrites_on_success(self, tmp_path):
        path = tmp_path / "dataset.json"
        dump_json(self._good([1]), path)
        dump_json(self._good([2]), path)
        assert load_json(path).all_asns() == frozenset({2})

    def test_export_to_new_file_still_works(self, tmp_path):
        path = tmp_path / "fresh.db"
        dataset_to_sqlite(self._good([7]), path)
        assert dataset_from_sqlite(path).all_asns() == frozenset({7})

    def test_replace_fsyncs_file_then_renames_then_fsyncs_dir(
        self, tmp_path, monkeypatch
    ):
        """Crash durability: data must hit disk *before* the rename makes
        it visible, and the directory entry must be synced after.

        Fails on the pre-fix code, which renamed without any fsync.
        """
        import os as real_os
        import stat as stat_mod

        from repro.io import atomic

        events = []
        orig_fsync, orig_replace = real_os.fsync, real_os.replace

        def spy_fsync(fd):
            is_dir = stat_mod.S_ISDIR(real_os.fstat(fd).st_mode)
            events.append("fsync-dir" if is_dir else "fsync-file")
            return orig_fsync(fd)

        def spy_replace(src, dst):
            events.append("replace")
            return orig_replace(src, dst)

        monkeypatch.setattr(atomic.os, "fsync", spy_fsync)
        monkeypatch.setattr(atomic.os, "replace", spy_replace)
        dump_json(self._good([1]), tmp_path / "dataset.json")
        assert events == ["fsync-file", "replace", "fsync-dir"]

    def test_replace_survives_unsyncable_directory(self, tmp_path, monkeypatch):
        """Directory fsync is best-effort (some filesystems refuse it)."""
        import os as real_os
        import stat as stat_mod

        from repro.io import atomic

        orig_fsync = real_os.fsync

        def picky_fsync(fd):
            if stat_mod.S_ISDIR(real_os.fstat(fd).st_mode):
                raise OSError("directory fsync unsupported")
            return orig_fsync(fd)

        monkeypatch.setattr(atomic.os, "fsync", picky_fsync)
        path = tmp_path / "dataset.json"
        dump_json(self._good([3]), path)
        assert load_json(path).all_asns() == frozenset({3})


class TestLoadJsonErrorShape:
    """Every load failure surfaces as DatasetError (one shape for the
    CLI commands and the serve reloader alike)."""

    def test_missing_file(self, tmp_path):
        with pytest.raises(DatasetError, match="cannot read dataset"):
            load_json(tmp_path / "absent.json")

    def test_truncated_json(self, tmp_path):
        path = tmp_path / "dataset.json"
        path.write_text('{"format_version": 1, "organizations": [{"trunc')
        with pytest.raises(DatasetError):
            load_json(path)

    def test_invalid_utf8(self, tmp_path):
        path = tmp_path / "dataset.json"
        path.write_bytes(b'{"format_version": 1\xff\xfe}')
        with pytest.raises(DatasetError, match="not valid UTF-8"):
            load_json(path)

    def test_directory_path(self, tmp_path):
        with pytest.raises(DatasetError, match="cannot read dataset"):
            load_json(tmp_path)


class TestCtiSidecar:
    class _Selection:
        def __init__(self, provenance, countries):
            self.provenance = provenance
            self.countries_applied = countries

    def test_round_trip(self, tmp_path):
        path = tmp_path / "dataset.json.cti.json"
        selection = self._Selection(
            {
                8193: (("UZ", 1, 0.73), ("KZ", 3, 0.11)),
                200: (("AR", 2, 0.40),),
            },
            ("UZ", "KZ", "AR"),
        )
        dump_cti_json(selection, path)
        loaded = load_cti_json(path)
        assert loaded["countries_applied"] == ["UZ", "KZ", "AR"]
        assert loaded["provenance"] == {
            8193: [("UZ", 1, 0.73), ("KZ", 3, 0.11)],
            200: [("AR", 2, 0.40)],
        }

    def test_load_failures_are_dataset_errors(self, tmp_path):
        with pytest.raises(DatasetError):
            load_cti_json(tmp_path / "absent.cti.json")
        bad = tmp_path / "bad.cti.json"
        bad.write_text("[1, 2")
        with pytest.raises(DatasetError):
            load_cti_json(bad)
        wrong_shape = tmp_path / "wrong.cti.json"
        wrong_shape.write_text('{"format_version": 99}')
        with pytest.raises(DatasetError):
            load_cti_json(wrong_shape)


class TestRenderTable:
    def test_basic(self):
        text = render_table(("a", "b"), [(1, 22)])
        assert "a | b" in text
        assert "1 | 22" in text

    def test_title(self):
        text = render_table(("x",), [("y",)], title="Table 9")
        assert text.startswith("Table 9")

    def test_ragged_rejected(self):
        with pytest.raises(ValueError):
            render_table(("a", "b"), [(1,)])


_text = st.text(alphabet=st.characters(blacklist_categories=("Cs",)), max_size=20)


class TestJsonProperty:
    @given(
        st.lists(
            st.builds(
                OrganizationRecord,
                conglomerate_name=_text,
                org_id=st.uuids().map(str),
                org_name=_text,
                ownership_cc=st.sampled_from(["NO", "CN", "QA"]),
                ownership_country_name=_text,
                rir=st.sampled_from(["RIPE", "APNIC"]),
                source=_text,
                quote=_text,
                quote_lang=_text,
                url=_text,
                inputs=st.lists(
                    st.sampled_from(["G", "E", "C", "W", "O"]), max_size=5
                ).map(tuple),
            ),
            max_size=5,
            unique_by=lambda o: o.org_id,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_arbitrary_records_round_trip(self, orgs):
        ds = StateOwnedDataset(orgs, {o.org_id: [1, 2] for o in orgs})
        restored = dataset_from_json(dataset_to_json(ds))
        assert [o.to_dict() for o in restored.organizations()] == [
            o.to_dict() for o in ds.organizations()
        ]
