"""Tests for the non-technical sources: Orbis, Freedom House, Wikipedia,
and the confirmation-document corpus."""

import pytest

from repro.config import SourceNoiseConfig
from repro.sources.documents import ConfirmationCorpus, SourceType
from repro.sources.freedomhouse import FreedomHouseReports
from repro.sources.orbis import OrbisDatabase
from repro.sources.wikipedia import WikipediaArticles
from repro.text.normalize import name_similarity, normalize_name
from repro.world.entities import EntityKind


@pytest.fixture(scope="module")
def orbis(tiny_world):
    return OrbisDatabase.from_world(tiny_world)


@pytest.fixture(scope="module")
def freedomhouse(tiny_world):
    return FreedomHouseReports.from_world(tiny_world)


@pytest.fixture(scope="module")
def wikipedia(tiny_world):
    return WikipediaArticles.from_world(tiny_world)


@pytest.fixture(scope="module")
def corpus(tiny_world, freedomhouse):
    return ConfirmationCorpus.from_world(tiny_world, freedomhouse)


def truth_names(world):
    return {normalize_name(gto.operator.name) for gto in world.ground_truth()} | {
        normalize_name(gto.operator.display_name) for gto in world.ground_truth()
    }


class TestOrbis:
    def test_has_false_negatives(self, tiny_world, orbis):
        labeled = {normalize_name(r.company_name) for r in orbis.state_owned_telcos()}
        missed = [
            gto
            for gto in tiny_world.ground_truth()
            if normalize_name(gto.operator.name) not in labeled
        ]
        assert missed, "Orbis should miss some state-owned firms (paper: 140)"

    def test_false_negatives_skew_developing(self, tiny_world, orbis):
        tier = {c.cc: c.dev_tier for c in tiny_world.countries}
        labeled = {normalize_name(r.company_name) for r in orbis.state_owned_telcos()}
        stats = {0: [0, 0], 2: [0, 0]}  # tier -> [missed, total]
        for gto in tiny_world.ground_truth():
            t = tier.get(gto.operator.cc)
            if t not in stats:
                continue
            stats[t][1] += 1
            if normalize_name(gto.operator.name) not in labeled:
                stats[t][0] += 1
        if stats[0][1] and stats[2][1]:
            assert stats[0][0] / stats[0][1] >= stats[2][0] / stats[2][1]

    def test_has_false_positives(self, tiny_world, orbis):
        truth = truth_names(tiny_world)
        fps = [
            r
            for r in orbis.state_owned_telcos()
            if normalize_name(r.company_name) not in truth
        ]
        assert fps, "Orbis should mislabel a few companies (paper: 12)"

    def test_lookup(self, orbis):
        record = next(iter(orbis))
        assert orbis.lookup_company(record.company_name) == record

    def test_sectors_follow_roles(self, tiny_world, orbis):
        valid = {
            "Telecommunications",
            "Education",
            "Public Administration",
            "Information Services",
        }
        sectors = {r.sector for r in orbis}
        assert sectors <= valid
        assert "Telecommunications" in sectors

    def test_telco_query_excludes_other_sectors(self, orbis):
        for record in orbis.state_owned_telcos():
            assert record.sector == "Telecommunications"


class TestFreedomHouse:
    def test_coverage_count(self, tiny_world, freedomhouse):
        assert len(freedomhouse.covered_countries) == 65

    def test_no_false_positives(self, tiny_world, freedomhouse):
        truth = truth_names(tiny_world)
        for name, _cc in freedomhouse.state_owned_company_names():
            assert normalize_name(name) in truth

    def test_mentions_only_in_covered_countries(self, freedomhouse):
        for mention in freedomhouse.all_mentions():
            assert freedomhouse.covers(mention.cc)

    def test_quotes_mention_state(self, freedomhouse):
        for mention in freedomhouse.all_mentions()[:20]:
            assert "state-owned" in mention.quote


class TestWikipedia:
    def test_claims_are_mostly_true(self, tiny_world, wikipedia):
        truth = truth_names(tiny_world)
        names = [n for n, _ in wikipedia.state_owned_company_names()]
        true_count = sum(1 for n in names if normalize_name(n) in truth)
        assert true_count / len(names) > 0.7

    def test_false_positives_exist_by_design(self, tiny_world):
        # With max minority-claim probability, stale claims appear.
        noise = SourceNoiseConfig()
        wiki = WikipediaArticles.from_world(tiny_world, noise)
        truth = truth_names(tiny_world)
        names = [n for n, _ in wiki.state_owned_company_names()]
        # Not asserting >0 strictly (probabilistic), but the mechanism must
        # not fabricate names outside truth+minority.
        minority = {
            normalize_name(tiny_world.operator(oid).display_name)
            for oid in tiny_world.minority_operator_ids()
        } | {
            normalize_name(tiny_world.operator(oid).name)
            for oid in tiny_world.minority_operator_ids()
        }
        for n in names:
            assert normalize_name(n) in truth | minority

    def test_articles_have_titles(self, wikipedia):
        for article in wikipedia.all_articles():
            assert article.title


class TestCorpus:
    def test_find_documents_exact(self, tiny_world, corpus):
        gto = tiny_world.ground_truth()[0]
        docs = corpus.find_documents(gto.operator.name)
        if docs:  # document existence is probabilistic
            top = docs[0]
            assert any(
                name_similarity(gto.operator.name, s) >= 0.72 for s in top.subject_names
            )

    def test_claims_reflect_truth(self, tiny_world, corpus):
        """Every quantified claim matches a true stake in the world."""
        ownership = tiny_world.ownership
        by_subject = {}
        for op in ownership.operators():
            by_subject[normalize_name(op.name)] = op
        for doc in corpus.all_documents():
            for claim in doc.claims:
                if claim.fraction is None:
                    continue
                subject = by_subject.get(normalize_name(claim.subject_name))
                if subject is None:
                    continue
                stakes = ownership.shareholders_of(subject.entity_id)
                assert any(
                    abs(s.fraction - claim.fraction) < 1e-6 for s in stakes
                ), (doc.doc_id, claim)

    def test_domain_search(self, tiny_world, corpus):
        for gto in tiny_world.ground_truth():
            website = gto.operator.website
            if website:
                docs = corpus.find_by_domain(website)
                if docs:
                    assert gto.operator.name in docs[0].subject_names
                    break
        else:
            pytest.skip("no operator with website docs")

    def test_source_mix(self, corpus):
        counts = corpus.count_by_source()
        assert counts.get(SourceType.COMPANY_WEBSITE, 0) > counts.get(
            SourceType.NEWS, 0
        )
        assert SourceType.FREEDOM_HOUSE in counts

    def test_intermediary_docs_present(self, tiny_world, corpus):
        funds = tiny_world.ownership.entities(EntityKind.STATE_FUND)
        if not funds:
            pytest.skip("no funds in tiny world")
        found = 0
        for fund in funds:
            if corpus.find_documents(fund.name):
                found += 1
        assert found / len(funds) > 0.6

    def test_assertion_sources_only_for_truly_state(self, tiny_world, corpus):
        """World Bank / ITU / FH docs only assert truthful state control."""
        truth = truth_names(tiny_world)
        for doc in corpus.all_documents():
            if doc.source_type not in (
                SourceType.WORLD_BANK, SourceType.ITU, SourceType.FREEDOM_HOUSE
            ):
                continue
            for name in doc.subject_names:
                if normalize_name(name) in truth:
                    break
            else:
                raise AssertionError(
                    f"{doc.source_type} asserts ownership of a non-state "
                    f"company: {doc.subject_names}"
                )
