"""The run-scoped worker runtime: one pool per run, states shipped once,
crash-requeue on a reused pool, parallel world generation, and the world
blob cache."""

from __future__ import annotations

import argparse
import pickle

import pytest

from repro.cli import _make_world
from repro.config import ParallelConfig, WorldConfig
from repro.errors import ConfigError, invalid_jobs
from repro.obs import get_metrics
from repro.parallel import (
    ExecutionContext,
    ResultCache,
    StateHandle,
    WorkerRuntime,
)
from repro.resilience import clear_fault_plan
from repro.world.generator import World, WorldGenerator
from repro.world.worldcache import world_cache_key as _world_cache_key


def _add(state, item):
    """Module-level so the process backend can address it."""
    return (state or 0) + item


def _lookup(state, item):
    return state["base"] + item


def _square(state, item):
    return item * item


# -- satellite: one jobs rule, one error text -------------------------------
class TestUnifiedJobsValidation:
    """Every entry point rejects a bad worker count with the same message."""

    CANONICAL = str(invalid_jobs(-2))

    def test_context_init_uses_canonical_error(self):
        with pytest.raises(ConfigError) as err:
            ExecutionContext(jobs=-2)
        assert str(err.value) == self.CANONICAL

    def test_resolve_uses_canonical_error(self):
        with pytest.raises(ConfigError) as err:
            ExecutionContext.resolve(jobs=-2, env={})
        assert str(err.value) == self.CANONICAL

    def test_parallel_config_uses_canonical_error(self):
        with pytest.raises(ConfigError) as err:
            ParallelConfig(jobs=-2)
        assert str(err.value) == self.CANONICAL

    def test_runtime_rejects_zero_jobs(self):
        # jobs=0 is an input convention, expanded before construction; a
        # constructed context never carries it.
        with pytest.raises(ConfigError):
            ExecutionContext(jobs=0)


# -- tentpole: persistent pool ----------------------------------------------
class TestPoolReuse:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_exactly_one_pool_across_maps(self, backend):
        metrics = get_metrics()
        spawns = metrics.counter("parallel.pool_spawns")
        reuses = metrics.counter("parallel.pool_reuse")
        with ExecutionContext(jobs=2, backend=backend) as context:
            for _ in range(3):
                assert context.map_ordered(_add, [1, 2, 3], state=10) == [
                    11,
                    12,
                    13,
                ]
        assert metrics.counter("parallel.pool_spawns") - spawns == 1
        assert metrics.counter("parallel.pool_reuse") - reuses == 2

    def test_serial_backend_spawns_nothing(self):
        metrics = get_metrics()
        spawns = metrics.counter("parallel.pool_spawns")
        with ExecutionContext(jobs=1, backend="serial") as context:
            context.map_ordered(_add, [1, 2], state=0)
        assert metrics.counter("parallel.pool_spawns") == spawns

    def test_closed_runtime_rejects_work(self):
        runtime = WorkerRuntime(jobs=2, backend="process")
        runtime.close()
        with pytest.raises(ConfigError):
            runtime._ensure_process_pool()

    def test_close_is_idempotent(self):
        context = ExecutionContext(jobs=2, backend="thread")
        context.map_ordered(_add, [1], state=0)
        context.close()
        context.close()


# -- tentpole: pickle-once shared state -------------------------------------
class TestStateShipping:
    def test_registered_state_ships_once(self):
        metrics = get_metrics()
        with ExecutionContext(jobs=2, backend="process") as context:
            handle = context.register({"base": 100})
            ships = metrics.counter("parallel.state_ships")
            first = context.map_ordered(_lookup, [1, 2], state=handle)
            second = context.map_ordered(_lookup, [3, 4], state=handle)
        assert first == [101, 102] and second == [103, 104]
        assert metrics.counter("parallel.state_ships") - ships == 1

    def test_raw_state_auto_registered_by_identity(self):
        metrics = get_metrics()
        state = {"base": 7}
        with ExecutionContext(jobs=2, backend="process") as context:
            ships = metrics.counter("parallel.state_ships")
            context.map_ordered(_lookup, [1], state=state)
            context.map_ordered(_lookup, [2], state=state)
        assert metrics.counter("parallel.state_ships") - ships == 1

    def test_late_registration_broadcasts_without_respawn(self):
        metrics = get_metrics()
        with ExecutionContext(jobs=2, backend="process") as context:
            context.map_ordered(_square, list(range(4)))  # spawns the pool
            spawns = metrics.counter("parallel.pool_spawns")
            handle = context.register({"base": 50})
            result = context.map_ordered(_lookup, [1, 2], state=handle)
        assert result == [51, 52]
        assert metrics.counter("parallel.pool_spawns") == spawns

    def test_handle_resolves_on_serial_and_thread(self):
        for backend, jobs in (("serial", 1), ("thread", 2)):
            with ExecutionContext(jobs=jobs, backend=backend) as context:
                handle = context.register({"base": 5})
                assert context.map_ordered(_lookup, [1], state=handle) == [6]

    def test_unknown_handle_is_a_config_error(self):
        with ExecutionContext(jobs=1, backend="serial") as context:
            with pytest.raises(ConfigError):
                context.map_ordered(_lookup, [1], state=StateHandle("state#999"))


# -- tentpole: crash-requeue must survive pool reuse ------------------------
class TestCrashRequeueOnReusedPool:
    def test_second_map_crash_requeues_and_merges_in_order(self, monkeypatch):
        # The plan is in the environment BEFORE the first map, so the
        # persistent pool's workers inherit it at spawn; the site only
        # matches the second map's label, proving the requeue protocol
        # works on a pool that is being REUSED, not freshly spawned.
        monkeypatch.setenv("REPRO_FAULTS", "worker.crashy=crash:1")
        clear_fault_plan()
        metrics = get_metrics()
        try:
            with ExecutionContext(jobs=2, backend="process") as context:
                clean = context.map_ordered(
                    _square, list(range(8)), label="calm", chunksize=2
                )
                spawns = metrics.counter("parallel.pool_spawns")
                restarts = metrics.counter("parallel.pool_restarts")
                crashed = context.map_ordered(
                    _square, list(range(12)), label="crashy", chunksize=3
                )
        finally:
            monkeypatch.delenv("REPRO_FAULTS", raising=False)
            clear_fault_plan()
        assert clean == [i * i for i in range(8)]
        assert crashed == [i * i for i in range(12)]
        assert metrics.counter("parallel.pool_restarts") > restarts
        # The respawn after the crash is the only extra pool.
        assert metrics.counter("parallel.pool_spawns") - spawns >= 1


# -- tentpole: parallel world generation is bit-identical -------------------
def _world_snapshot(world: World) -> dict:
    return {
        "records": {
            asn: (
                record.operator_id,
                record.cc,
                record.rir,
                record.registered_name,
                record.role,
                tuple(record.prefixes),
                record.eyeballs,
            )
            for asn, record in world.asn_records.items()
        },
        "record_order": list(world.asn_records),
        "operator_asns": world.operator_asns,
        "entities": [
            (entity.entity_id, entity.name, entity.cc, entity.kind)
            for entity in world.ownership._entities.values()
        ],
        "num_edges": world.graph.num_edges(),
        "gateways": world.gateway_asns,
        "tier1": world.tier1_asns,
        "carriers": world.international_carrier_asns,
        "monitors": [(m.monitor_id, m.host_asn) for m in world.monitors],
        "truth": sorted(world.ground_truth_asns()),
    }


class TestParallelWorldGeneration:
    @pytest.fixture(scope="class")
    def serial_snapshot(self):
        return _world_snapshot(WorldGenerator(WorldConfig.tiny()).generate())

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_parallel_worlds_match_serial_exactly(self, backend, serial_snapshot):
        with ExecutionContext(jobs=2, backend=backend) as context:
            world = WorldGenerator(WorldConfig.tiny(), context=context).generate()
        snapshot = _world_snapshot(world)
        for key, expected in serial_snapshot.items():
            assert snapshot[key] == expected, f"{backend} mismatch in {key}"

    def test_generation_metrics_flow(self):
        metrics = get_metrics()
        operators = metrics.counter("world.gen.operators")
        countries = metrics.counter("world.gen.countries")
        WorldGenerator(WorldConfig.tiny()).generate()
        assert metrics.counter("world.gen.operators") > operators
        assert metrics.counter("world.gen.countries") > countries


# -- satellite: the world blob cache ----------------------------------------
def _world_args(seed: int = 20210701, scale: float = 0.12):
    return argparse.Namespace(seed=seed, scale=scale)


class TestWorldBlobCache:
    def test_warm_load_skips_generation(self, tmp_path):
        cache = ResultCache(tmp_path)
        metrics = get_metrics()
        cold = _make_world(_world_args(), cache=cache)
        written = metrics.counter("cache.bytes_written")
        assert written > 0
        generated = metrics.counter("world.gen.countries")
        warm = _make_world(_world_args(), cache=cache)
        # No generation happened on the warm path...
        assert metrics.counter("world.gen.countries") == generated
        assert metrics.counter("cache.bytes_read") > 0
        # ...and the loaded world is equivalent to the generated one.
        assert _world_snapshot(warm) == _world_snapshot(cold)

    def test_fingerprint_separates_configs(self, tmp_path):
        cache = ResultCache(tmp_path)
        _make_world(_world_args(seed=1), cache=cache)
        key_other = _world_cache_key(WorldConfig(seed=2, scale=0.12))
        assert cache.get_blob("world", key_other) is None
        assert (
            cache.get_blob("world", _world_cache_key(WorldConfig(seed=1, scale=0.12)))
            is not None
        )

    def test_corrupt_blob_is_evicted_and_regenerated(self, tmp_path):
        cache = ResultCache(tmp_path)
        _make_world(_world_args(), cache=cache)
        key = _world_cache_key(WorldConfig(seed=20210701, scale=0.12))
        blob_path = cache._blob_path("world", key)
        blob_path.write_bytes(b"RPB1" + b"\x00" * 40)
        metrics = get_metrics()
        corrupt = metrics.counter("cache.corrupt")
        world = _make_world(_world_args(), cache=cache)
        assert isinstance(world, World)
        assert metrics.counter("cache.corrupt") > corrupt
        # The regenerated world was re-cached over the corrupt entry.
        assert cache.get_blob("world", key) is not None

    def test_unpicklable_payload_is_evicted(self, tmp_path):
        # A well-formed blob whose payload is not a pickled World (e.g.
        # written by an older code revision) must be evicted, not crash.
        cache = ResultCache(tmp_path)
        key = _world_cache_key(WorldConfig(seed=20210701, scale=0.12))
        cache.put_blob("world", key, pickle.dumps({"not": "a world"}))
        world = _make_world(_world_args(), cache=cache)
        assert isinstance(world, World)

    def test_blob_roundtrip_preserves_bytes(self, tmp_path):
        cache = ResultCache(tmp_path)
        payload = pickle.dumps(list(range(100)))
        cache.put_blob("world", "k" * 8, payload)
        assert cache.get_blob("world", "k" * 8) == payload


class TestContentDigest:
    """Derived-cache keys must track the generated world, not the config:
    an entry written by a different code revision (same config, different
    world) must never be served stale."""

    def test_same_world_same_digest(self, tiny_world):
        rebuilt = WorldGenerator(tiny_world.config).generate()
        assert rebuilt.content_digest() == tiny_world.content_digest()

    def test_digest_survives_pickling(self, tiny_world):
        clone = pickle.loads(pickle.dumps(tiny_world, protocol=pickle.HIGHEST_PROTOCOL))
        assert clone.content_digest() == tiny_world.content_digest()

    def test_digest_tracks_world_content(self, tiny_world):
        digest = tiny_world.content_digest()
        record = next(iter(tiny_world.asn_records.values()))
        original = record.registered_name
        record.registered_name = original + " (Renamed)"
        try:
            assert tiny_world.content_digest() != digest
        finally:
            record.registered_name = original
        assert tiny_world.content_digest() == digest

    def test_pipeline_fingerprint_includes_content(self, tiny_world):
        from repro.core import PipelineInputs

        fingerprint = PipelineInputs.from_world(tiny_world).fingerprint
        record = next(iter(tiny_world.asn_records.values()))
        original = record.registered_name
        record.registered_name = original + " (Renamed)"
        try:
            changed = PipelineInputs.from_world(tiny_world).fingerprint
        finally:
            record.registered_name = original
        assert changed != fingerprint
