"""Tests for BGP monitor placement and route collection."""

import random

import pytest

from repro.errors import TopologyError
from repro.net.monitors import Monitor, MonitorSet, RouteCollector
from repro.net.topology import ASGraph


def small_graph():
    g = ASGraph()
    g.add_p2p(1, 2)
    g.add_c2p(10, 1)
    g.add_c2p(100, 10)
    return g


class TestMonitorSet:
    def test_weights_inverse_of_colocation(self):
        monitors = MonitorSet([Monitor("a", 1), Monitor("b", 1), Monitor("c", 2)])
        assert monitors.weight(Monitor("a", 1)) == 0.5
        assert monitors.weight(Monitor("b", 1)) == 0.5
        assert monitors.weight(Monitor("c", 2)) == 1.0

    def test_len_and_hosts(self):
        monitors = MonitorSet([Monitor("a", 1), Monitor("b", 2)])
        assert len(monitors) == 2
        assert monitors.host_asns == [1, 2]

    def test_place_respects_count(self):
        g = small_graph()
        monitors = MonitorSet.place(g, 5, random.Random(1))
        assert len(monitors) == 5
        for monitor in monitors:
            assert monitor.host_asn in g

    def test_place_degree_bias(self):
        g = small_graph()
        rng = random.Random(7)
        monitors = MonitorSet.place(g, 200, rng, bias_to_degree=True)
        hosts = monitors.host_asns
        # AS 100 is a stub with degree 1; the well-connected ASes get most
        # of the vantage points.
        assert hosts.count(100) < hosts.count(1) + hosts.count(10)

    def test_place_empty_graph(self):
        with pytest.raises(TopologyError):
            MonitorSet.place(ASGraph(), 3, random.Random(1))


class TestRouteCollector:
    def test_path_reaches_origin(self):
        g = small_graph()
        collector = RouteCollector(g, MonitorSet([Monitor("m", 2)]))
        path = collector.path(Monitor("m", 2), 100)
        assert path is not None
        assert path[0] == 2 and path[-1] == 100

    def test_monitor_inside_origin(self):
        g = small_graph()
        collector = RouteCollector(g, MonitorSet([Monitor("m", 100)]))
        assert collector.path(Monitor("m", 100), 100) == (100,)

    def test_paths_to_all_monitors(self):
        g = small_graph()
        monitors = MonitorSet([Monitor("m0", 2), Monitor("m1", 1)])
        collector = RouteCollector(g, monitors)
        paths = collector.paths_to(100)
        assert set(paths) == {"m0", "m1"}

    def test_tree_cache_grows_lazily(self):
        g = small_graph()
        collector = RouteCollector(g, MonitorSet([Monitor("m", 2)]))
        assert collector.trees_computed() == 0
        collector.path(Monitor("m", 2), 100)
        assert collector.trees_computed() == 1
        collector.path(Monitor("m", 2), 100)
        assert collector.trees_computed() == 1
