"""Tests for the observability layer (spans, metrics, event sinks)."""

import io
import json

import pytest

from repro.obs import (
    Metrics,
    NullSink,
    Span,
    StageTimer,
    TextSink,
    configure,
    configure_from_env,
    current_span,
    get_metrics,
    get_sink,
    reset_metrics,
    set_sink,
    span,
)


@pytest.fixture(autouse=True)
def _clean_obs_state():
    """Every test starts and ends with a no-op sink and empty metrics."""
    set_sink(None)
    reset_metrics()
    yield
    set_sink(None)
    reset_metrics()


class TestMetrics:
    def test_counter_accumulates(self):
        metrics = Metrics()
        metrics.incr("cands")
        metrics.incr("cands", 4)
        assert metrics.counter("cands") == 5
        assert metrics.counter("never") == 0

    def test_gauge_last_write_wins(self):
        metrics = Metrics()
        metrics.gauge("scale", 0.3)
        metrics.gauge("scale", 1.0)
        assert metrics.gauge_value("scale") == 1.0

    def test_timing_summary_percentiles(self):
        metrics = Metrics()
        for value in range(1, 101):  # 0.01 .. 1.00
            metrics.observe("stage", value / 100.0)
        summary = metrics.timing_summary("stage")
        assert summary["count"] == 100
        assert summary["p50_s"] == pytest.approx(0.50)
        assert summary["p95_s"] == pytest.approx(0.95)
        assert summary["max_s"] == pytest.approx(1.00)
        assert summary["total_s"] == pytest.approx(50.5)
        assert metrics.timing_summary("unseen") is None

    def test_snapshot_is_json_serializable(self):
        metrics = Metrics()
        metrics.incr("a", 2)
        metrics.gauge("b", 3.5)
        metrics.observe("c", 0.1)
        snap = json.loads(json.dumps(metrics.snapshot()))
        assert snap["counters"] == {"a": 2}
        assert snap["gauges"] == {"b": 3.5}
        assert snap["timings"]["c"]["count"] == 1

    def test_reset(self):
        metrics = Metrics()
        metrics.incr("a")
        metrics.observe("b", 1.0)
        metrics.reset()
        assert metrics.snapshot() == {
            "counters": {},
            "gauges": {},
            "timings": {},
        }

    def test_global_registry_identity(self):
        get_metrics().incr("x")
        assert get_metrics().counter("x") == 1
        reset_metrics()
        assert get_metrics().counter("x") == 0


class TestSpan:
    def test_records_wall_time_into_metrics(self):
        with span("stage_a"):
            pass
        summary = get_metrics().timing_summary("stage_a")
        assert summary is not None and summary["count"] == 1
        assert summary["total_s"] >= 0.0

    def test_nesting_paths_and_depth(self):
        with span("outer") as outer:
            assert current_span() is outer
            with span("inner") as inner:
                assert inner.path == "outer.inner"
                assert inner.depth == 1
                with span("leaf") as leaf:
                    assert leaf.path == "outer.inner.leaf"
                    assert leaf.depth == 2
            assert current_span() is outer
        assert current_span() is None
        assert get_metrics().timing_summary("outer.inner.leaf") is not None

    def test_counter_aggregation_into_registry(self):
        with span("harvest") as sp:
            sp.incr("asns", 3)
            sp.incr("asns", 2)
            sp.incr("companies")
        assert sp.counters == {"asns": 5, "companies": 1}
        assert get_metrics().counter("harvest.asns") == 5
        assert get_metrics().counter("harvest.companies") == 1

    def test_sibling_spans_share_counter_names(self):
        for _ in range(2):
            with span("batch") as sp:
                sp.incr("items", 10)
        assert get_metrics().counter("batch.items") == 20
        assert get_metrics().timing_summary("batch")["count"] == 2

    def test_stagetimer_alias(self):
        assert StageTimer is Span

    def test_exception_still_pops_and_records(self):
        with pytest.raises(ValueError):
            with span("boom"):
                raise ValueError("x")
        assert current_span() is None
        assert get_metrics().timing_summary("boom")["count"] == 1


class TestSinks:
    def test_noop_by_default(self):
        sink = get_sink()
        assert isinstance(sink, NullSink)
        assert not sink.enabled
        # Spans run without emitting anywhere; only metrics are touched.
        with span("silent") as sp:
            sp.incr("n")
        assert get_metrics().counter("silent.n") == 1

    def test_text_sink_renders_span_line(self):
        stream = io.StringIO()
        set_sink(TextSink(stream))
        with span("stage") as sp:
            sp.incr("asns", 7)
        line = stream.getvalue()
        assert "[trace] stage:" in line
        assert "ms" in line
        assert "asns=7" in line

    def test_text_sink_indents_nested_spans(self):
        stream = io.StringIO()
        set_sink(TextSink(stream))
        with span("outer"):
            with span("inner"):
                pass
        lines = stream.getvalue().splitlines()
        assert lines[0].startswith("[trace]   outer.inner")
        assert lines[1].startswith("[trace] outer")

    def test_jsonlines_sink_emits_valid_json(self, tmp_path):
        path = tmp_path / "events.jsonl"
        configure(log_json=str(path))
        with span("stage") as sp:
            sp.incr("k", 2)
            sp.set("cc", "NO")
        with span("other"):
            pass
        configure()  # close the file sink
        lines = path.read_text(encoding="utf-8").splitlines()
        events = [json.loads(line) for line in lines]
        assert len(events) == 2
        assert events[0]["event"] == "span"
        assert events[0]["name"] == "stage"
        assert events[0]["counters"] == {"k": 2}
        assert events[0]["fields"] == {"cc": "NO"}
        assert events[0]["wall_s"] >= 0.0
        assert events[1]["name"] == "other"

    def test_configure_both_sinks(self, tmp_path):
        stream = io.StringIO()
        path = tmp_path / "events.jsonl"
        configure(trace=True, log_json=str(path), stream=stream)
        with span("stage"):
            pass
        configure()
        assert "[trace] stage" in stream.getvalue()
        assert json.loads(path.read_text().splitlines()[0])["name"] == "stage"

    def test_configure_from_env(self, tmp_path):
        path = tmp_path / "env.jsonl"
        sink = configure_from_env({"REPRO_TRACE": "0", "REPRO_LOG_JSON": str(path)})
        assert sink.enabled
        with span("via_env"):
            pass
        configure()
        assert json.loads(path.read_text().splitlines()[0])["name"] == "via_env"
        # Nothing requested -> sink untouched (still the no-op default).
        assert not configure_from_env({}).enabled

    def test_span_error_flag(self):
        stream = io.StringIO()
        set_sink(TextSink(stream))
        events = []
        class Capture(NullSink):
            enabled = True
            def emit(self, event):
                events.append(event)
        set_sink(Capture())
        with pytest.raises(RuntimeError):
            with span("fails"):
                raise RuntimeError("nope")
        assert events[0]["error"] == "RuntimeError"
