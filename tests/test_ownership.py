"""Tests for the ownership graph and state-control assessment.

Each archetype from the paper gets a hand-built fixture: direct majority,
aggregated fund control (Telekom Malaysia), holding chains, joint ventures,
and minority stakes.
"""

import pytest

from repro.errors import OwnershipError
from repro.world.entities import (
    Entity,
    EntityKind,
    Operator,
    OperatorRole,
    OperatorScope,
    OwnershipStake,
)
from repro.world.ownership import CONTROL_THRESHOLD, OwnershipGraph


def gov(cc):
    return Entity(f"gov-{cc}", EntityKind.GOVERNMENT, f"Government of {cc}", cc)


def operator(entity_id, cc, name=None):
    return Operator(
        entity_id=entity_id,
        kind=EntityKind.OPERATOR,
        name=name or f"{entity_id} Telecom",
        cc=cc,
        role=OperatorRole.INCUMBENT,
        scope=OperatorScope.NATIONAL,
    )


class TestGraphBasics:
    def test_duplicate_entity_rejected(self):
        g = OwnershipGraph()
        g.add_entity(gov("NO"))
        with pytest.raises(OwnershipError):
            g.add_entity(gov("NO"))

    def test_stake_unknown_entity(self):
        g = OwnershipGraph()
        g.add_entity(gov("NO"))
        with pytest.raises(OwnershipError):
            g.add_stake(OwnershipStake("gov-NO", "nobody", 0.5))

    def test_equity_cannot_exceed_100(self):
        g = OwnershipGraph()
        g.add_entity(gov("NO"))
        g.add_entity(operator("op", "NO"))
        g.add_stake(OwnershipStake("gov-NO", "op", 0.7))
        with pytest.raises(OwnershipError):
            g.add_stake(OwnershipStake("gov-NO", "op", 0.5))

    def test_self_ownership_rejected(self):
        with pytest.raises(OwnershipError):
            OwnershipStake("x", "x", 0.5)

    def test_invalid_fraction(self):
        with pytest.raises(OwnershipError):
            OwnershipStake("a", "b", 0.0)
        with pytest.raises(OwnershipError):
            OwnershipStake("a", "b", 1.5)


class TestDirectControl:
    def make(self, fraction):
        g = OwnershipGraph()
        g.add_entity(gov("NO"))
        g.add_entity(operator("telenor", "NO", "Telenor Norge AS"))
        g.add_stake(OwnershipStake("gov-NO", "telenor", fraction))
        return g

    def test_majority_controls(self):
        g = self.make(0.547)
        verdict = g.assess("telenor")
        assert verdict.is_state_controlled
        assert verdict.controlling_cc == "NO"
        assert verdict.state_equity["NO"] == pytest.approx(0.547)

    def test_exact_threshold_controls(self):
        g = self.make(CONTROL_THRESHOLD)
        assert g.assess("telenor").is_state_controlled

    def test_minority_does_not_control(self):
        g = self.make(0.31)
        verdict = g.assess("telenor")
        assert not verdict.is_state_controlled
        assert verdict.minority_stakes() == {"NO": pytest.approx(0.31)}


class TestFundAggregation:
    """The Telekom Malaysia pattern: three funds, none majority alone."""

    def make(self):
        g = OwnershipGraph()
        g.add_entity(gov("MY"))
        g.add_entity(operator("tm", "MY", "Telekom Malaysia Berhad"))
        for i, share in enumerate((0.26, 0.18, 0.12)):
            fund = Entity(f"fund{i}", EntityKind.STATE_FUND, f"Fund {i}", "MY")
            g.add_entity(fund)
            g.add_stake(OwnershipStake("gov-MY", f"fund{i}", 0.9))
            g.add_stake(OwnershipStake(f"fund{i}", "tm", share))
        return g

    def test_aggregate_confers_control(self):
        verdict = self.make().assess("tm")
        assert verdict.is_state_controlled
        assert verdict.state_equity["MY"] == pytest.approx(0.56)

    def test_uncontrolled_fund_does_not_count(self):
        g = self.make()
        # A private fund holding 0.2 of a different op: no state credit.
        g.add_entity(Entity("priv", EntityKind.PRIVATE, "PrivCo", "MY"))
        g.add_entity(operator("other", "MY"))
        g.add_stake(OwnershipStake("priv", "other", 0.6))
        assert not g.assess("other").is_state_controlled


class TestHoldingChain:
    def test_chain_control(self):
        g = OwnershipGraph()
        g.add_entity(gov("DZ"))
        holding = Entity("hold", EntityKind.HOLDING, "DZ Holding", "DZ")
        g.add_entity(holding)
        g.add_entity(operator("op", "DZ"))
        g.add_stake(OwnershipStake("gov-DZ", "hold", 0.8))
        g.add_stake(OwnershipStake("hold", "op", 0.6))
        verdict = g.assess("op")
        assert verdict.controlling_cc == "DZ"
        # Chain semantics: the holding's full stake counts.
        assert verdict.state_equity["DZ"] == pytest.approx(0.6)

    def test_uncontrolled_holding_breaks_chain(self):
        g = OwnershipGraph()
        g.add_entity(gov("DZ"))
        g.add_entity(Entity("hold", EntityKind.HOLDING, "H", "DZ"))
        g.add_entity(operator("op", "DZ"))
        g.add_stake(OwnershipStake("gov-DZ", "hold", 0.4))  # minority of holding
        g.add_stake(OwnershipStake("hold", "op", 0.9))
        assert not g.assess("op").is_state_controlled


class TestJointVenture:
    def make(self):
        g = OwnershipGraph()
        g.add_entity(gov("PK"))
        g.add_entity(gov("AE"))
        g.add_entity(operator("ptcl", "PK", "PTCL"))
        g.add_stake(OwnershipStake("gov-PK", "ptcl", 0.62))
        g.add_stake(OwnershipStake("gov-AE", "ptcl", 0.26))
        return g

    def test_majority_government_controls(self):
        verdict = self.make().assess("ptcl")
        assert verdict.controlling_cc == "PK"

    def test_minor_partner_recorded(self):
        verdict = self.make().assess("ptcl")
        assert verdict.state_equity["AE"] == pytest.approx(0.26)
        assert verdict.minority_stakes() == {"AE": pytest.approx(0.26)}


class TestForeignSubsidiary:
    def test_control_crosses_borders(self):
        g = OwnershipGraph()
        g.add_entity(gov("QA"))
        g.add_entity(operator("ooredoo", "QA", "Ooredoo"))
        g.add_entity(operator("ooredoo-tn", "TN", "Ooredoo Tunisia"))
        g.add_stake(OwnershipStake("gov-QA", "ooredoo", 0.68))
        g.add_stake(OwnershipStake("ooredoo", "ooredoo-tn", 0.9))
        verdict = g.assess("ooredoo-tn")
        assert verdict.controlling_cc == "QA"

    def test_conglomerate_root(self):
        g = OwnershipGraph()
        g.add_entity(gov("QA"))
        g.add_entity(operator("ooredoo", "QA", "Ooredoo"))
        g.add_entity(operator("sub", "TN", "Ooredoo Tunisia"))
        g.add_stake(OwnershipStake("gov-QA", "ooredoo", 0.68))
        g.add_stake(OwnershipStake("ooredoo", "sub", 0.9))
        assert g.conglomerate_root("sub").entity_id == "ooredoo"
        assert g.conglomerate_root("ooredoo").entity_id == "ooredoo"

    def test_majority_subsidiaries(self):
        g = OwnershipGraph()
        g.add_entity(gov("QA"))
        g.add_entity(operator("parent", "QA"))
        g.add_entity(operator("sub", "TN"))
        g.add_stake(OwnershipStake("parent", "sub", 0.55))
        subs = g.majority_subsidiaries("parent")
        assert [s.entity_id for s in subs] == ["sub"]


class TestSubnational:
    def test_subnational_owner_is_not_state_control(self):
        g = OwnershipGraph()
        g.add_entity(gov("CO"))
        province = Entity("prov", EntityKind.SUBNATIONAL, "County", "CO")
        g.add_entity(province)
        g.add_entity(operator("op", "CO"))
        g.add_stake(OwnershipStake("prov", "op", 0.9))
        assert not g.assess("op").is_state_controlled


class TestWorldAssessments:
    def test_every_truth_operator_controlled(self, tiny_world):
        assessments = tiny_world.ownership.assess_all()
        for gto in tiny_world.ground_truth():
            verdict = assessments[gto.operator.entity_id]
            assert verdict.is_state_controlled
            assert verdict.controlling_cc == gto.controlling_cc

    def test_validate_passes(self, tiny_world):
        tiny_world.ownership.validate()
