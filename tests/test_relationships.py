"""Tests for AS-relationship inference from observed paths."""


from repro.net.bgp import propagate_routes
from repro.net.relationships import infer_relationships
from repro.net.topology import ASGraph, Relationship


def observed_paths(graph, origins, observers):
    paths = []
    for origin in origins:
        tree = propagate_routes(graph, origin)
        for observer in observers:
            path = tree.path_from(observer)
            if path and len(path) >= 2:
                paths.append(path)
    return paths


def star_graph():
    """Provider 1 with customers 10, 11, 12; 1 peers with 2 (customers 20, 21)."""
    g = ASGraph()
    for c in (10, 11, 12):
        g.add_c2p(c, 1)
    for c in (20, 21):
        g.add_c2p(c, 2)
    g.add_p2p(1, 2)
    return g


class TestInference:
    def test_simple_chain(self):
        g = ASGraph()
        g.add_c2p(2, 1)
        g.add_c2p(3, 2)
        paths = observed_paths(g, origins=[3], observers=[1])
        inferred = infer_relationships(paths)
        assert inferred.relationship(3, 2) is Relationship.PROVIDER
        assert inferred.relationship(2, 3) is Relationship.CUSTOMER

    def test_star_recovers_most_edges(self):
        g = star_graph()
        paths = observed_paths(g, origins=[10, 11, 12, 20, 21], observers=g.asns)
        inferred = infer_relationships(paths)
        assert inferred.agreement_with(g) > 0.7

    def test_peering_at_top_detected(self):
        g = star_graph()
        # Paths crossing the 1~2 peering from both directions.
        paths = observed_paths(g, origins=[10, 20], observers=[21, 11])
        inferred = infer_relationships(paths)
        assert inferred.relationship(1, 2) in (
            Relationship.PEER, Relationship.CUSTOMER, Relationship.PROVIDER
        )
        # The customer edges below the top are never misread as peers.
        assert inferred.relationship(10, 1) is Relationship.PROVIDER

    def test_unknown_edge_is_none(self):
        inferred = infer_relationships([(1, 2)])
        assert inferred.relationship(5, 6) is None

    def test_cone_from_inferred_edges(self):
        # A star provider is unambiguous for degree-anchored inference: the
        # hub's observed degree dominates, so its customer edges all point
        # the right way and the inferred cone matches the true cone.
        g = star_graph()
        paths = observed_paths(g, origins=[10, 11, 12, 20, 21], observers=g.asns)
        inferred = infer_relationships(paths)
        assert inferred.customer_cone_size(1) >= 4
        assert inferred.customer_cone_size(10) == 1

    def test_empty_paths(self):
        inferred = infer_relationships([])
        assert inferred.edge_count() == 0
        assert inferred.agreement_with(ASGraph()) == 0.0

    def test_world_scale_agreement(self, tiny_world):
        """On monitor-observed paths of a generated world the inference
        recovers well over half of the relationship types.  (The real
        pipelines see hundreds of vantage points; with the tiny world's
        handful of monitors the degree anchor is often starved, so this is
        a floor, not the production fidelity.)"""
        collector = tiny_world.collector
        origins = [gto.asns[0] for gto in tiny_world.ground_truth()[:40] if gto.asns]
        paths = []
        for origin in origins:
            paths.extend(collector.paths_to(origin).values())
        inferred = infer_relationships(paths)
        assert inferred.edge_count() > 50
        assert inferred.agreement_with(tiny_world.graph) > 0.55
