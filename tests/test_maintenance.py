"""Tests for the re-verification planner (§9 maintenance extension)."""

import pytest

from repro.core.maintenance import plan_reverification


class TestPlan:
    def test_covers_every_organization(self, pipeline_result):
        plan = plan_reverification(pipeline_result)
        assert len(plan) == len(pipeline_result.dataset)

    def test_sorted_by_fragility(self, pipeline_result):
        plan = plan_reverification(pipeline_result)
        scores = [item.fragility for item in plan]
        assert scores == sorted(scores, reverse=True)

    def test_fragility_bounded(self, pipeline_result):
        for item in plan_reverification(pipeline_result):
            assert 0.0 <= item.fragility <= 1.0

    def test_limit(self, pipeline_result):
        plan = plan_reverification(pipeline_result, limit=5)
        assert len(plan) == 5

    def test_risky_items_have_reasons(self, pipeline_result):
        plan = plan_reverification(pipeline_result)
        for item in plan[:10]:
            assert item.reasons, item.org_name

    def test_threshold_hugging_orgs_rank_high(self, pipeline_result):
        """Organizations whose equity is within 5 pts of 50 % must appear
        in the top half of the plan."""
        plan = plan_reverification(pipeline_result)
        order = {item.org_id: rank for rank, item in enumerate(plan)}
        verdicts = pipeline_result.verdicts
        from repro.text.normalize import normalize_name

        marginal = [
            org.org_id
            for org in pipeline_result.dataset.organizations()
            if (v := verdicts.get(normalize_name(org.org_name))) is not None
            and v.total_equity is not None
            and v.total_equity - 0.5 < 0.05
        ]
        if not marginal:
            pytest.skip("no threshold-hugging organizations in this run")
        midpoint = len(plan) / 2
        in_top_half = sum(1 for org_id in marginal if order[org_id] < midpoint)
        assert in_top_half / len(marginal) > 0.7
