"""Tests for the re-verification planner (§9 maintenance extension)."""

import pytest

from repro.core.maintenance import plan_reverification


class TestPlan:
    def test_covers_every_organization(self, pipeline_result):
        plan = plan_reverification(pipeline_result)
        assert len(plan) == len(pipeline_result.dataset)

    def test_sorted_by_fragility(self, pipeline_result):
        plan = plan_reverification(pipeline_result)
        scores = [item.fragility for item in plan]
        assert scores == sorted(scores, reverse=True)

    def test_fragility_bounded(self, pipeline_result):
        for item in plan_reverification(pipeline_result):
            assert 0.0 <= item.fragility <= 1.0

    def test_limit(self, pipeline_result):
        plan = plan_reverification(pipeline_result, limit=5)
        assert len(plan) == 5

    def test_risky_items_have_reasons(self, pipeline_result):
        plan = plan_reverification(pipeline_result)
        for item in plan[:10]:
            assert item.reasons, item.org_name

    def test_threshold_hugging_orgs_rank_high(self, pipeline_result):
        """Organizations whose equity is within 5 pts of 50 % must appear
        in the top half of the plan."""
        plan = plan_reverification(pipeline_result)
        order = {item.org_id: rank for rank, item in enumerate(plan)}
        verdicts = pipeline_result.verdicts
        from repro.text.normalize import normalize_name

        marginal = [
            org.org_id
            for org in pipeline_result.dataset.organizations()
            if (v := verdicts.get(normalize_name(org.org_name))) is not None
            and v.total_equity is not None
            and v.total_equity - 0.5 < 0.05
        ]
        if not marginal:
            pytest.skip("no threshold-hugging organizations in this run")
        midpoint = len(plan) / 2
        in_top_half = sum(1 for org_id in marginal if order[org_id] < midpoint)
        assert in_top_half / len(marginal) > 0.7


class TestEquityMarginBuckets:
    """The risk lattice of ``_equity_margin_risk`` at its bucket edges."""

    def test_missing_percentage(self):
        from repro.core.maintenance import _equity_margin_risk

        risk, reason = _equity_margin_risk(None)
        assert risk == 0.35
        assert "without a percentage" in reason

    def test_threshold_hugging(self):
        from repro.core.maintenance import _equity_margin_risk

        risk, reason = _equity_margin_risk(0.52)
        assert risk == 0.9
        assert "within 5 pts" in reason

    def test_moderate_margin(self):
        from repro.core.maintenance import _equity_margin_risk

        risk, _ = _equity_margin_risk(0.60)
        assert risk == 0.5

    def test_comfortable_margin(self):
        from repro.core.maintenance import _equity_margin_risk

        risk, reason = _equity_margin_risk(0.80)
        assert risk == 0.1
        assert reason is None

    def test_bucket_boundaries(self):
        from repro.core.maintenance import _equity_margin_risk

        # margin == 0.05 falls out of the hot bucket, == 0.15 out of the
        # moderate one (strict < comparisons).
        assert _equity_margin_risk(0.55)[0] == 0.5
        assert _equity_margin_risk(0.65)[0] == 0.1


class TestRunMaintenance:
    def test_two_month_walk_writes_snapshots_and_manifest(self, tmp_path):
        import json

        from repro.config import WorldConfig
        from repro.core.maintenance import run_maintenance
        from repro.world.generator import WorldGenerator

        world = WorldGenerator(WorldConfig.tiny(seed=77)).generate()
        out = tmp_path / "maint"
        report = run_maintenance(world, out_dir=out, months=2)
        assert [rec.label for rec in report.snapshots] == ["2021-07", "2021-08"]
        manifest = json.loads((out / "MAINTAIN.json").read_text())
        assert manifest["format_version"] == 1
        assert len(manifest["snapshots"]) == 2
        first, second = manifest["snapshots"]
        # The baseline snapshot carries no events; both carry provenance.
        assert first["events"] == []
        for entry in (first, second):
            assert (out / entry["dataset"]).exists()
            prov = entry["provenance"]
            assert "reused_fraction" in prov
            assert "wall_s" in prov
        # Warm snapshot reuses most of the work.
        assert second["provenance"]["reused_fraction"] > 0.5
        # The report table renders one line per snapshot plus a header.
        assert len(report.as_text().splitlines()) == 3

    def test_cold_mode_records_no_reuse(self, tmp_path):
        from repro.config import WorldConfig
        from repro.core.maintenance import run_maintenance
        from repro.world.generator import WorldGenerator

        world = WorldGenerator(WorldConfig.tiny(seed=77)).generate()
        report = run_maintenance(world, out_dir=tmp_path / "cold", months=2, cold=True)
        assert all(rec.provenance["mode"] == "cold" for rec in report.snapshots)
        assert report.reused_fractions() == [0.0, 0.0]

    def test_publish_installs_latest_snapshot(self, tmp_path):
        from repro.config import WorldConfig
        from repro.core.maintenance import run_maintenance
        from repro.world.generator import WorldGenerator

        world = WorldGenerator(WorldConfig.tiny(seed=77)).generate()
        target = tmp_path / "live" / "dataset.json"
        report = run_maintenance(
            world, out_dir=tmp_path / "maint", months=1, publish=target
        )
        assert report.published == str(target)
        assert target.exists()
        from pathlib import Path

        last = report.snapshots[-1]
        assert target.read_bytes() == Path(last.dataset_path).read_bytes()
        if last.cti_path:
            sidecar = tmp_path / "live" / "dataset.json.cti.json"
            assert sidecar.exists()

    def test_zero_months_rejected(self, tmp_path):
        import pytest as _pytest

        from repro.config import WorldConfig
        from repro.core.maintenance import run_maintenance
        from repro.errors import PipelineError
        from repro.world.generator import WorldGenerator

        world = WorldGenerator(WorldConfig.tiny(seed=77)).generate()
        with _pytest.raises(PipelineError):
            run_maintenance(world, out_dir=tmp_path / "x", months=0)
