"""Tests for stage-1 candidate harvesting."""

import pytest

from repro.config import PipelineConfig
from repro.core.candidates import harvest_candidates
from repro.sources.base import SOURCE_CODES, InputSource


class TestInputSourceEnum:
    def test_paper_codes(self):
        assert InputSource.GEOLOCATION.value == "G"
        assert InputSource.EYEBALLS.value == "E"
        assert InputSource.CTI.value == "C"
        assert InputSource.WIKIPEDIA_FH.value == "W"
        assert InputSource.ORBIS.value == "O"

    def test_technical_partition(self):
        technical = {s for s in InputSource if s.is_technical}
        assert technical == {
            InputSource.GEOLOCATION, InputSource.EYEBALLS, InputSource.CTI
        }

    def test_code_lookup(self):
        assert SOURCE_CODES["G"] is InputSource.GEOLOCATION


@pytest.fixture(scope="module")
def candidates(small_inputs):
    return harvest_candidates(
        table=small_inputs.prefix2as,
        geolocation=small_inputs.geolocation,
        eyeballs=small_inputs.eyeballs,
        cti_selection=None,
        orbis_companies=[
            (r.company_name, r.cc) for r in small_inputs.orbis.state_owned_telcos()
        ],
        wiki_fh_companies=small_inputs.wikipedia.state_owned_company_names(),
    )


class TestThresholdSemantics:
    def test_geolocation_share_threshold(self, candidates, small_inputs):
        geo = small_inputs.geolocation
        triplets = geo.country_asn_addresses(small_inputs.prefix2as)
        totals = {}
        for (_, cc), count in triplets.items():
            totals[cc] = totals.get(cc, 0) + count
        for asn in candidates.asns_from(InputSource.GEOLOCATION):
            cc, share = candidates.detail[(asn, InputSource.GEOLOCATION)]
            assert share >= 0.05
            assert triplets[(asn, cc)] / totals[cc] == pytest.approx(share)

    def test_eyeball_share_threshold(self, candidates):
        for asn in candidates.asns_from(InputSource.EYEBALLS):
            _cc, share = candidates.detail[(asn, InputSource.EYEBALLS)]
            assert share >= 0.05

    def test_higher_threshold_fewer_candidates(self, small_inputs, candidates):
        strict = harvest_candidates(
            table=small_inputs.prefix2as,
            geolocation=small_inputs.geolocation,
            eyeballs=small_inputs.eyeballs,
            cti_selection=None,
            orbis_companies=[],
            wiki_fh_companies=[],
            config=PipelineConfig(candidate_share_threshold=0.2),
        )
        assert len(strict.asn_sources) < len(candidates.asn_sources)
        assert strict.asns() <= candidates.asns() | strict.asns()


class TestStats:
    def test_union_intersection_consistency(self, candidates):
        stats = candidates.stats
        geo = stats["geolocation_asns"]
        eye = stats["eyeball_asns"]
        union = stats["geo_eyeball_union"]
        inter = stats["geo_eyeball_intersection"]
        assert union == geo + eye - inter
        assert stats["total_asns"] >= union

    def test_intersection_substantial(self, candidates):
        # Big access networks appear in both technical sources (paper: 466
        # of 793/716).
        stats = candidates.stats
        assert stats["geo_eyeball_intersection"] > 0.3 * stats["eyeball_asns"]


class TestCompanyCandidates:
    def test_company_sources_tagged(self, candidates):
        sources = {c.source for c in candidates.companies}
        assert sources == {InputSource.ORBIS, InputSource.WIKIPEDIA_FH}

    def test_deduplicated(self, candidates):
        keys = [(c.name.lower(), c.cc, c.source) for c in candidates.companies]
        assert len(keys) == len(set(keys))
