"""Tests for the per-country market planner."""

import random


from repro.config import WorldConfig
from repro.world.countries import country_by_cc
from repro.world.entities import OperatorRole
from repro.world.markets import plan_country


def plan(cc, seed=11, config=None):
    return plan_country(country_by_cc(cc), config or WorldConfig(), random.Random(seed))


class TestStructure:
    def test_incumbent_first(self):
        p = plan("KE")
        assert p.operators[0].role is OperatorRole.INCUMBENT

    def test_shares_bounded(self):
        for cc in ("KE", "NO", "BR", "US", "CN"):
            p = plan(cc)
            total = sum(op.addr_share for op in p.operators)
            assert 0.0 < total <= 1.05
            eyeball_total = sum(op.eyeball_share for op in p.operators)
            assert 0.0 < eyeball_total <= 1.0 + 1e-9

    def test_deterministic(self):
        a, b = plan("KE", seed=3), plan("KE", seed=3)
        assert [(o.role, o.archetype, o.addr_share) for o in a.operators] == [
            (o.role, o.archetype, o.addr_share) for o in b.operators
        ]

    def test_tail_count_positive(self):
        assert plan("KE").tail_as_count >= 1


class TestPolicyKnobs:
    def test_us_never_state(self):
        for seed in range(15):
            p = plan("US", seed=seed)
            assert not p.state_owned_plans

    def test_forced_share_applies(self):
        config = WorldConfig()
        p = plan("CN", config=config)
        incumbent = p.operators[0]
        assert incumbent.is_state_owned
        assert incumbent.addr_share >= 0.9

    def test_forced_cable_country(self):
        p = plan("AO")
        cable = [o for o in p.operators if o.role is OperatorRole.CABLE]
        assert cable and cable[0].is_state_owned
        assert p.transit_dominant

    def test_arin_damping(self):
        config = WorldConfig()
        state_count = 0
        for seed in range(40):
            p = plan("JM", seed=seed, config=config)
            if p.operators[0].is_state_owned:
                state_count += 1
        # Jamaica sits in ARIN: heavily damped vs the Americas prior.
        assert state_count <= 8

    def test_advanced_large_economies_damped(self):
        state_count = 0
        for seed in range(40):
            if plan("DE", seed=seed).operators[0].is_state_owned:
                state_count += 1
        assert state_count <= 8

    def test_africa_prior_dominates_europe(self):
        africa = sum(plan("TZ", seed=s).operators[0].is_state_owned for s in range(60))
        europe = sum(plan("CZ", seed=s).operators[0].is_state_owned for s in range(60))
        assert africa > europe


class TestMonopolies:
    def test_monopoly_leaves_little_to_tail(self):
        found = False
        for seed in range(60):
            p = plan("ET", seed=seed)
            incumbent = p.operators[0]
            if incumbent.addr_share >= 0.9:
                found = True
                assert incumbent.eyeball_share > 0.7
        assert found
