"""Equivalence suite for the single-pass analytic kernels.

The bitset customer-cone sweep (:meth:`ASGraph.all_cone_sizes`) and the
bottom-up trie address accounting
(:meth:`PrefixTrie.uncovered_address_counts`) replaced per-query
traversals; the naive implementations were retained as ``_reference_*``
oracles.  This suite pits the kernels against the oracles across ~100
seeded randomized graphs/tries, checks byte-identical aggregate outputs
(``AsRankDataset.from_world``, :func:`summarize_address_counts`), and
exercises the version-counter cache invalidation after mutation.
"""

from __future__ import annotations

import random

import pytest

from repro.errors import TopologyError
from repro.net.prefix import (
    Prefix,
    PrefixTrie,
    _reference_summarize_address_counts,
    summarize_address_counts,
)
from repro.net.topology import ASGraph
from repro.obs import get_metrics
from repro.sources.asrank import AsRankDataset, _reference_cone_sizes_from_world


def random_dag(rng: random.Random) -> ASGraph:
    """A random acyclic c2p topology with a sprinkling of peering edges.

    Acyclicity by construction: ASes get a random order and c2p edges only
    point from later positions (customers) to earlier ones (providers).
    """
    n = rng.randint(2, 60)
    asns = rng.sample(range(1, 100_000), n)
    g = ASGraph()
    for asn in asns:
        g.add_as(asn)
    for i in range(1, n):
        for j in rng.sample(range(i), k=min(i, rng.randint(0, 3))):
            g.add_c2p(asns[i], asns[j])
    for _ in range(rng.randint(0, n)):
        a, b = rng.sample(asns, 2)
        if a != b and g.relationship(a, b) is None:
            g.add_p2p(a, b)
    return g


def random_trie(rng: random.Random) -> PrefixTrie:
    trie: PrefixTrie[int] = PrefixTrie()
    for _ in range(rng.randint(1, 40)):
        prefix = Prefix.from_host(rng.getrandbits(32), rng.randint(0, 32))
        trie.insert(prefix, rng.randint(1, 5))
    return trie


class TestConeSweepEquivalence:
    @pytest.mark.parametrize("seed", range(50))
    def test_matches_bfs_oracle(self, seed):
        rng = random.Random(1000 + seed)
        g = random_dag(rng)
        fast = dict(g.all_cone_sizes())
        reference = g._reference_cone_sizes(g.asns)
        assert fast == reference
        assert repr(fast) == repr(reference)  # same ordering, byte-identical

    @pytest.mark.parametrize("seed", range(5))
    def test_batch_subset_matches_oracle(self, seed):
        rng = random.Random(2000 + seed)
        g = random_dag(rng)
        subset = rng.sample(g.asns, k=max(1, len(g.asns) // 2))
        assert g.customer_cone_sizes(subset) == g._reference_cone_sizes(subset)

    def test_single_size_uses_sweep(self):
        g = ASGraph()
        g.add_c2p(2, 1)
        g.add_c2p(3, 2)
        assert g.customer_cone_size(1) == 3
        assert g.customer_cone_size(3) == 1

    def test_unknown_asn_raises(self):
        g = ASGraph()
        g.add_c2p(2, 1)
        with pytest.raises(TopologyError):
            g.customer_cone_size(99)
        with pytest.raises(TopologyError):
            g.customer_cone_sizes([1, 99])

    def test_cycle_raises(self):
        g = ASGraph()
        g.add_c2p(2, 1)
        g.add_c2p(3, 2)
        g.add_c2p(1, 3)  # representable long cycle
        with pytest.raises(TopologyError):
            g.all_cone_sizes()


class TestConeCacheInvalidation:
    def test_edge_mutation_invalidates(self):
        g = ASGraph()
        g.add_c2p(2, 1)
        assert g.customer_cone_size(1) == 2
        g.add_c2p(3, 2)  # mutate after the memoized sweep
        assert g.customer_cone_size(1) == 3
        assert dict(g.all_cone_sizes()) == g._reference_cone_sizes(g.asns)

    def test_new_as_invalidates(self):
        g = ASGraph()
        g.add_c2p(2, 1)
        sizes = g.all_cone_sizes()
        assert 5 not in sizes
        g.add_as(5)
        assert g.all_cone_sizes()[5] == 1

    def test_duplicate_edge_keeps_cache(self):
        g = ASGraph()
        g.add_c2p(2, 1)
        g.all_cone_sizes()
        metrics = get_metrics()
        hits_before = metrics.counter("graph.cone.cache_hits")
        g.add_c2p(2, 1)  # no-op: duplicate edge must not bump the version
        g.all_cone_sizes()
        assert metrics.counter("graph.cone.cache_hits") == hits_before + 1

    def test_sweep_counters_flow(self):
        metrics = get_metrics()
        sweeps_before = metrics.counter("graph.cone.sweeps")
        g = ASGraph()
        g.add_c2p(2, 1)
        g.all_cone_sizes()
        g.all_cone_sizes()
        assert metrics.counter("graph.cone.sweeps") == sweeps_before + 1

    def test_asns_view_cached_and_refreshed(self):
        g = ASGraph()
        g.add_c2p(2, 1)
        view = g.asns
        assert isinstance(view, tuple)
        assert g.asns is view  # cached, no per-access copy
        g.add_p2p(1, 3)
        assert g.asns == (2, 1, 3)


class TestTrieAccountingEquivalence:
    @pytest.mark.parametrize("seed", range(50))
    def test_matches_per_prefix_oracle(self, seed):
        rng = random.Random(3000 + seed)
        trie = random_trie(rng)
        batch = trie.uncovered_address_counts()
        assert set(batch) == {p for p, _ in trie.items()}
        for prefix, _ in trie.items():
            assert batch[prefix] == trie._reference_uncovered_addresses(prefix)
            assert trie.uncovered_addresses(prefix) == batch[prefix]

    @pytest.mark.parametrize("seed", range(5))
    def test_unstored_prefix_falls_back(self, seed):
        rng = random.Random(4000 + seed)
        trie = random_trie(rng)
        for _ in range(10):
            probe = Prefix.from_host(rng.getrandbits(32), rng.randint(0, 32))
            assert trie.uncovered_addresses(
                probe
            ) == trie._reference_uncovered_addresses(probe)

    @pytest.mark.parametrize("seed", range(10))
    def test_summarize_byte_identical(self, seed):
        rng = random.Random(5000 + seed)
        items = [
            (
                Prefix.from_host(rng.getrandbits(32), rng.randint(0, 32)),
                rng.randint(1, 4),
            )
            for _ in range(rng.randint(1, 30))
        ]
        fast = summarize_address_counts(items)
        reference = _reference_summarize_address_counts(items)
        assert fast == reference
        assert repr(fast) == repr(reference)  # same insertion order

    def test_contains_single_walk_semantics(self):
        trie: PrefixTrie[object] = PrefixTrie()
        wide = Prefix.parse("10.0.0.0/8")
        narrow = Prefix.parse("10.1.0.0/16")
        trie.insert(wide, None)  # a stored None value still counts as present
        assert wide in trie
        assert narrow not in trie
        trie.insert(narrow, "x")
        assert narrow in trie


class TestTrieCacheInvalidation:
    def test_insert_invalidates_batch_map(self):
        trie: PrefixTrie[str] = PrefixTrie()
        wide = Prefix.parse("10.0.0.0/16")
        trie.insert(wide, "a")
        assert trie.uncovered_addresses(wide) == wide.num_addresses
        trie.insert(Prefix.parse("10.0.1.0/24"), "b")
        assert trie.uncovered_addresses(wide) == wide.num_addresses - 256

    def test_value_replacement_invalidates(self):
        trie: PrefixTrie[str] = PrefixTrie()
        p = Prefix.parse("10.0.0.0/16")
        trie.insert(p, "a")
        before = trie.uncovered_address_counts()
        trie.insert(p, "b")
        after = trie.uncovered_address_counts()
        assert before is not after

    def test_cache_hit_counter_flows(self):
        trie: PrefixTrie[str] = PrefixTrie()
        trie.insert(Prefix.parse("10.0.0.0/16"), "a")
        trie.uncovered_address_counts()
        metrics = get_metrics()
        hits_before = metrics.counter("prefix.summary.cache_hits")
        trie.uncovered_address_counts()
        assert metrics.counter("prefix.summary.cache_hits") == hits_before + 1


class TestWorldLevelEquivalence:
    def test_asrank_from_world_byte_identical(self, tiny_world):
        dataset = AsRankDataset.from_world(tiny_world)
        reference = _reference_cone_sizes_from_world(tiny_world)
        assert dataset._cone_sizes == reference
        assert repr(dataset._cone_sizes) == repr(reference)

    def test_true_address_counts_byte_identical(self, tiny_world):
        fast = tiny_world.true_address_counts()
        reference = _reference_summarize_address_counts(tiny_world.prefix_table())
        assert fast == reference
        assert repr(fast) == repr(reference)

    def test_table_uncovered_map_matches_per_prefix(self, tiny_world):
        from repro.sources.prefix2as import Prefix2ASTable

        table = Prefix2ASTable.from_world(tiny_world)
        uncovered = table.uncovered_address_counts()
        for prefix, _ in table:
            assert uncovered[prefix] == table._trie._reference_uncovered_addresses(
                prefix
            )


class TestLinearSweepEquivalence:
    """The stack-sweep prefix accounting vs the trie oracle.

    :func:`sweep_uncovered_counts` replaced the trie build + post-order
    walk in the table's batch path; the trie-backed
    ``_reference_flat_counts`` stays as the oracle.  Random tables include
    nested prefixes and duplicate (base, length) rows under different
    origins — the aliasing case the sweep must replay, not recompute.
    """

    @staticmethod
    def _random_entries(rng: random.Random):
        entries = []
        for _ in range(rng.randint(1, 60)):
            prefix = Prefix.from_host(rng.getrandbits(32), rng.randint(4, 30))
            entries.append((prefix, rng.randint(1, 500)))
            # Sprinkle nested more-specifics and exact duplicates.
            if rng.random() < 0.4 and prefix.length <= 28:
                sub = Prefix.from_host(prefix.base, prefix.length + 2)
                entries.append((sub, rng.randint(1, 500)))
            if rng.random() < 0.2:
                entries.append((prefix, rng.randint(1, 500)))
        return entries

    @pytest.mark.parametrize("seed", range(50))
    def test_sweep_matches_trie_oracle(self, seed):
        from repro.sources.prefix2as import Prefix2ASTable

        rng = random.Random(6000 + seed)
        table = Prefix2ASTable(self._random_entries(rng))
        fast = table.flat_counts()
        reference = table._reference_flat_counts()
        assert list(fast.bases) == list(reference.bases)
        assert list(fast.lengths) == list(reference.lengths)
        assert list(fast.origins) == list(reference.origins)
        assert list(fast.uncovered) == list(reference.uncovered)

    @pytest.mark.parametrize("seed", range(20))
    def test_partitioned_sweep_matches_whole_sweep(self, seed):
        from array import array

        from repro.net.prefix import sweep_cut_points, sweep_uncovered_counts
        from repro.sources.prefix2as import Prefix2ASTable

        rng = random.Random(7000 + seed)
        table = Prefix2ASTable(self._random_entries(rng))
        bases = array("I", (p.base for p, _ in table))
        lengths = array("B", (p.length for p, _ in table))
        whole = sweep_uncovered_counts(bases, lengths)
        bounds = sweep_cut_points(bases, lengths, rng.randint(2, 8))
        assert bounds[0] == 0 and bounds[-1] == len(bases)
        assert bounds == sorted(bounds)
        merged = array("q")
        for start, stop in zip(bounds, bounds[1:]):
            merged.extend(sweep_uncovered_counts(bases, lengths, start, stop))
        assert list(merged) == list(whole)

    def test_parallel_flat_counts_byte_identical(self):
        from repro.parallel import ExecutionContext
        from repro.sources.prefix2as import Prefix2ASTable

        rng = random.Random(123456)
        entries = self._random_entries(rng)
        serial = Prefix2ASTable(entries).flat_counts()
        with ExecutionContext(jobs=2, backend="process") as context:
            parallel = Prefix2ASTable(entries).flat_counts(context=context)
        assert parallel.uncovered.tobytes() == serial.uncovered.tobytes()
