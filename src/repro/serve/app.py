"""Embedding helpers: run a :class:`QueryServer` from sync code.

The CLI runs the server on the main thread via :func:`run_server`; tests
and benchmarks embed it with :class:`ServerThread`, which spins the event
loop on a daemon thread and exposes the bound port once the socket is
listening.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Callable, Optional

from repro.serve.http import QueryServer
from repro.serve.store import SnapshotStore

__all__ = ["ServerThread", "run_server"]


def run_server(
    store: SnapshotStore,
    host: str = "127.0.0.1",
    port: int = 8645,
    poll_interval: float = 2.0,
    announce: Optional[Callable[[str], None]] = None,
) -> None:
    """Serve until interrupted (the ``repro serve`` entry point)."""

    async def main() -> None:
        server = QueryServer(store, host=host, port=port, poll_interval=poll_interval)
        await server.start()
        if announce is not None:
            announce(
                f"serving {store.path} on http://{host}:{server.port} "
                f"(poll every {poll_interval:g}s; Ctrl-C to stop)"
            )
        await server.serve_forever()

    asyncio.run(main())


class ServerThread:
    """A :class:`QueryServer` on a daemon thread (tests, benchmarks).

    Usage::

        with ServerThread(store, poll_interval=0.05) as server:
            http.client.HTTPConnection("127.0.0.1", server.port)...
    """

    def __init__(
        self,
        store: SnapshotStore,
        host: str = "127.0.0.1",
        port: int = 0,
        poll_interval: float = 2.0,
    ) -> None:
        self._server = QueryServer(
            store, host=host, port=port, poll_interval=poll_interval
        )
        self._loop = asyncio.new_event_loop()
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )

    @property
    def port(self) -> int:
        port = self._server.port
        assert port is not None, "server not started"
        return port

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self._server.start())
        except BaseException as exc:  # surface bind errors to start()
            self._startup_error = exc
            self._started.set()
            return
        self._started.set()
        try:
            self._loop.run_forever()
        finally:
            self._loop.run_until_complete(self._server.close())
            self._loop.close()

    def start(self) -> "ServerThread":
        self._thread.start()
        self._started.wait(timeout=10)
        if self._startup_error is not None:
            raise self._startup_error
        if self._server.port is None:
            raise RuntimeError("server failed to start within 10s")
        return self

    def stop(self) -> None:
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=10)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
