"""Read-optimized, immutable in-memory indices over one dataset snapshot.

The query server never touches :class:`~repro.core.dataset.StateOwnedDataset`
directly on the request path: its linear scans (``org_of_asn`` walks every
organization) would make per-request latency proportional to dataset size.
:class:`SnapshotIndex` precomputes everything the endpoints answer —
asn -> organization, operating-country -> organizations, sorted CTI
rankings, parent chains — once at load time, and is immutable afterwards.
Immutability is what makes the hot swap safe: a request handler grabs one
index reference and every answer it produces comes from that single
snapshot, no matter how many swaps happen mid-request.

:func:`build_index` reads the exported file **once** (the content digest
and the parsed dataset come from the same bytes, so a swap between stat
and parse can never produce a mixed stamp) and raises
:class:`~repro.errors.DatasetError` for every failure mode, matching
:func:`~repro.io.jsonio.load_json`.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union
from pathlib import Path

from repro.core.dataset import OrganizationRecord, StateOwnedDataset
from repro.errors import DatasetError
from repro.io.jsonio import dataset_from_json, load_cti_json

__all__ = ["SnapshotIndex", "SnapshotStamp", "build_index"]

#: Cap on owner-chain walks; real chains are 2-3 links, a corrupt
#: parent_org cycle must not hang a request.
_MAX_CHAIN = 16


@dataclass(frozen=True)
class SnapshotStamp:
    """Identity of one loaded snapshot file."""

    path: str
    digest: str          # sha256 of the exact bytes that were parsed
    mtime_ns: int
    size: int
    loaded_at: float     # wall-clock time the index was built

    def as_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "digest": self.digest,
            "mtime_ns": self.mtime_ns,
            "size": self.size,
            "loaded_at": self.loaded_at,
        }


def _org_dict(org: OrganizationRecord) -> Dict[str, object]:
    """The compact organization view the endpoints return."""
    return {
        "org_id": org.org_id,
        "org_name": org.org_name,
        "conglomerate_name": org.conglomerate_name,
        "ownership_cc": org.ownership_cc,
        "ownership_country_name": org.ownership_country_name,
        "operating_cc": org.operating_cc,
        "is_foreign_subsidiary": org.is_foreign_subsidiary,
        "rir": org.rir,
        "source": org.source,
        "parent_org": org.parent_org,
    }


class SnapshotIndex:
    """Immutable query indices over one dataset snapshot (+CTI sidecar)."""

    def __init__(
        self,
        dataset: StateOwnedDataset,
        stamp: SnapshotStamp,
        cti: Optional[Dict[str, object]] = None,
    ) -> None:
        self.dataset = dataset
        self.stamp = stamp
        self._org_by_id: Dict[str, OrganizationRecord] = {
            org.org_id: org for org in dataset.organizations()
        }
        self._org_id_by_asn: Dict[int, str] = {}
        self._asns_of: Dict[str, Tuple[int, ...]] = {}
        for org in dataset.organizations():
            asns = dataset.asns_of(org.org_id)
            self._asns_of[org.org_id] = asns
            for asn in asns:
                self._org_id_by_asn[asn] = org.org_id
        self._orgs_by_operating_cc: Dict[str, List[str]] = {}
        self._owns_abroad_by_cc: Dict[str, List[str]] = {}
        for org in dataset.organizations():
            self._orgs_by_operating_cc.setdefault(
                org.operating_cc, []
            ).append(org.org_id)
            if org.is_foreign_subsidiary:
                self._owns_abroad_by_cc.setdefault(
                    org.ownership_cc, []
                ).append(org.org_id)
        # -- CTI rankings ---------------------------------------------------
        provenance: Dict[int, List[Tuple[str, int, float]]] = (
            dict(cti.get("provenance", {})) if cti else {}
        )
        self.cti_countries: Tuple[str, ...] = tuple(
            cti.get("countries_applied", ()) if cti else ()
        )
        self._cti_provenance = provenance
        # Global ranking: each selected AS scored by its best per-country
        # score, descending (ties broken by ASN for determinism).
        best: List[Tuple[float, int]] = [
            (max(score for _, _, score in entries), asn)
            for asn, entries in provenance.items()
            if entries
        ]
        best.sort(key=lambda item: (-item[0], item[1]))
        self._cti_global: Tuple[Tuple[int, float], ...] = tuple(
            (asn, score) for score, asn in best
        )
        self._cti_by_cc: Dict[str, List[Tuple[int, int, float]]] = {}
        for asn, entries in provenance.items():
            for cc, rank, score in entries:
                self._cti_by_cc.setdefault(cc, []).append((rank, asn, score))
        for ranked in self._cti_by_cc.values():
            ranked.sort()

    # -- endpoint payloads -------------------------------------------------
    @property
    def has_cti(self) -> bool:
        return bool(self._cti_provenance)

    def metadata(self) -> Dict[str, object]:
        """The /snapshot payload: identity plus coarse shape."""
        return {
            "snapshot": self.stamp.digest,
            "stamp": self.stamp.as_dict(),
            "organizations": len(self.dataset),
            "asns": len(self._org_id_by_asn),
            "countries": len(self._orgs_by_operating_cc),
            "degraded_sources": list(self.dataset.degraded_sources),
            "cti": self.has_cti,
            "cti_countries": len(self.cti_countries),
        }

    def owner_chain(self, asn: int) -> Dict[str, object]:
        """The /asn payload: owning organization plus its parent chain."""
        org_id = self._org_id_by_asn.get(asn)
        if org_id is None:
            return {
                "snapshot": self.stamp.digest,
                "asn": asn,
                "state_owned": False,
            }
        chain: List[Dict[str, object]] = []
        seen: set = set()
        current: Optional[str] = org_id
        while (current is not None and current not in seen and len(chain) < _MAX_CHAIN):
            seen.add(current)
            org = self._org_by_id.get(current)
            if org is None:
                break
            chain.append(_org_dict(org))
            current = org.parent_org
        org = self._org_by_id[org_id]
        return {
            "snapshot": self.stamp.digest,
            "asn": asn,
            "state_owned": True,
            "organization": _org_dict(org),
            "owner_chain": chain,
            "sibling_asns": list(self._asns_of.get(org_id, ())),
            "cti": [
                {"cc": cc, "rank": rank, "score": score}
                for cc, rank, score in self._cti_provenance.get(asn, ())
            ],
        }

    def country_footprint(self, cc: str) -> Dict[str, object]:
        """The /country payload: one country's state-owned footprint."""
        cc = cc.upper()
        domestic: List[Dict[str, object]] = []
        foreign: List[Dict[str, object]] = []
        asns: List[int] = []
        for org_id in self._orgs_by_operating_cc.get(cc, ()):
            org = self._org_by_id[org_id]
            entry = _org_dict(org)
            entry["asns"] = list(self._asns_of.get(org_id, ()))
            asns.extend(entry["asns"])
            (foreign if org.is_foreign_subsidiary else domestic).append(entry)
        owns_abroad = [
            {
                "org_id": org_id,
                "org_name": self._org_by_id[org_id].org_name,
                "target_cc": self._org_by_id[org_id].target_cc,
                "asns": list(self._asns_of.get(org_id, ())),
            }
            for org_id in self._owns_abroad_by_cc.get(cc, ())
        ]
        top_gateway = None
        for rank, asn, score in self._cti_by_cc.get(cc, ()):
            if rank == 1:
                top_gateway = {"asn": asn, "score": score}
                break
        return {
            "snapshot": self.stamp.digest,
            "cc": cc,
            "domestic": domestic,
            "foreign_operators_present": foreign,
            "owns_abroad": owns_abroad,
            "state_owned_asns": sorted(asns),
            "asn_count": len(asns),
            "cti_applied": cc in self.cti_countries,
            "top_cti_gateway": top_gateway,
        }

    def top_cti(self, n: int, cc: Optional[str] = None) -> Dict[str, object]:
        """The /cti/top payload: global or per-country CTI rankings."""
        # CTI selection happens *before* confirmation, so rankings can
        # include candidates that did not survive into the dataset;
        # ``state_owned`` tells the two apart.
        if cc is not None:
            cc = cc.upper()
            rankings = [
                {
                    "asn": asn,
                    "rank": rank,
                    "score": score,
                    "state_owned": asn in self._org_id_by_asn,
                }
                for rank, asn, score in self._cti_by_cc.get(cc, ())[:n]
            ]
        else:
            rankings = [
                {
                    "asn": asn,
                    "score": score,
                    "state_owned": asn in self._org_id_by_asn,
                    "countries": [
                        {"cc": entry_cc, "rank": rank, "score": entry_score}
                        for entry_cc, rank, entry_score in (
                            self._cti_provenance.get(asn, ())
                        )
                    ],
                }
                for asn, score in self._cti_global[:n]
            ]
        return {
            "snapshot": self.stamp.digest,
            "n": n,
            "country": cc,
            "rankings": rankings,
        }


def build_index(
    path: Union[str, Path],
    cti_path: Optional[Union[str, Path]] = None,
) -> SnapshotIndex:
    """Load + index one exported snapshot (and optional CTI sidecar).

    The file is read once; ``atomic_replace`` on the writer side
    guarantees those bytes are a complete export, never a torn write.
    """
    path = Path(path)
    try:
        stat = os.stat(path)
        data = path.read_bytes()
    except OSError as exc:
        raise DatasetError(f"cannot read dataset {path}: {exc}") from exc
    try:
        text = data.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise DatasetError(f"dataset {path} is not valid UTF-8: {exc}") from exc
    dataset = dataset_from_json(text)
    stamp = SnapshotStamp(
        path=str(path),
        digest=hashlib.sha256(data).hexdigest(),
        mtime_ns=stat.st_mtime_ns,
        size=stat.st_size,
        loaded_at=time.time(),
    )
    cti = None
    if cti_path is not None and Path(cti_path).exists():
        cti = load_cti_json(cti_path)
    return SnapshotIndex(dataset, stamp, cti=cti)
