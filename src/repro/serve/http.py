"""The asyncio HTTP/JSON query server (stdlib only, no new runtime deps).

A deliberately small HTTP/1.1 implementation: GET-only, JSON-only
responses, keep-alive connections.  Five endpoint families:

====================================  =========================================
``GET /health``, ``GET /snapshot``    liveness + snapshot identity/metadata
``GET /asn/<asn>``                    AS -> owning organization + parent chain
``GET /country/<cc>``                 country -> state-owned footprint
``GET /cti/top?n=N[&country=CC]``     top-N CTI rankings (global or per-cc)
``GET /diff``                         previous vs current snapshot (diffing)
``GET /metrics``                      per-endpoint counters + p50/p95 latency
====================================  =========================================

Every request handler grabs ``store.current`` exactly once, so responses
are internally consistent across hot swaps (each payload carries the
``snapshot`` digest it was answered from).  The reload poller runs as a
background task and builds new indices in the default executor, keeping
the event loop free to answer queries during a swap.
"""

from __future__ import annotations

import asyncio
import json
import time
import urllib.parse
from typing import Dict, Optional, Tuple

from repro.core.diffing import diff_datasets
from repro.obs import get_metrics
from repro.serve.store import SnapshotStore

__all__ = ["QueryServer"]

#: Route label used for paths that match no endpoint (metrics bucket).
_UNKNOWN = "unknown"

#: Routes whose latency/counters the /metrics endpoint reports.
_ROUTES = ("health", "snapshot", "asn", "country", "cti", "diff", "metrics")


class QueryServer:
    """Serve a :class:`~repro.serve.store.SnapshotStore` over HTTP/JSON."""

    def __init__(
        self,
        store: SnapshotStore,
        host: str = "127.0.0.1",
        port: int = 0,
        poll_interval: float = 2.0,
    ) -> None:
        self._store = store
        self._host = host
        self._requested_port = port
        self._poll_interval = poll_interval
        self._server: Optional[asyncio.base_events.Server] = None
        self._reload_task: Optional[asyncio.Task] = None
        self.port: Optional[int] = None

    # -- lifecycle ---------------------------------------------------------
    async def start(self) -> None:
        """Bind the listening socket and start the reload poller."""
        self._server = await asyncio.start_server(
            self._handle_client, self._host, self._requested_port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._reload_task = asyncio.get_running_loop().create_task(self._reload_loop())

    async def serve_forever(self) -> None:
        """Run until cancelled (the CLI entry point)."""
        if self._server is None:
            await self.start()
        try:
            await self._server.serve_forever()
        finally:
            await self.close()

    async def close(self) -> None:
        if self._reload_task is not None:
            self._reload_task.cancel()
            try:
                await self._reload_task
            except asyncio.CancelledError:
                pass
            self._reload_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _reload_loop(self) -> None:
        """Poll the snapshot file; build replacement indices off-loop."""
        loop = asyncio.get_running_loop()
        while True:
            await asyncio.sleep(self._poll_interval)
            await loop.run_in_executor(None, self._store.poll)

    # -- connection handling -----------------------------------------------
    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                request_line = await reader.readline()
                if not request_line:
                    break
                parts = request_line.decode("latin-1").split()
                if len(parts) != 3:
                    await self._respond(
                        writer,
                        400,
                        {"error": "malformed request line"},
                        keep_alive=False,
                    )
                    break
                method, target, version = parts
                keep_alive = not version.endswith("1.0")
                while True:  # drain headers
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n", b""):
                        break
                    name, _, value = line.decode("latin-1").partition(":")
                    if name.strip().lower() == "connection":
                        keep_alive = value.strip().lower() != "close"
                status, payload = self._route(method, target)
                await self._respond(writer, status, payload, keep_alive=keep_alive)
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.TimeoutError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Dict[str, object],
        keep_alive: bool,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        reason = {
            200: "OK", 400: "Bad Request", 404: "Not Found", 405: "Method Not Allowed"
        }.get(status, "Error")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            f"\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()

    # -- routing -----------------------------------------------------------
    def _route(self, method: str, target: str) -> Tuple[int, Dict[str, object]]:
        started = time.perf_counter()
        route, status, payload = self._dispatch(method, target)
        metrics = get_metrics()
        metrics.incr(f"serve.requests.{route}")
        if status >= 400:
            metrics.incr(f"serve.errors.{route}")
        metrics.observe(f"serve.latency.{route}", time.perf_counter() - started)
        return status, payload

    def _dispatch(self, method: str, target: str) -> Tuple[str, int, Dict[str, object]]:
        if method != "GET":
            return _UNKNOWN, 405, {"error": f"method {method} not allowed"}
        path, _, query = target.partition("?")
        params = urllib.parse.parse_qs(query)
        segments = [s for s in path.split("/") if s]
        # One reference grab: the whole request answers from this index.
        index = self._store.current
        if index is None:
            return "health", 404, {"error": "no snapshot loaded"}

        if path == "/health":
            payload = index.metadata()
            payload["reload"] = self._store.status()
            payload["status"] = "degraded" if self._store.last_error else "ok"
            return "health", 200, payload
        if path == "/snapshot":
            return "snapshot", 200, index.metadata()
        if len(segments) == 2 and segments[0] == "asn":
            try:
                asn = int(segments[1])
            except ValueError:
                return "asn", 400, {"error": f"bad ASN {segments[1]!r}"}
            return "asn", 200, index.owner_chain(asn)
        if len(segments) == 2 and segments[0] == "country":
            cc = segments[1]
            if not (2 <= len(cc) <= 3 and cc.isalpha()):
                return "country", 400, {"error": f"bad country code {cc!r}"}
            return "country", 200, index.country_footprint(cc)
        if path == "/cti/top":
            try:
                n = int(params.get("n", ["10"])[0])
            except ValueError:
                return "cti", 400, {"error": "n must be an integer"}
            if n < 1:
                return "cti", 400, {"error": "n must be >= 1"}
            cc = params.get("country", [None])[0]
            return "cti", 200, index.top_cti(n, cc=cc)
        if path == "/diff":
            previous = self._store.previous
            if previous is None:
                return "diff", 404, {"error": "no previous snapshot to diff against"}
            diff = diff_datasets(previous.dataset, index.dataset)
            payload = diff.to_dict()
            payload["old_snapshot"] = previous.stamp.digest
            payload["snapshot"] = index.stamp.digest
            return "diff", 200, payload
        if path == "/metrics":
            return "metrics", 200, self._metrics_payload()
        return _UNKNOWN, 404, {"error": f"no such endpoint {path!r}"}

    def _metrics_payload(self) -> Dict[str, object]:
        """Per-endpoint counters, latency summaries, and swap events."""
        metrics = get_metrics()
        requests = {}
        errors = {}
        latency = {}
        for route in _ROUTES + (_UNKNOWN,):
            count = metrics.counter(f"serve.requests.{route}")
            if count:
                requests[route] = count
            errs = metrics.counter(f"serve.errors.{route}")
            if errs:
                errors[route] = errs
            summary = metrics.timing_summary(f"serve.latency.{route}")
            if summary:
                latency[route] = {
                    "count": summary["count"],
                    "mean_ms": round(summary["mean_s"] * 1000, 3),
                    "p50_ms": round(summary["p50_s"] * 1000, 3),
                    "p95_ms": round(summary["p95_s"] * 1000, 3),
                    "max_ms": round(summary["max_s"] * 1000, 3),
                }
        return {
            "requests": requests,
            "errors": errors,
            "latency": latency,
            "swaps": metrics.counter("serve.swaps"),
            "reload_failures": metrics.counter("serve.reload.failures"),
        }
