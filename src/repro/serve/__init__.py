"""Dataset-as-a-service: the always-on query server behind ``repro serve``.

Three layers, each usable alone:

* :mod:`repro.serve.index` — :class:`SnapshotIndex`, immutable
  read-optimized indices (asn -> org, cc -> orgs, sorted CTI rankings,
  content digests) built from one exported snapshot;
* :mod:`repro.serve.store` — :class:`SnapshotStore`, the hot-swap holder:
  polls the export for changes, rebuilds the index off the serving path
  under the resilience guard, and atomically flips one immutable
  reference (a corrupt half-written snapshot degrades to the previous
  one, never crashes the server);
* :mod:`repro.serve.http` / :mod:`repro.serve.app` —
  :class:`QueryServer`, the stdlib asyncio HTTP/JSON API, plus
  :class:`ServerThread` / :func:`run_server` embedding helpers.
"""

from repro.serve.app import ServerThread, run_server
from repro.serve.http import QueryServer
from repro.serve.index import SnapshotIndex, SnapshotStamp, build_index
from repro.serve.store import SnapshotStore

__all__ = [
    "QueryServer",
    "ServerThread",
    "SnapshotIndex",
    "SnapshotStamp",
    "SnapshotStore",
    "build_index",
    "run_server",
]
