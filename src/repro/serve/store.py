"""The hot-swap snapshot store: one immutable index, atomically flipped.

The swap protocol has three invariants:

1. **One reference, flipped atomically.**  ``current`` is a single
   attribute read (atomic under the GIL); request handlers grab it once
   and answer the whole request from that index.  A swap can therefore
   never produce a mixed-snapshot response or drop an in-flight query.
2. **Build off the serving path.**  :meth:`poll` does the expensive work
   (read, digest, parse, index) on whatever thread calls it — the server
   runs it in an executor — and only then flips the reference.
3. **Degrade, never crash.**  A reload that fails for any reason (the
   file vanished, a half-written or corrupt snapshot, a transient read
   error) keeps serving the previous index, records the failure
   (``serve.reload.failures`` plus ``last_error``), and retries when the
   file changes again.  Reload runs under the PR 4
   :class:`~repro.resilience.SourceGuard` (site ``serve.reload``), so
   transient faults are retried with backoff before the store degrades.

The swap point is :func:`repro.io.atomic.atomic_replace`: because every
exporter promotes finished files with fsync + rename, a *new* mtime/size
always refers to a complete document, and the previous snapshot is kept
for the /diff endpoint.
"""

from __future__ import annotations

import os
import threading
from typing import Optional, Tuple, Union
from pathlib import Path

from repro.errors import ReproError
from repro.obs import get_metrics, get_sink
from repro.resilience import RetryPolicy, SourceGuard
from repro.serve.index import SnapshotIndex, build_index

__all__ = ["SnapshotStore"]


class SnapshotStore:
    """Owns the current (and previous) :class:`SnapshotIndex`."""

    def __init__(
        self,
        path: Union[str, Path],
        cti_path: Optional[Union[str, Path]] = None,
        guard: Optional[SourceGuard] = None,
    ) -> None:
        self._path = Path(path)
        # An explicit sidecar path is honored verbatim; otherwise the
        # default convention (<dataset>.cti.json next to the export) is
        # re-resolved on every build, so a sidecar that a maintain/publish
        # cycle drops in *after* startup is picked up by the next swap.
        self._explicit_cti = cti_path is not None
        self._cti_path = Path(cti_path) if cti_path is not None else None
        self._guard = guard or SourceGuard(
            policy=RetryPolicy(max_attempts=3, base_delay=0.05, max_delay=0.5)
        )
        self._lock = threading.Lock()
        self._current: Optional[SnapshotIndex] = None
        self._previous: Optional[SnapshotIndex] = None
        #: (mtime_ns, size) of the last file state that failed to load, so a
        #: bad snapshot is not re-parsed on every poll tick.
        self._failed_stat: Optional[Tuple[int, int]] = None
        self.swaps = 0
        self.reload_failures = 0
        self.last_error: Optional[str] = None

    # -- read side ---------------------------------------------------------
    @property
    def path(self) -> Path:
        return self._path

    @property
    def current(self) -> Optional[SnapshotIndex]:
        """The serving index (a single atomic attribute read)."""
        return self._current

    @property
    def previous(self) -> Optional[SnapshotIndex]:
        """The index replaced by the last swap (for /diff)."""
        return self._previous

    def status(self) -> dict:
        """The reload-health block of the /health payload."""
        return {
            "swaps": self.swaps,
            "reload_failures": self.reload_failures,
            "last_error": self.last_error,
        }

    # -- load / reload -----------------------------------------------------
    def load_initial(self) -> SnapshotIndex:
        """Build the first index; startup failures propagate to the caller."""
        index = self._build()
        with self._lock:
            self._current = index
        get_metrics().gauge("serve.dataset_asns", len(index.dataset.all_asns()))
        return index

    def _build(self) -> SnapshotIndex:
        cti_path = self._cti_path
        if not self._explicit_cti:
            candidate = self._path.with_suffix(self._path.suffix + ".cti.json")
            cti_path = candidate if candidate.exists() else None
        return self._guard.call(
            "serve.reload", lambda: build_index(self._path, cti_path)
        )

    def poll(self) -> bool:
        """Reload if the snapshot file changed; True when a swap happened.

        Safe to call from any thread; the server calls it from an executor
        on a fixed interval.  Never raises once :meth:`load_initial`
        succeeded — every failure degrades to the previous snapshot.
        """
        try:
            stat = os.stat(self._path)
        except OSError as exc:
            if self._failed_stat != (-1, -1):
                self._record_failure(exc, (-1, -1))
            return False
        file_state = (stat.st_mtime_ns, stat.st_size)
        current = self._current
        if current is not None and file_state == (
            current.stamp.mtime_ns,
            current.stamp.size,
        ):
            return False
        if file_state == self._failed_stat:
            return False  # already diagnosed this exact file state
        try:
            index = self._build()
        except ReproError as exc:
            self._record_failure(exc, file_state)
            return False
        if current is not None and index.stamp.digest == current.stamp.digest:
            # Touched but byte-identical: adopt the new stamp silently so
            # the next poll is an mtime no-op, without announcing a swap.
            with self._lock:
                self._current = index
                self._failed_stat = None
            return False
        self._swap(index)
        return True

    def _swap(self, index: SnapshotIndex) -> None:
        with self._lock:
            previous = self._current
            self._previous = previous
            self._current = index
            self._failed_stat = None
            self.swaps += 1
            self.last_error = None
        metrics = get_metrics()
        metrics.incr("serve.swaps")
        metrics.gauge("serve.dataset_asns", len(index.dataset.all_asns()))
        sink = get_sink()
        if sink.enabled:
            sink.emit(
                {
                    "event": "serve.swap",
                    "name": "serve.swap",
                    "depth": 0,
                    "digest": index.stamp.digest,
                    "previous": (
                        previous.stamp.digest if previous is not None else None
                    ),
                }
            )

    def _record_failure(self, exc: Exception, file_state: Tuple[int, int]) -> None:
        with self._lock:
            self.reload_failures += 1
            self.last_error = f"{type(exc).__name__}: {exc}"
            self._failed_stat = file_state
        get_metrics().incr("serve.reload.failures")
        sink = get_sink()
        if sink.enabled:
            sink.emit(
                {
                    "event": "serve.reload_failure",
                    "name": "serve.reload",
                    "depth": 0,
                    "error": self.last_error,
                }
            )
