"""Configuration dataclasses for the world generator, sources and pipeline.

The defaults are calibrated so that a full-scale world (``scale=1.0``)
produces a dataset whose headline numbers land in the same ballpark as the
paper's (989 state-owned ASes from 302 companies across 123 countries,
17 % of announced space, 193 foreign-subsidiary ASes...).  Tests use small
scales for speed; benchmarks use the default.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from repro.errors import ConfigError, invalid_jobs

__all__ = [
    "EXPANSION_PROFILES",
    "WorldConfig",
    "SourceNoiseConfig",
    "PipelineConfig",
    "ParallelConfig",
    "ResilienceConfig",
]

#: Execution backends understood by :class:`ParallelConfig` (and by
#: :class:`repro.parallel.ExecutionContext`, which enforces the same set).
PARALLEL_BACKENDS: Tuple[str, ...] = ("serial", "thread", "process")

#: Foreign-expansion profiles: owner country -> target countries where its
#: state-owned conglomerate operates subsidiaries.  Taken from the paper's
#: Table 3 (the published owner->target mapping), which doubles as the
#: calibration target for the Table 3 benchmark.
EXPANSION_PROFILES: Dict[str, Tuple[str, ...]] = {
    "AE": ("AF", "BF", "BJ", "CI", "EG", "GA", "MA", "ML", "MR", "NE", "TD", "TG"),
    "CN": ("AU", "GB", "HK", "MO", "NL", "PK", "SG", "US", "ZA"),
    "QA": ("DZ", "ID", "IQ", "KW", "MM", "MV", "OM", "PS", "TN"),
    "NO": ("BD", "DK", "FI", "MM", "MY", "PK", "SE", "TH", "GB"),
    "VN": ("BI", "CM", "HT", "KH", "LA", "MZ", "PE", "TL", "TZ"),
    "SG": ("AU", "HK", "JP", "KR", "LK", "TW"),
    "MY": ("BD", "ID", "KH", "LK", "NP"),
    "CO": ("AR", "BR", "CL", "PE"),
    "RS": ("AT", "BA", "ME"),
    "ID": ("MY", "SG", "TL"),
    "BH": ("JO", "MV", "JM"),
    "TN": ("CY", "MR", "MT"),
    "SA": ("BH", "KW"),
    "FJ": ("VU",),
    "MU": ("UG",),
    "BE": ("LU",),
    "CH": ("IT",),
    "RU": ("AM",),
    "SI": ("AL",),
}


@dataclass
class WorldConfig:
    """Parameters of the synthetic ground-truth world."""

    seed: int = 20210701
    #: Global multiplier on per-country AS counts (tests use ~0.25).
    scale: float = 1.0

    #: P(the incumbent is majority state-owned), keyed by (region, dev_tier).
    #: Regional priors reproduce the Africa/Asia prevalence the paper finds.
    incumbent_state_prob: Mapping[str, float] = field(
        default_factory=lambda: {
            "Africa": 0.60,
            "Asia": 0.62,
            "Europe": 0.48,
            "Americas": 0.35,
            "Oceania": 0.35,
        }
    )
    #: P(a second, non-incumbent state-owned operator exists) by region.
    extra_state_operator_prob: Mapping[str, float] = field(
        default_factory=lambda: {
            "Africa": 0.25,
            "Asia": 0.38,
            "Europe": 0.25,
            "Americas": 0.20,
            "Oceania": 0.15,
        }
    )
    #: P(a large private operator carries a minority government stake).
    minority_stake_prob: float = 0.16
    #: Countries that never have state-owned operators (the paper singles
    #: out the US).
    no_state_ownership: Tuple[str, ...] = ("US",)

    #: Ownership-structure mix for state-owned operators:
    #: (direct, funds-aggregate, holding-chain, joint-venture) probabilities.
    ownership_structure_mix: Tuple[float, float, float, float] = (
        0.62,
        0.14,
        0.16,
        0.08,
    )

    #: Number of significant access operators per country by addr_class.
    access_operators_by_class: Tuple[int, ...] = (2, 3, 4, 5, 6, 8)
    #: Long-tail (enterprise/hosting/small-ISP) AS count per addr_class.
    tail_ases_by_class: Tuple[int, ...] = (2, 6, 14, 34, 80, 260)
    #: Address budget per addr_class, in /24 units.  Class 5 is the US only:
    #: its outsized weight reproduces the paper's 17 % -> 25 % jump when the
    #: US is excluded from the state-owned address-space share.
    addr_budget_by_class: Tuple[int, ...] = (24, 90, 340, 1300, 5200, 48000)
    #: Eyeball budget per pop_class (Internet users).
    eyeball_budget_by_class: Tuple[int, ...] = (
        60_000,
        450_000,
        2_600_000,
        11_000_000,
        46_000_000,
        240_000_000,
    )

    #: Sibling-ASN count ranges by operator role weight: incumbents get the
    #: most ASNs (historic allocations, acquisitions).
    incumbent_sibling_range: Tuple[int, int] = (2, 8)
    other_sibling_range: Tuple[int, int] = (1, 3)
    subsidiary_sibling_range: Tuple[int, int] = (1, 3)

    #: Famous ground-truth market shares forced onto specific state
    #: incumbents (paper Table 8 archetypes: Ethiopia 1.0, Cuba 1.0,
    #: China 0.97, UAE 0.99, Syria 1.0...).
    forced_state_share: Mapping[str, float] = field(
        default_factory=lambda: {
            "CN": 0.95,
            "AE": 0.97,
            "ET": 0.99,
            "CU": 0.98,
            "SY": 0.97,
            "ER": 0.97,
            "DJ": 0.96,
            "TM": 0.91,
            "UY": 0.92,
            "IR": 0.9,
        }
    )

    #: P(a developing country is transit-dominant, i.e. eligible for CTI).
    #: Calibrated so that roughly 75 countries qualify (the paper applies
    #: CTI to 75 countries).
    transit_dominant_prob: Mapping[int, float] = field(
        default_factory=lambda: {0: 0.5, 1: 0.2, 2: 0.02}
    )
    #: P(a transit-dominant country has a state transit gateway/backbone).
    state_gateway_prob: float = 0.35
    #: P(the state gateway is *small* in addresses/eyeballs, so only CTI can
    #: find it — the paper's Appendix D phenomenon).
    stealth_gateway_prob: float = 0.6
    #: Countries guaranteed a state-owned submarine-cable operator (the
    #: Figure 5 archetypes: Angola Cables, BSCCL).
    forced_cable_ccs: Tuple[str, ...] = ("AO", "BD")

    #: Foreign expansion: owner cc -> target ccs (paper Table 3 by default).
    expansion_profiles: Mapping[str, Tuple[str, ...]] = field(
        default_factory=lambda: dict(EXPANSION_PROFILES)
    )
    #: P(a foreign subsidiary is registered but runs no ASN of its own).
    asnless_subsidiary_prob: float = 0.12

    #: Number of BGP monitors to place.
    monitor_count: int = 40

    #: Share of countries with an excluded state-funded org (academic etc.).
    excluded_org_prob: float = 0.5

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ConfigError("scale must be positive")
        if abs(sum(self.ownership_structure_mix) - 1.0) > 1e-9:
            raise ConfigError("ownership_structure_mix must sum to 1")
        for table_name in ("incumbent_state_prob", "extra_state_operator_prob"):
            table = getattr(self, table_name)
            for region, prob in table.items():
                if not 0.0 <= prob <= 1.0:
                    raise ConfigError(
                        f"{table_name}[{region!r}] = {prob} out of [0, 1]"
                    )
        if len(self.access_operators_by_class) != 6:
            raise ConfigError("access_operators_by_class needs 6 entries")
        if len(self.tail_ases_by_class) != 6:
            raise ConfigError("tail_ases_by_class needs 6 entries")
        if len(self.addr_budget_by_class) != 6:
            raise ConfigError("addr_budget_by_class needs 6 entries")
        if len(self.eyeball_budget_by_class) != 6:
            raise ConfigError("eyeball_budget_by_class needs 6 entries")

    def scaled(self, count: int, minimum: int = 1) -> int:
        """Apply the global scale to an AS count."""
        return max(minimum, round(count * self.scale))

    @classmethod
    def small(cls, seed: int = 20210701) -> "WorldConfig":
        """A reduced world for unit/integration tests."""
        return cls(seed=seed, scale=0.3, monitor_count=16)

    @classmethod
    def tiny(cls, seed: int = 20210701) -> "WorldConfig":
        """A minimal world for fast property tests."""
        return cls(seed=seed, scale=0.12, monitor_count=8)


@dataclass
class SourceNoiseConfig:
    """Noise knobs for the derived data sources (one place, all sources)."""

    #: NetAcuity-style country-level accuracy (the paper cites 74-98 %).
    geolocation_accuracy: float = 0.97
    #: Fraction of ASes covered by the APNIC eyeball estimates.
    eyeball_coverage: float = 0.85
    #: Multiplicative log-normal error sigma on eyeball estimates.
    eyeball_noise_sigma: float = 0.25
    #: P(a WHOIS record carries a stale pre-rebrand name).
    whois_stale_prob: float = 0.10
    #: P(a WHOIS record of a foreign-subsidiary AS uses an unrelated local
    #: legal name — the Internexa/Transamerican case).
    whois_unrelated_alias_prob: float = 0.35
    #: Fraction of ASes registered in PeeringDB (paper: ~20 %).
    peeringdb_coverage: float = 0.20
    #: PeeringDB coverage multiplier for transit/large networks.
    peeringdb_transit_boost: float = 3.0
    #: P(AS2Org fails to cluster a sibling whose WHOIS name diverged).
    as2org_miss_prob: float = 0.25
    #: Orbis error rates (paper: 12 FPs, 140 FNs out of ~300/1000 scale).
    orbis_false_positive_rate: float = 0.045
    orbis_false_negative_rate_developing: float = 0.55
    orbis_false_negative_rate_emerging: float = 0.30
    orbis_false_negative_rate_advanced: float = 0.08
    #: Freedom House covers 65 countries; no false positives (§7).
    freedomhouse_country_count: int = 65
    freedomhouse_recall: float = 0.85
    #: Wikipedia article existence probability by dev tier (0, 1, 2).
    wikipedia_coverage: Tuple[float, float, float] = (0.65, 0.8, 0.92)
    wikipedia_recall: float = 0.8
    #: P(a confirmation document exists) per source type is configured in
    #: the documents source; this is the global ICT-adoption dampener for
    #: developing countries (§9 "visibility").
    developing_doc_penalty: float = 0.25

    def __post_init__(self) -> None:
        for name in (
            "geolocation_accuracy",
            "eyeball_coverage",
            "whois_stale_prob",
            "whois_unrelated_alias_prob",
            "peeringdb_coverage",
            "as2org_miss_prob",
            "orbis_false_positive_rate",
            "freedomhouse_recall",
            "wikipedia_recall",
            "developing_doc_penalty",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"{name} = {value} out of [0, 1]")


@dataclass
class PipelineConfig:
    """Parameters of the three-stage classification pipeline."""

    #: §4.1 market-share threshold for both geolocation and eyeball sources.
    candidate_share_threshold: float = 0.05
    #: §4.1: how many top-CTI ASes to take per eligible country.
    cti_top_k: int = 2
    #: Minimum CTI value for a top-k AS to be considered at all.
    cti_min_score: float = 0.02
    #: Name-similarity threshold for AS-to-company mapping.
    mapping_similarity_threshold: float = 0.7
    #: Minimum corroboration weight for confirming state ownership when the
    #: only evidence is a non-authoritative source.
    confirmation_min_weight: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.candidate_share_threshold < 1.0:
            raise ConfigError("candidate_share_threshold out of (0, 1)")
        if self.cti_top_k < 1:
            raise ConfigError("cti_top_k must be >= 1")
        if not 0.0 < self.mapping_similarity_threshold <= 1.0:
            raise ConfigError("mapping_similarity_threshold out of (0, 1]")


@dataclass
class ResilienceConfig:
    """Fault-tolerance knobs of one pipeline run.

    Applied at every I/O and fan-out boundary: source loaders, source
    queries, the persistent result cache and the process-pool workers.
    The backoff jitter is drawn from a stream seeded by ``seed``, so two
    runs with the same configuration retry at identical instants — chaos
    runs replay bit-identically.

    ``fail_fast`` restores the pre-resilience behavior: the first source
    that exhausts its retries aborts the run instead of being quarantined.
    """

    #: Attempts per call site (1 disables retrying).
    max_attempts: int = 3
    #: First backoff delay in seconds; grows by ``multiplier`` per attempt.
    base_delay: float = 0.02
    multiplier: float = 2.0
    #: Upper bound on any single backoff delay, in seconds.
    max_delay: float = 0.5
    #: Jitter amplitude as a fraction of the delay (0 disables jitter).
    jitter: float = 0.25
    #: Per-attempt wall-clock budget in seconds (None = unbounded).
    attempt_timeout: Optional[float] = None
    #: Consecutive failures that open a call site's circuit breaker.
    breaker_threshold: int = 5
    #: Seconds an open breaker waits before allowing a half-open probe.
    breaker_reset: float = 30.0
    #: Abort on the first exhausted source instead of degrading.
    fail_fast: bool = False
    #: Seed of the deterministic backoff-jitter stream.
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ConfigError("backoff delays must be >= 0")
        if self.multiplier < 1.0:
            raise ConfigError("multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigError(f"jitter = {self.jitter} out of [0, 1]")
        if self.breaker_threshold < 1:
            raise ConfigError("breaker_threshold must be >= 1")
        if self.breaker_reset < 0:
            raise ConfigError("breaker_reset must be >= 0")


@dataclass
class ParallelConfig:
    """Execution knobs of one pipeline run (parallelism + persistent cache).

    The defaults are fully serial with no on-disk cache, so library users
    and tests get the unsurprising behaviour; the CLI resolves ``--jobs`` /
    ``--backend`` (with ``REPRO_JOBS`` / ``REPRO_BACKEND`` fallbacks) and
    the cache directory (``REPRO_CACHE_DIR``, default ``~/.cache/repro``)
    into an explicit instance.  Every backend produces bit-identical
    pipeline output; only wall time changes.
    """

    #: Worker count; 1 means serial regardless of backend.
    jobs: int = 1
    #: One of ``serial`` / ``thread`` / ``process``.
    backend: str = "serial"
    #: Root of the persistent result cache; None disables on-disk caching.
    cache_dir: Optional[str] = None

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise invalid_jobs(self.jobs)
        if self.backend not in PARALLEL_BACKENDS:
            raise ConfigError(
                f"backend must be one of {PARALLEL_BACKENDS}, " f"got {self.backend!r}"
            )
