"""Stage spans: nested wall-clock timers with attached counters.

A :class:`Span` brackets one pipeline stage::

    with span("candidates") as sp:
        ...
        sp.incr("asns.geolocation", len(geo_asns))

On exit it records its wall time into the global :class:`~.metrics.Metrics`
registry (timing ``<dotted.path>``), folds its counters into the registry
(counter ``<dotted.path>.<key>``), and — only when a real sink is
configured — emits one structured event.  Nesting is tracked per thread:
a span opened inside another gets a dotted path (``pipeline.candidates``)
and a depth, which the text sink renders as indentation.

:class:`StageTimer` is an alias kept for call sites that read better with
the explicit name.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional, Union

from repro.obs.metrics import Metrics, get_metrics
from repro.obs.sink import EventSink, get_sink

__all__ = ["Span", "StageTimer", "current_span", "span"]

Number = Union[int, float]

_STACKS = threading.local()


def _stack() -> List["Span"]:
    stack = getattr(_STACKS, "spans", None)
    if stack is None:
        stack = []
        _STACKS.spans = stack
    return stack


def current_span() -> Optional["Span"]:
    """The innermost open span on this thread (None outside any span)."""
    stack = _stack()
    return stack[-1] if stack else None


class Span:
    """A nesting-aware stage timer with a local counter dict."""

    __slots__ = (
        "name",
        "path",
        "depth",
        "counters",
        "fields",
        "wall_s",
        "_metrics",
        "_sink",
        "_start",
        "_open",
    )

    def __init__(
        self,
        name: str,
        metrics: Optional[Metrics] = None,
        sink: Optional[EventSink] = None,
        **fields: object,
    ) -> None:
        self.name = name
        self.path = name
        self.depth = 0
        self.counters: Dict[str, Number] = {}
        self.fields: Dict[str, object] = dict(fields)
        self.wall_s: Optional[float] = None
        self._metrics = metrics
        self._sink = sink
        self._start = 0.0
        self._open = False

    # -- counter / field helpers ------------------------------------------
    def incr(self, key: str, value: Number = 1) -> None:
        """Add ``value`` to this span's counter ``key``."""
        self.counters[key] = self.counters.get(key, 0) + value

    def set(self, key: str, value: object) -> None:
        """Attach an informational field (not aggregated into metrics)."""
        self.fields[key] = value

    # -- context-manager protocol -----------------------------------------
    def __enter__(self) -> "Span":
        stack = _stack()
        if stack:
            parent = stack[-1]
            self.path = f"{parent.path}.{self.name}"
            self.depth = parent.depth + 1
        stack.append(self)
        self._open = True
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.wall_s = time.perf_counter() - self._start
        stack = _stack()
        if self._open and stack and stack[-1] is self:
            stack.pop()
        self._open = False
        metrics = self._metrics if self._metrics is not None else get_metrics()
        metrics.observe(self.path, self.wall_s)
        for key, value in self.counters.items():
            metrics.incr(f"{self.path}.{key}", value)
        sink = self._sink if self._sink is not None else get_sink()
        if sink.enabled:
            event: Dict[str, object] = {
                "event": "span",
                "name": self.path,
                "depth": self.depth,
                "wall_s": round(self.wall_s, 6),
            }
            if self.counters:
                event["counters"] = dict(self.counters)
            if self.fields:
                event["fields"] = dict(self.fields)
            if exc_type is not None:
                event["error"] = exc_type.__name__
            sink.emit(event)


#: Alias for call sites where "timer" reads better than "span".
StageTimer = Span


def span(name: str, **fields: object) -> Span:
    """A :class:`Span` bound to the global metrics registry and sink."""
    return Span(name, **fields)
