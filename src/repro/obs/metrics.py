"""Process-global metrics registry.

Three primitive families, mirroring what the pipeline needs to report:

* **counters** — monotonically accumulated floats/ints (candidates per
  source, origins pruned, cache hits...);
* **gauges** — last-value-wins measurements (world size, scale...);
* **timings** — observed durations per stage, summarized as count / total /
  mean / p50 / p95 / max.

The registry is deliberately tiny: plain dicts behind one lock, so that
instrumenting a hot loop costs a dictionary update and nothing else.  One
process-global instance (:func:`get_metrics`) is shared by every span and
every instrumented subsystem; :func:`reset_metrics` restores a clean slate
(used by tests and the benchmark harness).
"""

from __future__ import annotations

import math
import threading
from typing import Dict, List, Optional, Union

__all__ = ["Metrics", "get_metrics", "reset_metrics"]

Number = Union[int, float]


def _percentile(ordered: List[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted, non-empty list."""
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


class Metrics:
    """A thread-safe counter / gauge / timing registry."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Number] = {}
        self._gauges: Dict[str, Number] = {}
        self._timings: Dict[str, List[float]] = {}

    # -- writers -----------------------------------------------------------
    def incr(self, name: str, value: Number = 1) -> None:
        """Add ``value`` to the counter ``name`` (creating it at 0)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def gauge(self, name: str, value: Number) -> None:
        """Set the gauge ``name`` to ``value`` (last write wins)."""
        with self._lock:
            self._gauges[name] = value

    def observe(self, name: str, seconds: float) -> None:
        """Record one duration sample for the timing ``name``."""
        with self._lock:
            self._timings.setdefault(name, []).append(seconds)

    # -- readers -----------------------------------------------------------
    def counter(self, name: str) -> Number:
        with self._lock:
            return self._counters.get(name, 0)

    def gauge_value(self, name: str) -> Optional[Number]:
        with self._lock:
            return self._gauges.get(name)

    def timing_summary(self, name: str) -> Optional[Dict[str, float]]:
        """count/total/mean/p50/p95/max for one timing, or None if unseen."""
        with self._lock:
            samples = list(self._timings.get(name, ()))
        if not samples:
            return None
        ordered = sorted(samples)
        total = sum(ordered)
        return {
            "count": len(ordered),
            "total_s": total,
            "mean_s": total / len(ordered),
            "p50_s": _percentile(ordered, 0.50),
            "p95_s": _percentile(ordered, 0.95),
            "max_s": ordered[-1],
        }

    def snapshot(self) -> Dict[str, object]:
        """A JSON-serializable copy of everything recorded so far."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            timing_names = list(self._timings)
        return {
            "counters": counters,
            "gauges": gauges,
            "timings": {name: self.timing_summary(name) for name in timing_names},
        }

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._timings.clear()


_GLOBAL = Metrics()


def get_metrics() -> Metrics:
    """The process-global registry every instrumented subsystem shares."""
    return _GLOBAL


def reset_metrics() -> None:
    """Clear the process-global registry (tests, benchmark harness)."""
    _GLOBAL.reset()
