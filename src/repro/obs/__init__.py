"""Lightweight pipeline observability: spans, metrics, event sinks.

Three pieces, each usable alone:

* :class:`~repro.obs.span.Span` / :class:`~repro.obs.span.StageTimer` —
  nesting context managers that time a stage and carry a counter dict;
* :class:`~repro.obs.metrics.Metrics` — a process-global registry of
  counters, gauges and timing histograms (p50/p95 summaries);
* the event sinks (:mod:`repro.obs.sink`) — no-op by default, switchable
  to human-readable trace lines or JSON-lines via :func:`configure`, the
  CLI flags ``--trace`` / ``--log-json``, or the environment variables
  ``REPRO_TRACE`` / ``REPRO_LOG_JSON``.

The default configuration is a null sink plus dict-update-cheap metrics,
so instrumented code paths stay within noise of the uninstrumented ones.
"""

from repro.obs.metrics import Metrics, get_metrics, reset_metrics
from repro.obs.sink import (
    CompositeSink,
    EventSink,
    JsonLinesSink,
    NullSink,
    TextSink,
    configure,
    configure_from_env,
    get_sink,
    set_sink,
)
from repro.obs.span import Span, StageTimer, current_span, span

__all__ = [
    "Metrics",
    "get_metrics",
    "reset_metrics",
    "EventSink",
    "NullSink",
    "TextSink",
    "JsonLinesSink",
    "CompositeSink",
    "configure",
    "configure_from_env",
    "get_sink",
    "set_sink",
    "Span",
    "StageTimer",
    "current_span",
    "span",
]

# Library embedders get tracing without touching the CLI.
configure_from_env()
