"""Structured event sinks: where span/trace events go.

The default sink is a :class:`NullSink` that drops everything — the
instrumented code paths stay within a few dictionary operations of the
uninstrumented ones.  Two real sinks exist:

* :class:`TextSink` — human-readable ``[trace]`` lines (``--trace``);
* :class:`JsonLinesSink` — one JSON object per line (``--log-json PATH``),
  machine-parseable for offline analysis.

:func:`configure` installs sinks process-wide (both can be active at once);
:func:`configure_from_env` honours ``REPRO_TRACE`` / ``REPRO_LOG_JSON`` so
library embedders get tracing without touching the CLI.
"""

from __future__ import annotations

import json
import os
import sys
from typing import Dict, IO, List, Optional, Union

__all__ = [
    "EventSink",
    "NullSink",
    "TextSink",
    "JsonLinesSink",
    "CompositeSink",
    "configure",
    "configure_from_env",
    "get_sink",
    "set_sink",
]


class EventSink:
    """Receives structured event dicts.  The base class drops them."""

    #: Fast-path flag: instrumentation skips event assembly when False.
    enabled = False

    def emit(self, event: Dict[str, object]) -> None:  # pragma: no cover
        pass

    def close(self) -> None:
        pass


class NullSink(EventSink):
    """Discards every event (the default)."""


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


class TextSink(EventSink):
    """Human-readable trace lines, indented by span depth."""

    enabled = True

    def __init__(self, stream: Optional[IO[str]] = None) -> None:
        self._stream = stream if stream is not None else sys.stderr

    def emit(self, event: Dict[str, object]) -> None:
        name = event.get("name", "?")
        pad = "  " * int(event.get("depth", 0) or 0)
        parts: List[str] = []
        if "wall_s" in event:
            parts.append(f"{float(event['wall_s']) * 1000.0:.1f} ms")
        counters = event.get("counters") or {}
        if isinstance(counters, dict):
            parts.extend(f"{key}={_fmt(val)}" for key, val in sorted(counters.items()))
        fields = event.get("fields") or {}
        if isinstance(fields, dict):
            parts.extend(f"{key}={_fmt(val)}" for key, val in sorted(fields.items()))
        detail = "  ".join(parts)
        print(
            f"[trace] {pad}{name}" + (f": {detail}" if detail else ""),
            file=self._stream,
        )
        try:
            self._stream.flush()
        except (AttributeError, ValueError):
            pass


class JsonLinesSink(EventSink):
    """One compact JSON object per event, appended to a file or stream."""

    enabled = True

    def __init__(self, target: Union[str, os.PathLike, IO[str]]) -> None:
        if hasattr(target, "write"):
            self._stream: IO[str] = target  # type: ignore[assignment]
            self._owned = False
        else:
            self._stream = open(os.fspath(target), "a", encoding="utf-8")
            self._owned = True

    def emit(self, event: Dict[str, object]) -> None:
        self._stream.write(json.dumps(event, sort_keys=True, default=str) + "\n")
        try:
            self._stream.flush()
        except (AttributeError, ValueError):
            pass

    def close(self) -> None:
        if self._owned:
            self._stream.close()


class CompositeSink(EventSink):
    """Fans each event out to several sinks (e.g. text + JSON-lines)."""

    enabled = True

    def __init__(self, sinks: List[EventSink]) -> None:
        self._sinks = list(sinks)

    def emit(self, event: Dict[str, object]) -> None:
        for sink in self._sinks:
            sink.emit(event)

    def close(self) -> None:
        for sink in self._sinks:
            sink.close()


_SINK: EventSink = NullSink()


def get_sink() -> EventSink:
    """The process-global event sink (NullSink unless configured)."""
    return _SINK


def set_sink(sink: Optional[EventSink]) -> EventSink:
    """Install ``sink`` globally (None restores the no-op); returns the old."""
    global _SINK
    previous = _SINK
    _SINK = sink if sink is not None else NullSink()
    return previous


def configure(
    trace: bool = False,
    log_json: Optional[Union[str, os.PathLike, IO[str]]] = None,
    stream: Optional[IO[str]] = None,
) -> EventSink:
    """Install sinks for the requested outputs and return the active sink.

    ``trace`` turns on human-readable lines (to ``stream`` or stderr);
    ``log_json`` appends JSON-lines to a path or writable stream.  With
    neither, the no-op sink is (re)installed.
    """
    previous = set_sink(None)
    previous.close()
    sinks: List[EventSink] = []
    if trace:
        sinks.append(TextSink(stream))
    if log_json is not None:
        sinks.append(JsonLinesSink(log_json))
    if not sinks:
        return get_sink()
    set_sink(sinks[0] if len(sinks) == 1 else CompositeSink(sinks))
    return get_sink()


def configure_from_env(environ: Optional[Dict[str, str]] = None) -> EventSink:
    """Honour ``REPRO_TRACE`` (truthy) and ``REPRO_LOG_JSON`` (a path)."""
    env = os.environ if environ is None else environ
    trace = env.get("REPRO_TRACE", "").strip().lower() not in (
        "",
        "0",
        "false",
        "no",
        "off",
    )
    log_json = env.get("REPRO_LOG_JSON") or None
    if trace or log_json:
        return configure(trace=trace, log_json=log_json)
    return get_sink()
