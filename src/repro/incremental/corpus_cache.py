"""A query-memoizing confirmation corpus that survives snapshot deltas.

Profiling puts the mapping + confirmation stages at roughly the same cost
as the CTI sweep, and almost all of it is fuzzy name search:
``find_documents`` similarity-scores every token-index candidate for every
WHOIS/PeeringDB name, every company candidate and every ownership-chain
hop.  Between two monthly snapshots the corpus barely changes — a churn
event touches the documents of a handful of operators — so the vast
majority of query answers are still exact.

:class:`CachingCorpus` memoizes ``find_documents`` and ``find_by_domain``
per query, and :func:`corpus_delta` computes which cached answers a new
corpus invalidates.  The soundness argument:

* ``find_documents`` candidates come **only** from the subject-name token
  index; a query none of whose tokens appears in any changed document can
  never have matched, and can never come to match, a changed document.
* Result order is a stable sort on (source authority, -score); unchanged
  documents keep their relative corpus order across snapshots (the
  builder emits operators in sorted entity order), so tie-breaks within
  an all-unchanged result list are identical.
* ``find_by_domain`` is an exact host lookup, invalidated when any
  changed document lives on that host.

Documents are frozen (value-hashable) dataclasses, so "changed" is a
value-level symmetric difference — a document re-emitted byte-for-byte by
the new builder does not dirty anything.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.incremental.fingerprints import name_token_set
from repro.obs import get_metrics
from repro.sources.documents import ConfirmationCorpus, Document

__all__ = ["CachingCorpus", "CorpusDelta", "corpus_delta"]


def _doc_host(doc: Document) -> str:
    return doc.url.split("//", 1)[-1].split("/", 1)[0].lower()


@dataclass(frozen=True)
class CorpusDelta:
    """What changed between two document corpora."""

    changed_docs: int
    dirty_tokens: FrozenSet[str]
    dirty_domains: FrozenSet[str]

    @property
    def is_empty(self) -> bool:
        return self.changed_docs == 0


def corpus_delta(
    old_documents: List[Document], new_documents: List[Document]
) -> CorpusDelta:
    """Value-level symmetric difference of two corpora, as dirty sets."""
    old_set = set(old_documents)
    new_set = set(new_documents)
    changed = old_set.symmetric_difference(new_set)
    dirty_tokens: Set[str] = set()
    dirty_domains: Set[str] = set()
    for doc in changed:
        for name in doc.subject_names:
            dirty_tokens |= name_token_set(name)
        dirty_domains.add(_doc_host(doc))
    return CorpusDelta(
        changed_docs=len(changed),
        dirty_tokens=frozenset(dirty_tokens),
        dirty_domains=frozenset(dirty_domains),
    )


@dataclass
class _QueryStats:
    """Per-snapshot reuse accounting for provenance records."""

    seeded: int = 0
    hits: int = 0
    computed: int = 0
    domain_hits: int = 0
    domain_computed: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "queries_seeded": self.seeded,
            "queries_served": self.hits,
            "queries_computed": self.computed,
            "domain_served": self.domain_hits,
            "domain_computed": self.domain_computed,
        }


class CachingCorpus(ConfirmationCorpus):
    """A :class:`ConfirmationCorpus` with a carry-forward query memo.

    Drop-in everywhere the pipeline consumes a corpus (mapper,
    canonicalization, the ownership analyst): the full corpus API is
    inherited; only the two query entry points memoize.
    """

    def __init__(self, documents: List[Document]) -> None:
        super().__init__(documents)
        #: (query string, min_similarity) -> result list.
        self._query_memo: Dict[Tuple[str, float], List[Document]] = {}
        self._domain_memo: Dict[str, List[Document]] = {}
        self.stats = _QueryStats()

    # -- memoized query surface --------------------------------------------
    def find_documents(
        self, company_name: str, min_similarity: float = 0.72
    ) -> List[Document]:
        key = (company_name, min_similarity)
        cached = self._query_memo.get(key)
        if cached is not None:
            self.stats.hits += 1
            return list(cached)
        result = super().find_documents(company_name, min_similarity)
        self._query_memo[key] = list(result)
        self.stats.computed += 1
        return result

    def find_by_domain(self, domain: str) -> List[Document]:
        key = domain.lower()
        cached = self._domain_memo.get(key)
        if cached is not None:
            self.stats.domain_hits += 1
            return list(cached)
        result = super().find_by_domain(domain)
        self._domain_memo[key] = list(result)
        self.stats.domain_computed += 1
        return result

    # -- cross-snapshot carry ----------------------------------------------
    def seed_from(
        self,
        previous: "CachingCorpus",
        delta: Optional[CorpusDelta] = None,
    ) -> int:
        """Adopt the previous snapshot's still-valid query answers.

        An entry survives when none of its query tokens is dirty (token
        disjointness ⇒ its candidate set consists purely of unchanged
        documents ⇒ the memoized answer is exact against this corpus).
        Domain entries survive when the host saw no document change.
        Returns the number of entries seeded.
        """
        dirty_tokens = delta.dirty_tokens if delta is not None else frozenset()
        dirty_domains = delta.dirty_domains if delta is not None else frozenset()
        seeded = 0
        for (name, min_sim), docs in previous._query_memo.items():
            if dirty_tokens and (name_token_set(name) & dirty_tokens):
                continue
            self._query_memo[(name, min_sim)] = list(docs)
            seeded += 1
        for host, docs in previous._domain_memo.items():
            if host in dirty_domains:
                continue
            self._domain_memo[host] = list(docs)
            seeded += 1
        self.stats.seeded = seeded
        get_metrics().incr("incremental.corpus_seeded", seeded)
        return seeded
