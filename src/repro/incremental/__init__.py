"""Delta-driven incremental recompute (the longitudinal maintain engine).

A monthly ownership-churn event (privatization, nationalization, a new
foreign subsidiary — :mod:`repro.world.events`) dirties a few percent of a
world, yet a cold pipeline run pays the full CTI sweep, the full mapping
pass and every confirmation investigation again.  This package computes
what a snapshot's delta actually invalidates and recomputes only that:

* :mod:`.fingerprints` — content digests of the layers the expensive
  stages depend on (routing = graph adjacency + monitors, prefix table,
  geolocation view) plus the dirty-token calculus for corpus deltas;
* :mod:`.corpus_cache` — a query-memoizing
  :class:`~repro.sources.documents.ConfirmationCorpus` whose entries carry
  across snapshots when the documents they were answered from are
  untouched;
* :mod:`.engine` — the :class:`IncrementalEngine` that carries CTI terms,
  score maps, corpus query results and confirmation verdicts from one
  snapshot to the next, serving everything the delta did not dirty and
  recording per-snapshot provenance (``dirty_origins``,
  ``reused_fraction``, wall time).

Correctness bar: an incremental snapshot's exports are **byte-identical**
to a cold full recompute of the same world state (enforced by the
randomized event-sequence equivalence tests and ``repro maintain
--verify``).
"""

from repro.incremental.corpus_cache import CachingCorpus, CorpusDelta, corpus_delta
from repro.incremental.engine import IncrementalEngine, SnapshotRun
from repro.incremental.fingerprints import (
    geolocation_fingerprint,
    prefix_fingerprint,
    routing_fingerprint,
)

__all__ = [
    "CachingCorpus",
    "CorpusDelta",
    "corpus_delta",
    "IncrementalEngine",
    "SnapshotRun",
    "geolocation_fingerprint",
    "prefix_fingerprint",
    "routing_fingerprint",
]
