"""The delta-driven incremental recompute engine.

One :class:`IncrementalEngine` instance walks a sequence of world
snapshots (typically produced by :mod:`repro.world.events` churn between
calls) and runs the full pipeline on each, recomputing only what each
delta invalidates:

* **CTI transit terms** are keyed on the routing fingerprint (graph
  adjacency + monitors).  Churn events never touch the graph, so on a
  warm snapshot every walked origin's terms are reused — the dominant
  cost of the cold pipeline drops to zero.
* **Per-country CTI score maps** are additionally keyed on the country's
  address-weight slice digest; an unchanged slice replays to the same
  float sums, so the previous score map is byte-exact.
* **The prefix trie** (and the whole :class:`Prefix2ASTable`) is carried
  when the announced-prefix fingerprint is unchanged.
* **Corpus query answers** survive via the dirty-token calculus of
  :mod:`repro.incremental.corpus_cache`.
* **Confirmation verdicts** survive when their recorded query footprint
  is disjoint from the dirty tokens (:meth:`OwnershipAnalyst.seed_memo`).

Everything reused is provably identical to what a cold recompute would
produce, so incremental exports are byte-identical to cold ones — the
equivalence suite and ``repro maintain --verify`` both enforce that.

Reused artifacts are also spilled to two fine-grained
:class:`~repro.parallel.ResultCache` sections — ``cti-terms`` (one blob
per origin, keyed on the origin-local fingerprint) and ``cti-scores``
(one blob per country) — so a fresh process warm-starts from disk.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.config import (
    ParallelConfig,
    PipelineConfig,
    ResilienceConfig,
    SourceNoiseConfig,
)
from repro.core.confirmation import ConfirmationVerdict, OwnershipAnalyst
from repro.core.pipeline import (
    PipelineInputs,
    PipelineResult,
    StateOwnershipPipeline,
)
from repro.cti.metric import CTIComputer, TransitTerm
from repro.incremental.corpus_cache import CachingCorpus, corpus_delta
from repro.incremental.fingerprints import (
    country_score_key,
    country_slice_digest,
    geolocation_fingerprint,
    origin_term_key,
    prefix_fingerprint,
    routing_fingerprint,
)
from repro.obs import get_metrics, span
from repro.parallel import ResultCache, stable_digest
from repro.sources.documents import Document
from repro.sources.prefix2as import Prefix2ASTable

__all__ = ["IncrementalEngine", "SnapshotRun"]

#: ResultCache section for per-origin transit-term blobs.
_TERMS_SECTION = "cti-terms"
#: ResultCache section for per-country score-map blobs.
_SCORES_SECTION = "cti-scores"


def _manifest_key(routing_fp: str) -> str:
    """Key of the per-routing-view manifest listing persisted origins."""
    return stable_digest({"manifest": routing_fp})


def _decode_terms(payload: Dict[str, object]) -> Tuple[TransitTerm, ...]:
    return tuple((int(asn), float(w), int(d)) for asn, w, d in payload.get("terms", ()))


@dataclass
class SnapshotRun:
    """One snapshot's pipeline result plus its incremental provenance."""

    result: PipelineResult
    inputs: PipelineInputs
    #: What was reused vs recomputed: ``dirty_origins``,
    #: ``reused_fraction``, ``wall_s``, per-layer counters and the event
    #: descriptions that produced this snapshot.
    provenance: Dict[str, object] = field(default_factory=dict)


class IncrementalEngine:
    """Runs the pipeline over successive snapshots with minimal recompute.

    The engine carries forward, between :meth:`run_snapshot` calls: the
    three layer fingerprints, the prefix table, the CTI computer (terms +
    score maps), the memoizing corpus and the analyst's verdict memo with
    its query footprints.  Each new snapshot is fingerprinted, the dirty
    set is derived, and only the invalidated artifacts are rebuilt.
    """

    def __init__(
        self,
        config: Optional[PipelineConfig] = None,
        noise: Optional[SourceNoiseConfig] = None,
        resilience: Optional[ResilienceConfig] = None,
        parallel: Optional[ParallelConfig] = None,
        cache: Optional[ResultCache] = None,
    ) -> None:
        self._config = config or PipelineConfig()
        self._noise = noise or SourceNoiseConfig()
        self._resilience = resilience or ResilienceConfig()
        self._parallel = parallel or ParallelConfig()
        self._cache = cache
        # -- carried state (None / empty until the first snapshot runs) --
        self._routing_fp: Optional[str] = None
        self._prefix_fp: Optional[str] = None
        self._geo_fp: Optional[str] = None
        self._prefix2as: Optional[Prefix2ASTable] = None
        self._documents: List[Document] = []
        self._corpus: Optional[CachingCorpus] = None
        self._cti: Optional[CTIComputer] = None
        self._term_carry: Dict[int, Tuple[TransitTerm, ...]] = {}
        self._score_slices: Dict[str, Tuple[str, Dict[int, float]]] = {}
        self._analyst_state: Optional[
            Tuple[
                Dict[str, ConfirmationVerdict],
                Dict[str, Tuple[str, ...]],
                Set[str],
                Dict[str, ConfirmationVerdict],
            ]
        ] = None
        #: Cache keys already written this engine lifetime (skip re-puts).
        self._persisted: Set[Tuple[str, str]] = set()

    # -- the one public entry point ----------------------------------------
    def run_snapshot(
        self,
        world,
        context=None,
        events: Sequence[str] = (),
    ) -> SnapshotRun:
        """Run the pipeline on ``world``, reusing everything still valid.

        ``world`` is typically the same object as last time, mutated in
        place by churn events — but any world works; the fingerprints, not
        object identity, decide what is reused.  ``events`` is recorded in
        the provenance verbatim.
        """
        t0 = time.perf_counter()
        metrics = get_metrics()
        walked_before = metrics.counter("cti.origins_walked")
        scored_before = metrics.counter("cti.countries_computed")
        served_before = metrics.counter("cti.cache_hits")

        with span("incremental.fingerprint"):
            routing_fp = routing_fingerprint(world)
            prefix_fp = prefix_fingerprint(world)
            geo_fp = geolocation_fingerprint(world, self._noise)
        routing_reused = routing_fp == self._routing_fp
        prefix_reused = self._prefix2as is not None and prefix_fp == self._prefix_fp

        inputs = PipelineInputs.from_world(
            world,
            noise=self._noise,
            resilience=self._resilience,
            prefix2as=self._prefix2as if prefix_reused else None,
        )

        # -- corpus layer: wrap, diff, seed --------------------------------
        documents = inputs.corpus.all_documents()
        corpus = CachingCorpus(documents)
        delta = None
        if self._corpus is not None:
            delta = corpus_delta(self._documents, documents)
            corpus.seed_from(self._corpus, delta)
        inputs.corpus = corpus
        dirty_tokens: Set[str] = set(delta.dirty_tokens) if delta else set()

        # -- confirmation layer: seed the analyst memo ---------------------
        analyst = OwnershipAnalyst(corpus, self._config)
        seeded_verdicts = 0
        if self._analyst_state is not None:
            memo, footprints, volatile, minority_log = self._analyst_state
            seeded_verdicts = analyst.seed_memo(
                memo, footprints, volatile, minority_log, dirty_tokens
            )

        # -- CTI layer: carry / preload ------------------------------------
        carried_computer = (
            routing_reused
            and prefix_fp == self._prefix_fp
            and geo_fp == self._geo_fp
            and self._cti is not None
        )
        terms_preloaded = 0
        scores_seeded = 0
        if carried_computer:
            # The whole routing/prefix/geolocation view is unchanged, so
            # the previous computer — terms, weight index and every score
            # map — is exact as-is.
            cti = self._cti
        else:
            cti = CTIComputer(inputs.prefix2as, inputs.geolocation, inputs.collector)
            if routing_reused and self._term_carry:
                cti.preload_terms(self._term_carry)
                terms_preloaded = len(self._term_carry)
            # Disk-tier keys embed the *current* fingerprints, so lookups
            # are sound even on a fresh engine with no carried state.
            scores_seeded = self._seed_scores(cti, routing_fp, inputs)
            terms_preloaded += self._load_terms(cti, routing_fp)

        # -- run the pipeline with the prepared artifacts ------------------
        pipeline = StateOwnershipPipeline(
            inputs,
            config=self._config,
            parallel=self._parallel,
            resilience=self._resilience,
            context=context,
            cti_computer=cti,
            analyst=analyst,
        )
        result = pipeline.run()

        # -- accounting ----------------------------------------------------
        dirty_origins = metrics.counter("cti.origins_walked") - walked_before
        countries_computed = metrics.counter("cti.countries_computed") - scored_before
        scores_served = metrics.counter("cti.cache_hits") - served_before
        reused = corpus.stats.hits + seeded_verdicts + terms_preloaded + scores_served
        fresh = corpus.stats.computed + dirty_origins + countries_computed
        reused_fraction = reused / (reused + fresh) if (reused + fresh) else 0.0
        metrics.incr("incremental.snapshots")
        metrics.incr("incremental.dirty_origins", dirty_origins)

        # -- persist + carry for the next snapshot -------------------------
        if result.cti_selection is not None:
            self._persist(cti, routing_fp)
            self._cti = cti
            self._term_carry = cti.term_snapshot()
            if not carried_computer:
                self._score_slices = self._slice_snapshot(cti, inputs)
        self._routing_fp = routing_fp
        self._prefix_fp = prefix_fp
        self._geo_fp = geo_fp
        self._prefix2as = inputs.prefix2as
        self._documents = documents
        self._corpus = corpus
        self._analyst_state = analyst.carry_state()

        provenance: Dict[str, object] = {
            "events": list(events),
            "computer_carried": carried_computer,
            "routing_reused": routing_reused,
            "trie_reused": prefix_reused,
            "dirty_origins": dirty_origins,
            "terms_preloaded": terms_preloaded,
            "scores_seeded": scores_seeded,
            "scores_served": scores_served,
            "countries_computed": countries_computed,
            "seeded_verdicts": seeded_verdicts,
            "corpus": corpus.stats.as_dict(),
            "corpus_changed_docs": delta.changed_docs if delta else 0,
            "reused_fraction": round(reused_fraction, 4),
            "wall_s": round(time.perf_counter() - t0, 3),
        }
        return SnapshotRun(result=result, inputs=inputs, provenance=provenance)

    # -- fine-grained persistent tiers -------------------------------------
    def _load_terms(self, cti: CTIComputer, routing_fp: str) -> int:
        """Warm-start transit terms from the per-origin disk tier.

        Only worth the file reads when the in-memory carry is empty (a
        fresh engine in a new process); origins already held are skipped.
        """
        if self._cache is None or self._term_carry:
            return 0
        manifest = self._cache.get(_TERMS_SECTION, _manifest_key(routing_fp))
        if not manifest:
            return 0
        held = cti.term_snapshot()
        loaded: Dict[int, Tuple[TransitTerm, ...]] = {}
        for origin in manifest.get("origins", ()):
            origin = int(origin)
            if origin in held:
                continue
            payload = self._cache.get(
                _TERMS_SECTION, origin_term_key(routing_fp, origin)
            )
            if payload is not None:
                loaded[origin] = _decode_terms(payload)
        if loaded:
            cti.preload_terms(loaded)
            get_metrics().incr("incremental.terms_loaded", len(loaded))
        return len(loaded)

    def _seed_scores(
        self, cti: CTIComputer, routing_fp: str, inputs: PipelineInputs
    ) -> int:
        """Preload per-country score maps whose weight slice is unchanged.

        Sound because a country's score map is a pure function of the
        routing view (terms), its (origin, weight) column span + total,
        and the prune threshold — all captured by the key.  The in-memory
        slice carry was computed under ``self._routing_fp``, so it is only
        consulted when the routing view is unchanged; the disk tier keys
        on ``routing_fp`` directly and is always sound.
        """
        carry_valid = routing_fp == self._routing_fp and self._score_slices
        if not carry_valid and self._cache is None:
            return 0
        seeded: Dict[str, Dict[int, float]] = {}
        index = cti.weight_index
        for cc in inputs.cti_eligible_ccs:
            digest = country_slice_digest(index, cc)
            held = self._score_slices.get(cc) if carry_valid else None
            if held is not None and held[0] == digest:
                seeded[cc] = held[1]
                continue
            if self._cache is not None:
                payload = self._cache.get(
                    _SCORES_SECTION,
                    country_score_key(routing_fp, digest, cti.min_address_fraction),
                )
                if payload is not None:
                    seeded[cc] = {
                        int(asn): float(score)
                        for asn, score in payload.get("scores", {}).items()
                    }
        if seeded:
            cti.preload_scores(seeded)
            get_metrics().incr("incremental.scores_seeded", len(seeded))
        return len(seeded)

    def _slice_snapshot(
        self, cti: CTIComputer, inputs: PipelineInputs
    ) -> Dict[str, Tuple[str, Dict[int, float]]]:
        """(slice digest, score map) per eligible country, for carrying."""
        index = cti.weight_index
        scores = cti.computed_scores()
        return {
            cc: (country_slice_digest(index, cc), scores.get(cc, {}))
            for cc in inputs.cti_eligible_ccs
        }

    def _persist(self, cti: CTIComputer, routing_fp: str) -> None:
        """Spill terms and score maps to the fine-grained disk tiers."""
        if self._cache is None:
            return
        terms = cti.term_snapshot()
        manifest_key = _manifest_key(routing_fp)
        manifest = self._cache.get(_TERMS_SECTION, manifest_key) or {}
        known: Set[int] = {int(o) for o in manifest.get("origins", ())}
        new_origins = []
        for origin, origin_terms in terms.items():
            key = origin_term_key(routing_fp, origin)
            if (_TERMS_SECTION, key) in self._persisted:
                continue
            self._cache.put(
                _TERMS_SECTION,
                key,
                {"terms": [list(term) for term in origin_terms]},
            )
            self._persisted.add((_TERMS_SECTION, key))
            if origin not in known:
                new_origins.append(origin)
        if new_origins:
            self._cache.put(
                _TERMS_SECTION,
                manifest_key,
                {"origins": sorted(known | set(new_origins))},
            )
        if cti._index is None:
            # No weight index was built this snapshot (every score came
            # preloaded), so the slice digests — and therefore the score
            # keys — are unchanged from what is already on disk.
            return
        index = cti.weight_index
        for cc, scores in cti.computed_scores().items():
            key = country_score_key(
                routing_fp,
                country_slice_digest(index, cc),
                cti.min_address_fraction,
            )
            if (_SCORES_SECTION, key) in self._persisted:
                continue
            self._cache.put(
                _SCORES_SECTION,
                key,
                {"scores": {str(asn): score for asn, score in scores.items()}},
            )
            self._persisted.add((_SCORES_SECTION, key))
