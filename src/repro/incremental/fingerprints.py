"""Layer fingerprints: what each expensive stage actually depends on.

The invalidation lattice (DESIGN.md) keys every reusable artifact on a
content digest of exactly the world state it was computed from:

* per-origin CTI transit terms depend on the **routing view** — graph
  adjacency plus monitor placement (:func:`routing_fingerprint`);
* the per-country address-weight index depends on the **announced prefix
  table** (:func:`prefix_fingerprint`) and the **geolocation view**
  (:func:`geolocation_fingerprint`);
* corpus query results and confirmation verdicts depend on the documents
  sharing name tokens with the query (:func:`name_token_set`, used by the
  dirty-token calculus in :mod:`repro.incremental.corpus_cache`).

Digesting the routing view walks every edge, so the result is memoized per
graph object keyed by :class:`~repro.net.topology.ASGraph`'s mutation
counter (``_version``) — an unchanged graph re-fingerprints in O(1), which
is what makes per-snapshot fingerprint checks essentially free in a
maintain loop that mutates the world in place.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Set, Tuple
from weakref import WeakKeyDictionary

from repro.parallel.cache import stable_digest
from repro.text.normalize import name_tokens

__all__ = [
    "geolocation_fingerprint",
    "prefix_fingerprint",
    "routing_fingerprint",
    "name_token_set",
    "dirty_tokens_of_names",
    "tokens_overlap",
]

#: graph object -> (graph._version, monitors digest component, fingerprint).
_ROUTING_MEMO: "WeakKeyDictionary" = WeakKeyDictionary()


def routing_fingerprint(world) -> str:
    """Digest of the routing view: graph adjacency + monitor placement.

    Everything a per-origin transit-term walk reads — the provider/peer
    edges the route trees traverse and the monitors (with their host-AS
    weighting) the walk iterates.  Two worlds with equal routing
    fingerprints produce bit-identical transit terms for every origin.
    """
    graph = world.graph
    monitors = tuple((m.monitor_id, m.host_asn) for m in world.monitors)
    version = getattr(graph, "_version", None)
    memo = _ROUTING_MEMO.get(graph)
    if memo is not None and memo[0] == version and memo[1] == monitors:
        return memo[2]
    edges = {
        str(asn): [graph.providers_of(asn), graph.peers_of(asn)] for asn in graph.asns
    }
    fingerprint = stable_digest(
        {"edges": edges, "monitors": [list(m) for m in monitors]}
    )
    if version is not None:
        _ROUTING_MEMO[graph] = (version, monitors, fingerprint)
    return fingerprint


def prefix_fingerprint(world) -> str:
    """Digest of the announced (prefix, origin) table.

    Keys the :class:`~repro.sources.prefix2as.Prefix2ASTable` (and its
    trie): an unchanged fingerprint means the sorted table, the trie and
    the flat SoA counts from the previous snapshot are all still exact.
    """
    rows = sorted(
        (prefix.base, prefix.length, origin) for prefix, origin in world.prefix_table()
    )
    return stable_digest({"prefixes": [list(row) for row in rows]})


def geolocation_fingerprint(world, noise=None) -> str:
    """Digest of everything the geolocation service answers from.

    The service is a pure function of the per-ASN true country map, the
    country list, the noise config and the world seed — so this digest
    keys the per-country address-weight index it feeds.
    """
    import dataclasses

    payload = {
        "true_cc": {str(asn): record.cc for asn, record in world.asn_records.items()},
        "ccs": [c.cc for c in world.countries],
        "seed": world.config.seed,
        "noise": dataclasses.asdict(noise) if noise is not None else None,
    }
    return stable_digest(payload)


def name_token_set(name: str) -> FrozenSet[str]:
    """The normalized token set of a company/subject name."""
    return frozenset(name_tokens(name))


def dirty_tokens_of_names(names: Iterable[str]) -> Set[str]:
    """Union of name tokens over the subject names of changed documents."""
    dirty: Set[str] = set()
    for name in names:
        dirty |= name_token_set(name)
    return dirty


def tokens_overlap(names: Iterable[str], dirty: Set[str]) -> bool:
    """True when any of ``names`` shares a token with the dirty set.

    A corpus query's candidate documents come exclusively from the token
    index, so a query string none of whose tokens is dirty can only have
    matched (and can only ever match) unchanged documents — its cached
    answer is still exact.
    """
    if not dirty:
        return False
    for name in names:
        if name_token_set(name) & dirty:
            return True
    return False


def origin_term_key(routing_fp: str, origin: int) -> str:
    """Persistent-cache key of one origin's transit terms (origin-local)."""
    return stable_digest({"routing": routing_fp, "origin": origin})


def country_score_key(
    routing_fp: str, slice_digest: str, min_address_fraction: float
) -> str:
    """Persistent-cache key of one country's CTI score map."""
    return stable_digest(
        {
            "routing": routing_fp,
            "slice": slice_digest,
            "min_address_fraction": min_address_fraction,
        }
    )


def country_slice_digest(index, cc: str) -> str:
    """Digest of one country's (origin, weight) column span + total.

    The per-country score map depends only on this slice, the origins'
    transit terms and the prune threshold — so an unchanged slice digest
    (plus an unchanged routing fingerprint) makes the previous snapshot's
    score map for ``cc`` exact.
    """
    span = index.span(cc)
    if span is None:
        rows: Tuple = ()
    else:
        start, end = span
        origins = index.origins
        weights = index.weights
        rows = tuple((int(origins[i]), int(weights[i])) for i in range(start, end))
    return stable_digest(
        {"cc": cc, "total": index.total(cc), "rows": [list(r) for r in rows]}
    )


def index_slice_digests(index, ccs: Iterable[str]) -> Dict[str, str]:
    """Slice digests for many countries in one pass."""
    return {cc: country_slice_digest(index, cc) for cc in ccs}
