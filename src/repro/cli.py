"""Command-line interface: ``python -m repro`` / ``state-owned-ases``.

Subcommands::

    generate   synthesize a world and print its ground-truth summary
    run        run the full pipeline and export the dataset (JSON/SQLite)
    report     run the pipeline and print the full evaluation report
    validate   run the pipeline and score it against the ground truth
    show       pretty-print organizations from a dataset file
    maintain   walk a monthly churn/snapshot sequence incrementally
    scenario   run adversarial scenario packs and assert expected shifts
    bench-diff compare committed BENCH_*.json trajectories for regressions

Examples::

    state-owned-ases run --scale 0.3 --json out.json --sqlite out.db
    state-owned-ases report --scale 0.3 > report.txt
    state-owned-ases show out.json --country NO
"""

from __future__ import annotations

import argparse
import os
import sqlite3
import sys
from typing import List, Optional

from repro.config import ParallelConfig, ResilienceConfig, WorldConfig
from repro.errors import ConfigError, DatasetError, ReproError
from repro.core import (
    PipelineInputs,
    StateOwnershipPipeline,
    validate_against_world,
)
from repro.parallel import (
    BACKENDS,
    ExecutionContext,
    ResultCache,
    resolve_cache_dir,
)
from repro.resilience import FaultPlan, install_fault_plan
from repro.world.worldcache import load_or_generate

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="state-owned-ases",
        description="Identify ASes of state-owned Internet operators "
        "(IMC 2021 reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_world_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--seed", type=int, default=20210701, help="world seed (default: 20210701)"
        )
        p.add_argument(
            "--scale",
            type=float,
            default=0.3,
            help="world size multiplier (default: 0.3)",
        )

    def add_obs_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--trace",
            action="store_true",
            help="print per-stage wall time and counters to stderr",
        )
        p.add_argument(
            "--log-json",
            metavar="PATH",
            help="append structured trace events as JSON-lines",
        )

    def add_resilience_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--inject-faults",
            metavar="SPEC",
            default=None,
            help="deterministic fault plan, e.g. "
            "'seed=42;source.orbis=fatal;cache.get=corrupt' "
            "(default: $REPRO_FAULTS)",
        )
        p.add_argument(
            "--fail-fast",
            action="store_true",
            help="abort on the first source failure instead of " "degrading the run",
        )

    def add_routing_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--routing",
            choices=("static", "policy"),
            default=None,
            help="route-propagation engine: 'static' Gao-Rexford "
            "trees (the oracle) or the 'policy' engine "
            "(default: $REPRO_ROUTING or static)",
        )

    def add_parallel_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--jobs",
            "-j",
            type=int,
            default=None,
            metavar="N",
            help="worker count (0 = all cores; default: " "$REPRO_JOBS or 1)",
        )
        p.add_argument(
            "--backend",
            choices=BACKENDS,
            default=None,
            help="execution backend (default: $REPRO_BACKEND, or "
            "'process' when --jobs > 1)",
        )
        p.add_argument(
            "--no-cache",
            action="store_true",
            help="disable the persistent result cache "
            "($REPRO_CACHE_DIR, default ~/.cache/repro)",
        )

    p_generate = sub.add_parser(
        "generate", help="synthesize a world and summarize its ground truth"
    )
    add_world_args(p_generate)

    p_run = sub.add_parser("run", help="run the pipeline and export the dataset")
    add_world_args(p_run)
    add_obs_args(p_run)
    add_routing_args(p_run)
    add_parallel_args(p_run)
    add_resilience_args(p_run)
    p_run.add_argument("--json", metavar="PATH", help="write dataset JSON")
    p_run.add_argument("--sqlite", metavar="PATH", help="write dataset SQLite")
    p_run.add_argument(
        "--cti-json",
        metavar="PATH",
        help="write the CTI rankings sidecar (default with " "--json: <PATH>.cti.json)",
    )

    p_report = sub.add_parser(
        "report", help="run the pipeline and print the evaluation report"
    )
    add_world_args(p_report)
    add_obs_args(p_report)
    add_routing_args(p_report)
    add_parallel_args(p_report)
    add_resilience_args(p_report)

    p_validate = sub.add_parser(
        "validate", help="run the pipeline and score against ground truth"
    )
    add_world_args(p_validate)
    add_obs_args(p_validate)
    add_routing_args(p_validate)
    add_parallel_args(p_validate)
    add_resilience_args(p_validate)

    p_show = sub.add_parser("show", help="print organizations from a dataset")
    p_show.add_argument("path", help="dataset .json or .db/.sqlite file")
    p_show.add_argument(
        "--country", metavar="CC", help="filter by operating country code"
    )

    p_churn = sub.add_parser(
        "churn", help="simulate ownership churn and measure dataset ageing"
    )
    add_world_args(p_churn)
    p_churn.add_argument(
        "--years", type=int, default=5, help="years of churn to simulate (default: 5)"
    )

    p_plan = sub.add_parser(
        "plan", help="run the pipeline and print a re-verification plan"
    )
    add_world_args(p_plan)
    p_plan.add_argument(
        "--top",
        type=int,
        default=15,
        help="number of organizations to list (default: 15)",
    )

    p_profile = sub.add_parser(
        "profile", help="run the pipeline and print one country's dossier"
    )
    add_world_args(p_profile)
    p_profile.add_argument("cc", help="ISO-3166 country code, e.g. NO")

    p_serve = sub.add_parser(
        "serve",
        help="serve a dataset over HTTP/JSON with hot-swap snapshot reload",
    )
    p_serve.add_argument("path", help="dataset .json file (a --json export)")
    p_serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)"
    )
    p_serve.add_argument(
        "--port", type=int, default=8645, help="TCP port (default: 8645; 0 = ephemeral)"
    )
    p_serve.add_argument(
        "--cti",
        metavar="PATH",
        default=None,
        help="CTI rankings sidecar (default: " "<dataset>.cti.json when present)",
    )
    p_serve.add_argument(
        "--poll-interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="snapshot change-poll interval (default: 2.0)",
    )

    p_maintain = sub.add_parser(
        "maintain",
        help="walk a monthly churn/snapshot sequence with incremental "
        "recompute, exporting one dataset per month",
    )
    add_world_args(p_maintain)
    add_obs_args(p_maintain)
    add_parallel_args(p_maintain)
    add_resilience_args(p_maintain)
    p_maintain.add_argument(
        "--out",
        required=True,
        metavar="DIR",
        help="directory for snapshot exports and the " "MAINTAIN.json manifest",
    )
    p_maintain.add_argument(
        "--months", type=int, default=6, help="number of monthly snapshots (default: 6)"
    )
    p_maintain.add_argument(
        "--start-year",
        type=int,
        default=2021,
        help="calendar year of the first snapshot " "(default: 2021)",
    )
    p_maintain.add_argument(
        "--start-month",
        type=int,
        default=7,
        help="calendar month of the first snapshot, " "1-12 (default: 7)",
    )
    p_maintain.add_argument(
        "--cold",
        action="store_true",
        help="recompute every snapshot from scratch "
        "(the incremental engine's baseline)",
    )
    p_maintain.add_argument(
        "--verify",
        action="store_true",
        help="cold-recompute each snapshot and fail "
        "unless the exports are byte-identical",
    )
    p_maintain.add_argument(
        "--publish",
        metavar="PATH",
        default=None,
        help="atomically install the newest snapshot "
        "(and sidecar) at PATH for `repro serve` "
        "hot swap",
    )

    p_scenario = sub.add_parser(
        "scenario",
        help="run adversarial scenario packs (depeering, leaks, hijacks, "
        "re-homing, privatization) and assert their expected shifts",
    )
    add_world_args(p_scenario)
    add_obs_args(p_scenario)
    add_parallel_args(p_scenario)
    p_scenario.add_argument(
        "packs", nargs="*", metavar="PACK", help="pack names to run (default: all)"
    )
    p_scenario.add_argument(
        "--list",
        action="store_true",
        dest="list_packs",
        help="list available packs and exit",
    )
    p_scenario.add_argument(
        "--json", metavar="PATH", help="write the canonical scenario report JSON"
    )

    p_bench_diff = sub.add_parser(
        "bench-diff",
        help="compare the last two records of each BENCH_*.json trajectory "
        "and fail on perf regressions",
    )
    p_bench_diff.add_argument(
        "--dir",
        default=".",
        metavar="PATH",
        help="directory holding BENCH_*.json files (default: .)",
    )
    p_bench_diff.add_argument(
        "--threshold",
        type=float,
        default=None,
        metavar="FRACTION",
        help="relative regression gate on tracked metrics (default: 0.20)",
    )
    p_bench_diff.add_argument(
        "--trend",
        action="store_true",
        help="report full multi-point trajectories (first/last/best/worst, "
        "slope, sparkline) instead of gating the last pair",
    )
    p_bench_diff.add_argument(
        "--pattern",
        default=None,
        metavar="GLOB",
        help="trajectory file glob relative to --dir "
        "(default: BENCH_*.json); lets a CI job gate one suite",
    )
    return parser


def _make_world(
    args: argparse.Namespace,
    cache: Optional[ResultCache] = None,
    context: Optional[ExecutionContext] = None,
):
    """Generate (or load from the blob cache) the configured world.

    Delegates to :func:`repro.world.worldcache.load_or_generate`, the
    shared load-or-generate path also used by the test fixtures and CI.
    A ``--routing policy`` request additionally installs a neutral
    routing policy, forcing every path lookup through the policy engine
    (path-identical to the static oracle, by the equivalence suite).
    """
    config = WorldConfig(seed=args.seed, scale=args.scale)
    world = load_or_generate(config, cache=cache, context=context)
    routing = getattr(args, "routing", None) or os.environ.get(
        "REPRO_ROUTING", "static"
    )
    if routing == "policy":
        from repro.net.routing import RoutingPolicy

        world.set_routing_policy(RoutingPolicy.build())
    return world


def _run_pipeline(
    world,
    parallel: Optional[ParallelConfig] = None,
    resilience: Optional[ResilienceConfig] = None,
    context: Optional[ExecutionContext] = None,
):
    inputs = PipelineInputs.from_world(world, resilience=resilience)
    result = StateOwnershipPipeline(
        inputs, parallel=parallel, resilience=resilience, context=context
    ).run()
    return inputs, result


#: Counters surfaced in the ``--trace`` end-of-run summary.
_SUMMARY_COUNTERS = (
    "cache.hits",
    "cache.misses",
    "cache.writes",
    "cache.corrupt",
    "cache.bytes_read",
    "cache.bytes_written",
    "parallel.pool_spawns",
    "parallel.pool_reuse",
    "parallel.state_ships",
    "parallel.pool_restarts",
    "parallel.requeued_tasks",
    "world.gen.renames",
    "runtime.state_bytes",
    "runtime.shm_bytes",
    "runtime.shm_segments",
    "runtime.shm_adopted",
    "runtime.attach",
    "cti.country_shards",
    "cti.terms_released",
)


def _peak_rss_gauges() -> dict:
    """Coordinator and reaped-children peak RSS, in bytes (Linux/mac)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platforms
        return {}
    # ru_maxrss is KB on Linux, bytes on macOS; normalize to bytes.
    unit = 1 if sys.platform == "darwin" else 1024
    return {
        "runtime.peak_rss_bytes":
            resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * unit,
        "runtime.peak_child_rss_bytes":
            resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss * unit,
    }


def _emit_run_summary() -> None:
    """Emit cache, worker-pool, and state-plane telemetry to the trace sink."""
    from repro.obs import get_metrics, get_sink

    sink = get_sink()
    if not getattr(sink, "enabled", False):
        return
    metrics = get_metrics()
    counters = {
        name: metrics.counter(name)
        for name in _SUMMARY_COUNTERS
        if metrics.counter(name)
    }
    gauges = _peak_rss_gauges()
    shm_live = metrics.gauge_value("runtime.shm_bytes_live")
    if shm_live:
        gauges["runtime.shm_bytes_live"] = shm_live
    sink.emit(
        {
            "event": "summary",
            "name": "run.summary",
            "depth": 0,
            "counters": counters,
            "gauges": gauges,
        }
    )


def _make_resilience_config(args: argparse.Namespace) -> ResilienceConfig:
    """Resolve --inject-faults/--fail-fast and activate the fault plan.

    A plan given on the command line is exported through ``REPRO_FAULTS``
    so process-pool workers (which inherit the environment) replay the
    same seeded faults as the coordinator.
    """
    spec = getattr(args, "inject_faults", None)
    if spec:
        plan = FaultPlan.parse(spec)
        os.environ["REPRO_FAULTS"] = plan.as_text()
        install_fault_plan(plan)
    return ResilienceConfig(fail_fast=bool(getattr(args, "fail_fast", False)))


def _make_parallel_config(args: argparse.Namespace) -> ParallelConfig:
    """Resolve --jobs/--backend/--no-cache plus REPRO_* env fallbacks."""
    context = ExecutionContext.resolve(
        jobs=getattr(args, "jobs", None),
        backend=getattr(args, "backend", None),
    )
    cache_dir = None if getattr(args, "no_cache", False) else resolve_cache_dir()
    return ParallelConfig(
        jobs=context.jobs,
        backend=context.backend,
        cache_dir=str(cache_dir) if cache_dir is not None else None,
    )


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    configured = bool(getattr(args, "trace", False) or getattr(args, "log_json", None))
    if configured:
        from repro.obs import configure
        try:
            configure(trace=bool(args.trace), log_json=args.log_json)
        except OSError as exc:
            print(
                f"error: cannot open trace log {args.log_json}: {exc}",
                file=sys.stderr,
            )
            return 2
    try:
        return _dispatch(args)
    finally:
        if configured:
            from repro.obs import set_sink
            # Restore the no-op sink and flush/close any JSON-lines file.
            set_sink(None).close()


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "generate":
        world = _make_world(args)
        truth = world.ground_truth()
        foreign = sum(1 for g in truth if g.is_foreign_subsidiary)
        print(f"ASes in topology:        {len(world.graph)}")
        print(f"state-owned operators:   {len(truth)} ({foreign} foreign)")
        print(f"state-owned ASNs:        {len(world.ground_truth_asns())}")
        print(f"owner countries:         {len(world.state_owned_countries())}")
        print(f"transit-dominant ccs:    {len(world.transit_dominant_ccs)}")
        return 0

    if args.command in ("run", "report", "validate"):
        try:
            resilience = _make_resilience_config(args)
        except ConfigError as exc:
            print(f"error: bad fault plan: {exc}", file=sys.stderr)
            return 2
        try:
            parallel = _make_parallel_config(args)
        except ConfigError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        cache = ResultCache(parallel.cache_dir) if parallel.cache_dir else None
        # One execution context (and therefore one worker pool) serves the
        # whole invocation: world generation and all pipeline stages.
        with ExecutionContext(jobs=parallel.jobs, backend=parallel.backend) as context:
            world = _make_world(args, cache=cache, context=context)
            try:
                inputs, result = _run_pipeline(world, parallel, resilience, context)
            except ReproError as exc:
                # fail-fast aborts (and genuinely unrecoverable source
                # failures) land here; degraded runs never do.
                print(f"error: pipeline aborted: {exc}", file=sys.stderr)
                return 3
        if result.degraded_sources:
            names = ", ".join(sorted(s.name for s in result.degraded_sources))
            print(
                f"warning: degraded run — quarantined sources: {names}",
                file=sys.stderr,
            )
        if args.command == "run":
            print(
                f"confirmed {result.stats['confirmed_companies']:.0f} "
                f"companies owning "
                f"{result.stats['state_owned_asns']:.0f} ASNs "
                f"({result.stats['foreign_subsidiary_asns']:.0f} foreign)"
            )
            if args.json:
                from repro.io.jsonio import dump_json
                dump_json(result.dataset, args.json)
                print(f"wrote {args.json}")
            cti_json = args.cti_json
            if cti_json is None and args.json:
                # The serve reloader looks for this sidecar by convention.
                cti_json = f"{args.json}.cti.json"
            if cti_json and result.cti_selection is not None:
                from repro.io.jsonio import dump_cti_json
                dump_cti_json(result.cti_selection, cti_json)
                print(f"wrote {cti_json}")
            if args.sqlite:
                from repro.io.sqliteio import dataset_to_sqlite
                dataset_to_sqlite(result.dataset, args.sqlite)
                print(f"wrote {args.sqlite}")
        elif args.command == "report":
            from repro.analysis.report import full_report
            validation = validate_against_world(result, world)
            print(full_report(result, inputs, validation))
        else:
            print(validate_against_world(result, world).as_text())
        # Last, so the counters include export byte counts.
        _emit_run_summary()
        return 0

    if args.command == "churn":
        from repro.io.tables import render_table
        from repro.world.events import ageing_study

        world = _make_world(args)
        frozen = world.ground_truth_asns()
        rows = ageing_study(world, frozen, start_year=2021, years=args.years)
        print(
            render_table(
                (
                    "year",
                    "events",
                    "privatizations",
                    "nationalizations",
                    "new subsidiaries",
                    "precision",
                    "recall",
                ),
                [
                    (
                        r["year"],
                        r["events"],
                        r["privatizations"],
                        r["nationalizations"],
                        r["new_subsidiaries"],
                        r["precision"],
                        r["recall"],
                    )
                    for r in rows
                ],
                title="Frozen-snapshot decay under ownership churn",
            )
        )
        from repro.core.diffing import asn_churn_fraction
        evolved = world.ground_truth_asns()
        print(
            f"ASN churn after {args.years} years: "
            f"{asn_churn_fraction(frozen, evolved):.1%} of the frozen "
            f"snapshot's {len(frozen)} ASNs"
        )
        return 0

    if args.command == "plan":
        from repro.core.maintenance import plan_reverification
        from repro.io.tables import render_table

        world = _make_world(args)
        _inputs, result = _run_pipeline(world)
        plan = plan_reverification(result, limit=args.top)
        print(
            render_table(
                ("organization", "fragility", "reasons"),
                [
                    (
                        item.org_name[:40],
                        f"{item.fragility:.2f}",
                        "; ".join(item.reasons)[:70],
                    )
                    for item in plan
                ],
                title=f"Re-verification plan (top {args.top})",
            )
        )
        return 0

    if args.command == "profile":
        from repro.analysis.country_profile import (
            build_country_profile,
            profile_text,
        )

        world = _make_world(args)
        inputs, result = _run_pipeline(world)
        profile = build_country_profile(args.cc.upper(), result, inputs)
        print(profile_text(profile))
        return 0

    if args.command == "serve":
        from repro.serve import SnapshotStore, run_server

        store = SnapshotStore(args.path, cti_path=args.cti)
        try:
            store.load_initial()
        except ReproError as exc:
            print(
                f"error: cannot load dataset {args.path}: {exc}",
                file=sys.stderr,
            )
            return 2
        try:
            run_server(
                store,
                host=args.host,
                port=args.port,
                poll_interval=args.poll_interval,
                announce=print,
            )
        except KeyboardInterrupt:
            pass
        except OSError as exc:
            print(
                f"error: cannot bind {args.host}:{args.port}: {exc}",
                file=sys.stderr,
            )
            return 2
        return 0

    if args.command == "maintain":
        from repro.core.maintenance import run_maintenance

        try:
            resilience = _make_resilience_config(args)
        except ConfigError as exc:
            print(f"error: bad fault plan: {exc}", file=sys.stderr)
            return 2
        try:
            parallel = _make_parallel_config(args)
        except ConfigError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        cache = ResultCache(parallel.cache_dir) if parallel.cache_dir else None
        with ExecutionContext(jobs=parallel.jobs, backend=parallel.backend) as context:
            world = _make_world(args, cache=cache, context=context)
            try:
                report = run_maintenance(
                    world,
                    out_dir=args.out,
                    months=args.months,
                    start_year=args.start_year,
                    start_month=args.start_month,
                    parallel=parallel,
                    resilience=resilience,
                    context=context,
                    cache=cache,
                    cold=args.cold,
                    verify=args.verify,
                    publish=args.publish,
                )
            except ReproError as exc:
                print(f"error: maintain aborted: {exc}", file=sys.stderr)
                return 3
        print(report.as_text())
        print(f"wrote {report.manifest_path}")
        if report.published:
            print(f"published {report.published}")
        _emit_run_summary()
        return 0

    if args.command == "scenario":
        from repro.world.scenarios import all_pack_names, run_scenario_packs

        if args.list_packs:
            from repro.world.scenarios import SCENARIO_PACKS

            for pack in SCENARIO_PACKS:
                print(f"{pack.name:24s} {pack.description}")
            return 0
        try:
            parallel = _make_parallel_config(args)
        except ConfigError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        cache = ResultCache(parallel.cache_dir) if parallel.cache_dir else None
        with ExecutionContext(jobs=parallel.jobs, backend=parallel.backend) as context:
            world = load_or_generate(
                WorldConfig(seed=args.seed, scale=args.scale),
                cache=cache,
                context=context,
            )
            try:
                report = run_scenario_packs(
                    world, names=args.packs or None, context=context
                )
            except ReproError as exc:
                print(f"error: scenario run aborted: {exc}", file=sys.stderr)
                return 3
        print(report.as_text())
        if args.json:
            with open(args.json, "w", encoding="utf-8") as fh:
                fh.write(report.to_json())
            print(f"wrote {args.json}")
        _emit_run_summary()
        return 0 if report.passed else 1

    if args.command == "bench-diff":
        from pathlib import Path

        from repro.bench.diff import DEFAULT_THRESHOLD, run_diff, run_trend

        threshold = args.threshold if args.threshold is not None else DEFAULT_THRESHOLD
        root = Path(args.dir)
        if not root.is_dir():
            print(f"error: not a directory: {args.dir}", file=sys.stderr)
            return 2
        if args.trend:
            exit_code, report = run_trend(root, pattern=args.pattern)
        else:
            exit_code, report = run_diff(root, threshold=threshold, pattern=args.pattern)
        print(report)
        return exit_code

    if args.command == "show":
        try:
            if args.path.endswith(".json"):
                from repro.io.jsonio import load_json
                dataset = load_json(args.path)
            else:
                from repro.io.sqliteio import dataset_from_sqlite
                dataset = dataset_from_sqlite(args.path)
        except (DatasetError, OSError, sqlite3.Error) as exc:
            print(
                f"error: cannot read dataset {args.path}: {exc}",
                file=sys.stderr,
            )
            return 2
        for org in dataset.organizations():
            if args.country and org.operating_cc != args.country.upper():
                continue
            asns = ", ".join(str(a) for a in dataset.asns_of(org.org_id))
            marker = " [foreign]" if org.is_foreign_subsidiary else ""
            print(f"{org.org_name} ({org.ownership_cc}){marker}")
            print(f"  org_id:  {org.org_id}   rir: {org.rir}")
            print(f"  source:  {org.source}")
            print(f"  quote:   {org.quote}")
            print(f"  ASNs:    {asns or '(none)'}")
        return 0

    return 2


if __name__ == "__main__":
    sys.exit(main())
