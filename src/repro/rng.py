"""Deterministic random-number streams.

The synthetic world and every derived data source must be reproducible from a
single integer seed, and adding randomness to one subsystem must not perturb
another.  :class:`SeedSequenceFactory` hands each named subsystem its own
independent :class:`random.Random` stream derived from the master seed and the
subsystem name, so e.g. adding one extra draw to the WHOIS noise model leaves
the topology untouched.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

__all__ = ["SeedSequenceFactory", "derive_seed"]


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a stable 64-bit child seed from ``master_seed`` and ``name``.

    Uses BLAKE2b rather than ``hash()`` because the latter is salted per
    process and would break reproducibility across runs.
    """
    digest = hashlib.blake2b(
        f"{master_seed}:{name}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


class SeedSequenceFactory:
    """Factory of named, independent deterministic RNG streams.

    >>> factory = SeedSequenceFactory(42)
    >>> a = factory.stream("topology")
    >>> b = factory.stream("whois")
    >>> a is factory.stream("topology")  # streams are cached by name
    True
    """

    def __init__(self, master_seed: int) -> None:
        self.master_seed = int(master_seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the (cached) RNG stream for subsystem ``name``."""
        if name not in self._streams:
            self._streams[name] = random.Random(derive_seed(self.master_seed, name))
        return self._streams[name]

    def fresh(self, name: str) -> random.Random:
        """Return a brand-new, uncached stream for ``name``.

        Useful when a subsystem needs to restart its stream from the beginning
        (e.g. regenerating a data source with identical noise).
        """
        return random.Random(derive_seed(self.master_seed, name))

    def spawn(self, name: str) -> "SeedSequenceFactory":
        """Return a child factory whose master seed is derived from ``name``."""
        return SeedSequenceFactory(derive_seed(self.master_seed, name))

    def __repr__(self) -> str:
        return f"SeedSequenceFactory(master_seed={self.master_seed})"
