"""Exception hierarchy for the ``repro`` package.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the subsystem that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """A configuration value is invalid or inconsistent."""


class PrefixError(ReproError):
    """An IPv4 prefix is malformed or an operation on it is invalid."""


class TopologyError(ReproError):
    """The AS-level topology is malformed (unknown AS, bad relationship...)."""


class WorldError(ReproError):
    """The synthetic world model is inconsistent."""


class OwnershipError(WorldError):
    """The ownership graph is malformed (unknown entity, stake > 100 %...)."""


class SourceError(ReproError):
    """A derived data source could not be built or queried."""


class PipelineError(ReproError):
    """A stage of the classification pipeline failed."""


class DatasetError(ReproError):
    """The output dataset is malformed or an import/export failed."""


class AnalysisError(ReproError):
    """An evaluation/analysis routine received inconsistent inputs."""
