"""Exception hierarchy for the ``repro`` package.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the subsystem that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """A configuration value is invalid or inconsistent."""


def invalid_jobs(jobs: object) -> ConfigError:
    """The one canonical error for a bad worker count.

    The rule is uniform everywhere: ``jobs`` must be a positive integer.
    The special value ``0`` ("all cores") is an input convention accepted
    only by ``ExecutionContext.resolve`` / ``--jobs 0`` / ``REPRO_JOBS=0``,
    which expands it before construction — no constructed object ever
    carries ``jobs=0``.
    """
    return ConfigError(
        f"jobs must be >= 1 (0 = all cores, accepted only by "
        f"ExecutionContext.resolve / --jobs 0), got {jobs}"
    )


class PrefixError(ReproError):
    """An IPv4 prefix is malformed or an operation on it is invalid."""


class TopologyError(ReproError):
    """The AS-level topology is malformed (unknown AS, bad relationship...)."""


class WorldError(ReproError):
    """The synthetic world model is inconsistent."""


class OwnershipError(WorldError):
    """The ownership graph is malformed (unknown entity, stake > 100 %...)."""


class SourceError(ReproError):
    """A derived data source could not be built or queried."""


class TransientSourceError(SourceError):
    """A source failed in a way that is expected to heal on retry."""


class InjectedFaultError(TransientSourceError):
    """A failure injected by the deterministic fault harness.

    Subclasses :class:`TransientSourceError` so that every production code
    path treats an injected fault exactly like a real source failure.
    """


class QuarantinedSourceError(SourceError):
    """A quarantined (degraded) source was queried after giving up on it."""


class ResilienceError(ReproError):
    """Base class for the retry/circuit-breaker machinery's own failures."""


class RetryExhaustedError(ResilienceError):
    """Every attempt allowed by a :class:`RetryPolicy` failed.

    Carries the failing call site, the attempt count, and the last
    underlying exception (also chained as ``__cause__``).
    """

    def __init__(self, site: str, attempts: int, cause: BaseException) -> None:
        super().__init__(
            f"{site}: all {attempts} attempts failed "
            f"({type(cause).__name__}: {cause})"
        )
        self.site = site
        self.attempts = attempts
        self.cause = cause


class CircuitOpenError(ResilienceError):
    """A circuit breaker is open: the call was short-circuited, not run."""


class AttemptTimeoutError(ResilienceError, TimeoutError):
    """One retry attempt exceeded its per-attempt time budget."""


class WorkerCrashError(ResilienceError):
    """The process pool lost workers more often than the requeue budget."""


class PipelineError(ReproError):
    """A stage of the classification pipeline failed."""


class DatasetError(ReproError):
    """The output dataset is malformed or an import/export failed."""


class AnalysisError(ReproError):
    """An evaluation/analysis routine received inconsistent inputs."""
