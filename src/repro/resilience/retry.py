"""Composable retry with deterministic exponential backoff.

:class:`RetryPolicy` is a frozen value object: max attempts, exponential
backoff with **seeded** jitter, and an optional per-attempt timeout.  The
jitter for attempt *n* at call site *s* is drawn from
``Random(derive_seed(seed, f"{s}:{n}"))``, so two runs of the same plan
sleep for exactly the same durations — chaos runs replay bit-identically,
which is what lets CI assert on their logs and metrics.

Attempts are counted in the process-global metrics registry
(``resilience.retries`` / ``resilience.exhausted``); callers that need a
circuit breaker pass one in and the policy feeds it success/failure.
"""

from __future__ import annotations

import random
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass
from typing import Callable, Optional, Tuple, Type, TypeVar

from repro.errors import (
    AttemptTimeoutError,
    ConfigError,
    RetryExhaustedError,
    SourceError,
)
from repro.obs import get_metrics
from repro.rng import derive_seed

__all__ = ["RetryPolicy"]

R = TypeVar("R")

#: Exception types retried by default: source failures (including injected
#: faults), filesystem errors, and attempt timeouts.
DEFAULT_RETRY_ON: Tuple[Type[BaseException], ...] = (
    SourceError,
    OSError,
    TimeoutError,
)


@dataclass(frozen=True)
class RetryPolicy:
    """How often, how long, and on what to retry one call site."""

    max_attempts: int = 3
    base_delay: float = 0.02
    multiplier: float = 2.0
    max_delay: float = 0.5
    #: Jitter amplitude as a fraction of the backoff delay (0 disables).
    jitter: float = 0.25
    #: Seed of the deterministic jitter stream.
    seed: int = 0
    #: Per-attempt wall-clock budget in seconds (None = unbounded).
    attempt_timeout: Optional[float] = None
    retry_on: Tuple[Type[BaseException], ...] = DEFAULT_RETRY_ON

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ConfigError("backoff delays must be >= 0")
        if self.multiplier < 1.0:
            raise ConfigError("multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigError(f"jitter = {self.jitter} out of [0, 1]")

    # -- backoff -----------------------------------------------------------
    def backoff_delay(self, site: str, attempt: int) -> float:
        """Seconds to sleep after failed attempt ``attempt`` (1-based).

        Deterministic: the jitter stream is seeded per (policy seed, site,
        attempt), so replaying a run reproduces the exact delays.
        """
        base = min(self.max_delay, self.base_delay * self.multiplier ** (attempt - 1))
        if not self.jitter or not base:
            return base
        rng = random.Random(derive_seed(self.seed, f"{site}:{attempt}"))
        spread = self.jitter * base
        return base - spread + 2.0 * spread * rng.random()

    # -- execution ---------------------------------------------------------
    def call(
        self,
        fn: Callable[[], R],
        *,
        site: str = "call",
        breaker=None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> R:
        """Run ``fn`` under this policy; return its result.

        Raises :class:`~repro.errors.RetryExhaustedError` once every attempt
        failed with a retryable exception; non-retryable exceptions (and
        :class:`~repro.errors.CircuitOpenError` from the breaker) propagate
        immediately.
        """
        metrics = get_metrics()
        for attempt in range(1, self.max_attempts + 1):
            if breaker is not None:
                breaker.allow()
            try:
                result = self._run_attempt(fn)
            except self.retry_on as exc:
                if breaker is not None:
                    breaker.record_failure()
                if attempt >= self.max_attempts:
                    metrics.incr("resilience.exhausted")
                    raise RetryExhaustedError(site, attempt, exc) from exc
                metrics.incr("resilience.retries")
                sleep(self.backoff_delay(site, attempt))
            else:
                if breaker is not None:
                    breaker.record_success()
                return result
        raise AssertionError("unreachable")  # pragma: no cover

    def _run_attempt(self, fn: Callable[[], R]) -> R:
        if self.attempt_timeout is None:
            return fn()
        # A worker thread enforces the budget; a timed-out attempt keeps
        # running in the background (Python cannot preempt it) but its
        # result is discarded.  Only used for call sites that opt in.
        pool = ThreadPoolExecutor(max_workers=1)
        try:
            future = pool.submit(fn)
            try:
                return future.result(timeout=self.attempt_timeout)
            except FutureTimeoutError:
                raise AttemptTimeoutError(
                    f"attempt exceeded {self.attempt_timeout}s budget"
                ) from None
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
