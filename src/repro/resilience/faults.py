"""Deterministic fault injection: seeded chaos that replays bit-identically.

A :class:`FaultPlan` maps *call sites* (dotted names such as
``source.orbis``, ``cache.get``, ``worker.confirmation``) to fault kinds:

``transient[:n]``
    the first *n* calls (default 1) raise
    :class:`~repro.errors.InjectedFaultError`, later calls succeed —
    exercises retry/backoff;
``fatal``
    every call raises — exercises quarantine / graceful degradation;
``slow[:seconds]``
    every call sleeps (default 0.05 s) — exercises per-attempt timeouts;
``corrupt[:p]`` / ``truncate[:p]``
    payload text passing through :func:`mangle_text` is garbled/truncated
    with probability *p* (default 1.0), drawn from a per-call seeded RNG —
    exercises corrupt-record and truncated-file handling;
``crash[:n]``
    the first *n* eligible calls inside a **worker process** terminate it
    with ``os._exit`` — exercises pool requeue.  A no-op in the parent
    process and on first-retry replays (``attempt > 0``), so one plan
    cannot crash-loop a run.

Plans are parsed from a compact spec (``REPRO_FAULTS`` /
``--inject-faults``)::

    seed=42;source.orbis=fatal;cache.get=corrupt:0.5;worker.confirmation=crash

Sites accept ``fnmatch`` globs (``source.*=transient:2``).  All randomness
derives from the plan seed plus the per-site call counter, so the same plan
over the same run produces the same faults, logs and metrics every time.

The active plan is process-global.  :func:`get_fault_plan` lazily parses
``REPRO_FAULTS`` from the environment, which is how worker processes of a
process pool inherit the plan without any extra plumbing.
"""

from __future__ import annotations

import fnmatch
import multiprocessing
import os
import random
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Optional, Tuple

from repro.errors import ConfigError, InjectedFaultError
from repro.obs import get_metrics
from repro.rng import derive_seed

__all__ = [
    "FAULT_KINDS",
    "FaultSpec",
    "FaultPlan",
    "get_fault_plan",
    "install_fault_plan",
    "clear_fault_plan",
    "fault_point",
    "mangle_text",
    "worker_fault_point",
]

FAULT_KINDS = ("transient", "fatal", "slow", "corrupt", "truncate", "crash")

#: Default parameter per kind (see the kind table in the module docstring).
_DEFAULT_PARAM = {
    "transient": 1.0,
    "fatal": 0.0,
    "slow": 0.05,
    "corrupt": 1.0,
    "truncate": 1.0,
    "crash": 1.0,
}


@dataclass(frozen=True)
class FaultSpec:
    """One ``site=kind[:param]`` entry of a fault plan."""

    site: str
    kind: str
    param: float

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigError(
                f"unknown fault kind {self.kind!r}; pick one of {FAULT_KINDS}"
            )
        if self.param < 0:
            raise ConfigError(f"fault parameter must be >= 0: {self}")

    def matches(self, site: str) -> bool:
        return fnmatch.fnmatchcase(site, self.site)

    def as_text(self) -> str:
        return f"{self.site}={self.kind}:{self.param:g}"


class FaultPlan:
    """A seeded set of per-site faults with deterministic call counters."""

    def __init__(self, specs: Iterable[FaultSpec], seed: int = 0) -> None:
        self.specs: Tuple[FaultSpec, ...] = tuple(specs)
        self.seed = int(seed)
        self._lock = threading.Lock()
        self._calls: Dict[str, int] = {}

    # -- construction ------------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse the ``seed=N;site=kind[:param];...`` spec format."""
        seed = 0
        specs = []
        for raw in text.replace(",", ";").split(";"):
            entry = raw.strip()
            if not entry:
                continue
            if "=" not in entry:
                raise ConfigError(
                    f"malformed fault entry {entry!r} (expected site=kind)"
                )
            left, right = (part.strip() for part in entry.split("=", 1))
            if left == "seed":
                try:
                    seed = int(right)
                except ValueError:
                    raise ConfigError(f"fault seed must be an integer: {right!r}")
                continue
            kind, _, param_text = right.partition(":")
            kind = kind.strip()
            if kind not in FAULT_KINDS:
                raise ConfigError(
                    f"unknown fault kind {kind!r} in {entry!r}; "
                    f"pick one of {FAULT_KINDS}"
                )
            if param_text:
                try:
                    param = float(param_text)
                except ValueError:
                    raise ConfigError(f"fault parameter must be numeric: {entry!r}")
            else:
                param = _DEFAULT_PARAM[kind]
            specs.append(FaultSpec(site=left, kind=kind, param=param))
        return cls(specs, seed=seed)

    def as_text(self) -> str:
        """Canonical spec string (round-trips through :meth:`parse`)."""
        parts = [f"seed={self.seed}"]
        parts.extend(spec.as_text() for spec in self.specs)
        return ";".join(parts)

    # -- internals ---------------------------------------------------------
    def _next_call(self, site: str) -> int:
        """0-based index of this call at ``site`` (deterministic counter)."""
        with self._lock:
            count = self._calls.get(site, 0)
            self._calls[site] = count + 1
            return count

    def _rng(self, site: str, count: int) -> random.Random:
        return random.Random(derive_seed(self.seed, f"{site}:{count}"))

    def _matching(self, site: str) -> Tuple[FaultSpec, ...]:
        return tuple(spec for spec in self.specs if spec.matches(site))

    def call_count(self, site: str) -> int:
        with self._lock:
            return self._calls.get(site, 0)

    # -- fault application -------------------------------------------------
    def before(self, site: str, sleep: Callable[[float], None] = time.sleep) -> None:
        """Apply transient/fatal/slow faults for one call at ``site``."""
        specs = self._matching(site)
        if not specs:
            return
        count = self._next_call(site)
        for spec in specs:
            if spec.kind == "slow":
                get_metrics().incr("resilience.faults.slow")
                sleep(spec.param)
            elif spec.kind == "fatal":
                get_metrics().incr("resilience.faults.injected")
                raise InjectedFaultError(
                    f"injected fatal fault at {site} (call #{count})"
                )
            elif spec.kind == "transient" and count < spec.param:
                get_metrics().incr("resilience.faults.injected")
                raise InjectedFaultError(
                    f"injected transient fault at {site} "
                    f"(call #{count} of {spec.param:g})"
                )

    def mangle(self, site: str, text: str) -> str:
        """Apply corrupt/truncate faults to payload text read at ``site``."""
        specs = [
            spec
            for spec in self._matching(site)
            if spec.kind in ("corrupt", "truncate")
        ]
        if not specs or not text:
            return text
        count = self._next_call(f"{site}#payload")
        for spec in specs:
            rng = self._rng(site, count)
            if rng.random() >= spec.param:
                continue
            get_metrics().incr("resilience.faults.mangled")
            if spec.kind == "truncate":
                text = text[: rng.randrange(len(text))]
            else:
                cut = rng.randrange(len(text))
                text = text[:cut] + "\x00garbage\x00" + text[cut + 1 :]
        return text

    def crash_due(self, site: str, attempt: int) -> bool:
        """True when an eligible worker call at ``site`` must crash."""
        specs = [s for s in self._matching(site) if s.kind == "crash"]
        if not specs or attempt > 0:
            return False
        count = self._next_call(f"{site}#crash")
        return any(count < spec.param for spec in specs)


# -- the process-global active plan ---------------------------------------
_ACTIVE: Optional[FaultPlan] = None
_RESOLVED = False
_RESOLVE_LOCK = threading.Lock()


def get_fault_plan() -> Optional[FaultPlan]:
    """The active plan: installed explicitly or parsed from ``REPRO_FAULTS``.

    The environment is consulted once per process (worker processes of a
    pool therefore pick the plan up automatically); use
    :func:`clear_fault_plan` to force re-resolution.
    """
    global _ACTIVE, _RESOLVED
    if _RESOLVED:
        return _ACTIVE
    with _RESOLVE_LOCK:
        if not _RESOLVED:
            spec = os.environ.get("REPRO_FAULTS", "").strip()
            _ACTIVE = FaultPlan.parse(spec) if spec else None
            _RESOLVED = True
    return _ACTIVE


def install_fault_plan(plan: Optional[FaultPlan]) -> None:
    """Activate ``plan`` for this process (None deactivates injection)."""
    global _ACTIVE, _RESOLVED
    with _RESOLVE_LOCK:
        _ACTIVE = plan
        _RESOLVED = True


def clear_fault_plan() -> None:
    """Drop the active plan; the next lookup re-reads ``REPRO_FAULTS``."""
    global _ACTIVE, _RESOLVED
    with _RESOLVE_LOCK:
        _ACTIVE = None
        _RESOLVED = False


def fault_point(site: str) -> None:
    """Hook placed at an I/O boundary; no-op unless a plan is active."""
    plan = get_fault_plan()
    if plan is not None:
        plan.before(site)


def mangle_text(site: str, text: str) -> str:
    """Payload hook for read paths; returns ``text`` unless a plan mangles it."""
    plan = get_fault_plan()
    if plan is None:
        return text
    return plan.mangle(site, text)


def worker_fault_point(site: str, attempt: int) -> None:
    """Hook run before each work item inside an execution backend.

    Applies slow faults everywhere; crash faults only inside a real worker
    process (never the coordinator) and only on first delivery
    (``attempt == 0``), so requeued work is guaranteed to make progress.
    """
    plan = get_fault_plan()
    if plan is None:
        return
    for spec in plan._matching(site):
        if spec.kind == "slow":
            time.sleep(spec.param)
    if (multiprocessing.parent_process() is not None and plan.crash_due(site, attempt)):
        os._exit(3)
