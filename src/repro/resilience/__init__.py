"""Resilience layer: retry/backoff, circuit breaking, fault injection.

Four pieces, each usable alone:

* :class:`~repro.resilience.retry.RetryPolicy` — bounded attempts with
  exponential backoff and **deterministic seeded jitter**;
* :class:`~repro.resilience.breaker.CircuitBreaker` — classic
  closed/open/half-open short-circuiting per call site;
* :class:`~repro.resilience.guard.SourceGuard` — the composed wrapper
  applied to every source loader, source query and cache access;
* the fault harness (:mod:`repro.resilience.faults`) — a seeded
  :class:`~repro.resilience.faults.FaultPlan` (``REPRO_FAULTS`` /
  ``--inject-faults``) that injects transient errors, fatal errors, slow
  reads, corrupt/truncated payloads and worker crashes, reproducibly.

Degradation semantics live in :mod:`repro.core.pipeline`: a candidate
source that exhausts its retries is quarantined, the run continues on the
remaining sources, and the exported dataset carries per-source
``degraded`` provenance flags.
"""

from repro.resilience.breaker import CircuitBreaker
from repro.resilience.faults import (
    FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    clear_fault_plan,
    fault_point,
    get_fault_plan,
    install_fault_plan,
    mangle_text,
    worker_fault_point,
)
from repro.resilience.guard import QuarantinedSource, SourceGuard
from repro.resilience.retry import RetryPolicy

__all__ = [
    "CircuitBreaker",
    "FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "QuarantinedSource",
    "RetryPolicy",
    "SourceGuard",
    "clear_fault_plan",
    "fault_point",
    "get_fault_plan",
    "install_fault_plan",
    "mangle_text",
    "worker_fault_point",
]
