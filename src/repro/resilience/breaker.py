"""Circuit breaker: stop hammering a failing dependency.

Classic three-state machine.  **closed** — calls flow, consecutive failures
are counted; **open** — calls are short-circuited with
:class:`~repro.errors.CircuitOpenError` until the reset timeout elapses;
**half-open** — one probe call is allowed through, success closes the
circuit, failure reopens it.

The clock is injectable so tests (and deterministic chaos replays) can
drive the open->half-open transition without real waiting.  Transitions
are counted in the global metrics registry under ``resilience.breaker.*``.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from repro.errors import CircuitOpenError, ConfigError
from repro.obs import get_metrics

__all__ = ["CircuitBreaker"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """A thread-safe circuit breaker guarding one call site (or a few)."""

    def __init__(
        self,
        name: str = "breaker",
        failure_threshold: int = 5,
        reset_timeout: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ConfigError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if reset_timeout < 0:
            raise ConfigError("reset_timeout must be >= 0")
        self.name = name
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0

    @property
    def state(self) -> str:
        """Current state, applying the open->half-open cooldown transition."""
        with self._lock:
            self._maybe_half_open()
            return self._state

    def _maybe_half_open(self) -> None:
        if (
            self._state == OPEN
            and self._clock() - self._opened_at >= self.reset_timeout
        ):
            self._state = HALF_OPEN
            get_metrics().incr("resilience.breaker.half_open")

    # -- protocol used by RetryPolicy.call ---------------------------------
    def allow(self) -> None:
        """Raise :class:`CircuitOpenError` unless a call may proceed."""
        with self._lock:
            self._maybe_half_open()
            if self._state == OPEN:
                get_metrics().incr("resilience.breaker.short_circuits")
                raise CircuitOpenError(
                    f"circuit {self.name!r} is open "
                    f"(retry in <= {self.reset_timeout}s)"
                )

    def record_success(self) -> None:
        with self._lock:
            if self._state == HALF_OPEN:
                get_metrics().incr("resilience.breaker.closed")
            self._state = CLOSED
            self._consecutive_failures = 0

    def record_failure(self) -> None:
        with self._lock:
            self._consecutive_failures += 1
            if self._state == HALF_OPEN:
                # The probe failed: straight back to open.
                self._state = OPEN
                self._opened_at = self._clock()
                get_metrics().incr("resilience.breaker.reopened")
            elif (
                self._state == CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._state = OPEN
                self._opened_at = self._clock()
                get_metrics().incr("resilience.breaker.opened")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CircuitBreaker(name={self.name!r}, state={self.state!r}, "
            f"failures={self._consecutive_failures})"
        )
