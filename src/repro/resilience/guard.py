"""The composed boundary wrapper: fault point -> breaker -> retry.

:class:`SourceGuard` is what production code actually uses.  It owns one
:class:`~repro.resilience.breaker.CircuitBreaker` per call site (created
lazily) and runs every guarded call through the configured
:class:`~repro.resilience.retry.RetryPolicy`, with the fault-injection
hook inside the attempt so injected faults exercise the same retry path a
real failure would.

:class:`QuarantinedSource` is the inert stand-in installed in place of a
source that exhausted its retries at build time: any query raises
:class:`~repro.errors.QuarantinedSourceError`, so accidental use of a
degraded source fails loudly instead of silently returning fabricated
data.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional, TypeVar

from repro.config import ResilienceConfig
from repro.errors import QuarantinedSourceError
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.faults import fault_point
from repro.resilience.retry import RetryPolicy

__all__ = ["SourceGuard", "QuarantinedSource"]

R = TypeVar("R")


class SourceGuard:
    """Applies fault injection, retry and per-site circuit breaking."""

    def __init__(
        self,
        policy: Optional[RetryPolicy] = None,
        breaker_threshold: int = 5,
        breaker_reset: float = 30.0,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.policy = policy or RetryPolicy()
        self._breaker_threshold = breaker_threshold
        self._breaker_reset = breaker_reset
        self._sleep = sleep
        self._clock = clock
        self._lock = threading.Lock()
        self._breakers: Dict[str, CircuitBreaker] = {}

    @classmethod
    def from_config(cls, config: Optional[ResilienceConfig]) -> "SourceGuard":
        config = config or ResilienceConfig()
        return cls(
            policy=RetryPolicy(
                max_attempts=config.max_attempts,
                base_delay=config.base_delay,
                multiplier=config.multiplier,
                max_delay=config.max_delay,
                jitter=config.jitter,
                seed=config.seed,
                attempt_timeout=config.attempt_timeout,
            ),
            breaker_threshold=config.breaker_threshold,
            breaker_reset=config.breaker_reset,
        )

    def breaker(self, site: str) -> CircuitBreaker:
        """The (lazily created) circuit breaker guarding ``site``."""
        with self._lock:
            breaker = self._breakers.get(site)
            if breaker is None:
                breaker = CircuitBreaker(
                    name=site,
                    failure_threshold=self._breaker_threshold,
                    reset_timeout=self._breaker_reset,
                    clock=self._clock,
                )
                self._breakers[site] = breaker
            return breaker

    def call(self, site: str, fn: Callable[[], R]) -> R:
        """Run ``fn`` guarded as call site ``site``."""

        def attempt() -> R:
            fault_point(site)
            return fn()

        return self.policy.call(
            attempt, site=site, breaker=self.breaker(site), sleep=self._sleep
        )


class QuarantinedSource:
    """Stand-in for a degraded source: every query fails loudly."""

    def __init__(self, site: str) -> None:
        self._site = site

    def __getattr__(self, name: str):
        # Dunder lookups (pickling, copying, introspection) must keep the
        # normal missing-attribute protocol.
        if name.startswith("__") and name.endswith("__"):
            raise AttributeError(name)
        raise QuarantinedSourceError(
            f"source {self._site!r} is quarantined (degraded run); "
            f"refusing query {name!r}"
        )

    def __repr__(self) -> str:
        return f"QuarantinedSource({self._site!r})"
