"""Text utilities: company-name normalization, similarity and synthesis."""

from repro.text.normalize import (
    normalize_name,
    name_tokens,
    jaccard_similarity,
    edit_distance,
    name_similarity,
    acronym_of,
    acronym_match,
)
from repro.text.names import NameForge

__all__ = [
    "normalize_name",
    "name_tokens",
    "jaccard_similarity",
    "edit_distance",
    "name_similarity",
    "acronym_of",
    "acronym_match",
    "NameForge",
]
