"""Synthesis of plausible telecom company names.

The world generator needs legal names, brand names, WHOIS registrant aliases
and subsidiary names that exhibit the pathologies documented in the paper:
brands differing from legal names, stale WHOIS names surviving rebrands,
foreign subsidiaries registered under unrelated local legal names
(the Internexa/"Transamerican Telecomunication S.A." case), and misleading
names left behind by nationalizations (the Vodafone Fiji case).
"""

from __future__ import annotations

import random
from typing import List, Tuple

__all__ = ["NameForge"]

_TELCO_STEMS = [
    "Telecom",
    "Telekom",
    "Telecomunicaciones",
    "Communications",
    "Telia",
    "Connect",
    "Net",
    "Link",
    "Datacom",
    "Teleservices",
    "Broadband",
]

_TRANSIT_STEMS = [
    "Backbone",
    "Transit",
    "Carrier",
    "IX",
    "Gateway",
    "Cables",
    "Fiber",
    "Longhaul",
    "Exchange",
]

_GENERIC_WORDS = [
    "National",
    "United",
    "Global",
    "First",
    "Royal",
    "Pacific",
    "Atlantic",
    "Equatorial",
    "Continental",
    "Premier",
    "Horizon",
    "Summit",
    "Meridian",
    "Aurora",
    "Vector",
    "Nimbus",
    "Zenith",
    "Quantum",
    "Stellar",
    "Crescent",
]

_LEGAL_BY_RIR = {
    "ARIN": ["Inc.", "LLC", "Corp."],
    "RIPE": ["AS", "GmbH", "AB", "PJSC", "S.p.A.", "B.V.", "Ltd"],
    "APNIC": ["Berhad", "Pte Ltd", "Co., Ltd.", "PT", "Ltd"],
    "LACNIC": ["S.A.", "S.A. de C.V.", "S.R.L.", "Ltda."],
    "AFRINIC": ["S.A.", "Ltd", "PLC", "SARL"],
}


class NameForge:
    """Deterministic generator of company-name families.

    All methods draw from the RNG handed to the constructor, so a fixed seed
    yields a fixed set of names.
    """

    def __init__(self, rng: random.Random) -> None:
        self._rng = rng
        self._used: set = set()

    def _unique(self, candidate: str, salt_pool: List[str]) -> str:
        """Ensure global uniqueness by appending a salt word if needed."""
        name = candidate
        attempts = 0
        while name.lower() in self._used:
            salt = self._rng.choice(salt_pool)
            name = f"{salt} {candidate}"
            attempts += 1
            if attempts > 5:
                name = f"{candidate} {self._rng.randint(2, 99)}"
        self._used.add(name.lower())
        return name

    def legal_suffix(self, rir: str) -> str:
        """A legal-form suffix plausible for the given registry region."""
        return self._rng.choice(_LEGAL_BY_RIR.get(rir, ["Ltd"]))

    # -- operator names ------------------------------------------------------
    def incumbent(self, country_name: str, rir: str) -> Tuple[str, str]:
        """(legal name, brand) for a country's incumbent operator.

        Incumbents usually carry the country name ("Telekom Malaysia",
        "Angola Telecom") and a contracted brand ("TM", "AngoTel").
        """
        stem = self._rng.choice(_TELCO_STEMS)
        order = self._rng.random()
        if order < 0.5:
            base = f"{country_name} {stem}"
        else:
            base = f"{stem} {country_name}"
        base = self._unique(base, _GENERIC_WORDS)
        legal = f"{base} {self.legal_suffix(rir)}"
        brand = self._contract(country_name, stem)
        return legal, brand

    def _contract(self, country_name: str, stem: str) -> str:
        """Build a contracted brand, e.g. Zambia+Telecom -> "ZamTel"."""
        country_part = country_name.split(" ")[0][:4].capitalize()
        stem_part = stem[:3].capitalize()
        return self._unique_brand(f"{country_part}{stem_part}")

    def challenger(self, country_name: str, rir: str) -> Tuple[str, str]:
        """(legal, brand) for a non-incumbent access operator."""
        word = self._rng.choice(_GENERIC_WORDS)
        stem = self._rng.choice(_TELCO_STEMS)
        base = self._unique(f"{word} {stem}", _GENERIC_WORDS)
        legal = f"{base} {self.legal_suffix(rir)}"
        if self._rng.random() < 0.5:
            brand = base
        else:
            brand = self._unique_brand(word + stem[:4])
        return legal, brand

    def _unique_brand(self, brand: str) -> str:
        """Brands must be globally unique too: real-world brand collisions
        would poison Freedom-House-style mentions that only carry brands."""
        candidate = brand
        attempt = 2
        while candidate.lower() in self._used:
            candidate = f"{brand}{attempt}"
            attempt += 1
        self._used.add(candidate.lower())
        return candidate

    def transit_operator(self, country_name: str, rir: str) -> Tuple[str, str]:
        """(legal, brand) for a transit/backbone/submarine-cable operator."""
        stem = self._rng.choice(_TRANSIT_STEMS)
        if self._rng.random() < 0.6:
            base = f"{country_name} {stem}"
        else:
            base = f"{self._rng.choice(_GENERIC_WORDS)} {stem}"
        base = self._unique(base, _GENERIC_WORDS)
        legal = f"{base} {self.legal_suffix(rir)}"
        # Transit companies often go by an acronym (BSCCL, TTK, ACS).
        brand = "".join(w[0] for w in base.split()).upper()
        if len(brand) < 3:
            brand = base
        else:
            brand = self._unique_brand(brand)
        return legal, brand

    def subsidiary(
        self, parent_brand: str, target_country_name: str, rir: str
    ) -> Tuple[str, str]:
        """(legal, brand) for a foreign subsidiary, Ooredoo-Tunisia style."""
        base = self._unique(f"{parent_brand} {target_country_name}", _GENERIC_WORDS)
        legal = f"{base} {self.legal_suffix(rir)}"
        return legal, base

    def fund(self, country_name: str) -> str:
        """Name of a state-controlled investment/pension fund."""
        kind = self._rng.choice(
            [
                "Sovereign Wealth Fund",
                "National Investment Fund",
                "Employees Pension Fund",
                "State Holding",
            ]
        )
        return self._unique(f"{country_name} {kind}", _GENERIC_WORDS)

    # -- aliasing / pathology ---------------------------------------------------
    def unrelated_legal_name(self, rir: str) -> str:
        """A local legal name with no resemblance to the parent brand.

        Models foreign-subsidiary registrations such as Internexa's Argentine
        AS appearing in WHOIS as "Transamerican Telecomunication S.A.".
        """
        first = self._rng.choice(_GENERIC_WORDS)
        second = self._rng.choice(_TELCO_STEMS)
        base = self._unique(f"{first} {second}", _GENERIC_WORDS)
        return f"{base} {self.legal_suffix(rir)}"

    def stale_variant(self, name: str) -> str:
        """An outdated WHOIS variant of ``name`` (pre-rebrand legal name)."""
        prefix = self._rng.choice(["", "The ", ""])
        marker = self._rng.choice(
            [
                "Posts and Telecommunications",
                "PTT",
                "Telegraph and Telephone",
                "State Telecommunication Enterprise",
            ]
        )
        head = name.split(" ")[0]
        return f"{prefix}{head} {marker}".strip()

    def typo_variant(self, name: str) -> str:
        """A name with one transliteration-style character slip."""
        if len(name) < 5:
            return name
        pos = self._rng.randrange(1, len(name) - 1)
        ch = name[pos]
        if not ch.isalpha():
            return name
        swap = {
            "c": "k",
            "k": "c",
            "i": "y",
            "y": "i",
            "s": "z",
            "z": "s",
            "f": "ph",
            "o": "ou",
        }
        replacement = swap.get(ch.lower(), ch)
        if ch.isupper():
            replacement = replacement.capitalize()
        return name[:pos] + replacement + name[pos + 1:]

    def misleading_private_name(self, country_name: str) -> Tuple[str, str]:
        """A nationalized company keeping a private-sounding global brand.

        Models the Vodafone Fiji case: the state owns the firm but the name
        still points at a private multinational.
        """
        global_brand = self._rng.choice(
            ["Vodaphone", "Oranger", "GlobalCell", "AirNet", "Telefonix"]
        )
        base = self._unique(f"{global_brand} {country_name}", _GENERIC_WORDS)
        return f"{base} Ltd", base
