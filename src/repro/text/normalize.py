"""Company-name normalization and similarity scoring.

The paper's AS-to-company mapping (§4.2) has to reconcile WHOIS legal names
("Transamerican Telecomunication S.A."), PeeringDB brand names ("Internexa"),
and the names that appear in ownership documents.  This module provides the
normalization and fuzzy-matching primitives that the mapping stage builds on.
"""

from __future__ import annotations

import re
import unicodedata
from functools import lru_cache
from typing import FrozenSet, Sequence, Tuple

__all__ = [
    "LEGAL_SUFFIXES",
    "normalize_name",
    "name_tokens",
    "jaccard_similarity",
    "edit_distance",
    "name_similarity",
    "acronym_of",
    "acronym_match",
]

#: Legal-form suffixes and filler words stripped during normalization.  The
#: list covers the corporate forms that appear in RIR WHOIS data across the
#: five registries (and in the paper's own examples: "S.A.", "Berhad", ...).
LEGAL_SUFFIXES: FrozenSet[str] = frozenset(
    {
        "sa",
        "s a",
        "ltd",
        "limited",
        "llc",
        "inc",
        "incorporated",
        "corp",
        "corporation",
        "co",
        "company",
        "plc",
        "pjsc",
        "jsc",
        "ojsc",
        "cjsc",
        "gmbh",
        "ag",
        "bv",
        "nv",
        "spa",
        "srl",
        "sarl",
        "pte",
        "pty",
        "pt",
        "berhad",
        "bhd",
        "sdn",
        "tbk",
        "kk",
        "oy",
        "ab",
        "as",
        "asa",
        "aps",
        "ao",
        "ooo",
        "pao",
        "zao",
        "sae",
        "saoc",
        "saog",
        "qsc",
        "kft",
        "doo",
        "dd",
        "ad",
        "sl",
        "cv",
        "ep",
        "epe",
        "spc",
        "wll",
        "psc",
        "group",
        "holding",
        "holdings",
        "intl",
        "international",
    }
)

#: Tokens so common in operator names that sharing them says almost nothing
#: about identity ("Telecom X" vs "Telekom X" are different firms).  They
#: get a reduced weight in similarity scoring.
GENERIC_TOKENS: FrozenSet[str] = frozenset(
    {
        "telecom", "telekom", "telecoms", "telecomunicaciones",
        "telecommunications", "telecommunication", "communications",
        "communication", "comunicaciones", "net", "network", "networks",
        "link", "connect", "datacom", "teleservices", "broadband", "telia",
        "backbone", "transit", "carrier", "gateway", "cables", "cable",
        "fiber", "fibre", "longhaul", "exchange", "ix", "mobile", "wireless",
        "internet", "digital", "data", "services", "service", "operator",
        "posts", "post", "telegraph", "telephone", "ptt", "state",
        "enterprise", "and", "of", "the", "de", "la", "du", "del",
        # Marketing adjectives so common across operator names that they
        # identify nothing by themselves ("Global Telekom" is not the same
        # firm as "Equatorial Global Telekom").
        "national", "united", "global", "first", "royal", "pacific",
        "atlantic", "equatorial", "continental", "premier", "horizon",
        "summit", "meridian", "aurora", "vector", "nimbus", "zenith",
        "quantum", "stellar", "crescent", "new",
    }
)

_PUNCT_RE = re.compile(r"[^\w\s]")
_WS_RE = re.compile(r"\s+")


def _strip_accents(text: str) -> str:
    decomposed = unicodedata.normalize("NFKD", text)
    return "".join(ch for ch in decomposed if not unicodedata.combining(ch))


@lru_cache(maxsize=65536)
def normalize_name(name: str) -> str:
    """Normalize a company name for comparison.

    Lower-cases, strips accents and punctuation, removes legal-form suffixes
    and collapses whitespace.  Suffixes are only stripped from the *end* of
    the name so that e.g. "AS Telecom" keeps its leading token.
    """
    text = _strip_accents(name).lower()
    text = _PUNCT_RE.sub(" ", text)
    tokens = _WS_RE.sub(" ", text).strip().split(" ") if text.strip() else []
    # Trailing single letters are legal-form debris after punctuation
    # removal ("S.A." -> "s", "a"; "B.V." -> "b", "v").
    while tokens and (tokens[-1] in LEGAL_SUFFIXES or len(tokens[-1]) == 1):
        tokens.pop()
    return " ".join(tokens)


@lru_cache(maxsize=65536)
def name_tokens(name: str) -> Tuple[str, ...]:
    """Normalized tokens of a company name."""
    normalized = normalize_name(name)
    return tuple(normalized.split(" ")) if normalized else ()


def jaccard_similarity(a: Sequence[str], b: Sequence[str]) -> float:
    """Jaccard similarity of two token sequences (on their sets)."""
    set_a, set_b = set(a), set(b)
    if not set_a and not set_b:
        return 1.0
    if not set_a or not set_b:
        return 0.0
    return len(set_a & set_b) / len(set_a | set_b)


def edit_distance(a: str, b: str) -> int:
    """Levenshtein distance with the standard O(len(a)*len(b)) DP."""
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    previous = list(range(len(b) + 1))
    for i, ch_a in enumerate(a, start=1):
        current = [i]
        for j, ch_b in enumerate(b, start=1):
            cost = 0 if ch_a == ch_b else 1
            current.append(
                min(previous[j] + 1, current[j - 1] + 1, previous[j - 1] + cost)
            )
        previous = current
    return previous[-1]


def acronym_of(name: str) -> str:
    """Uppercase acronym built from a name's token initials.

    Legal-form suffixes are kept: real acronyms usually include them
    (BSCCL = Bangladesh Submarine Cable **Company Limited**).
    """
    text = _PUNCT_RE.sub(" ", _strip_accents(name).lower())
    tokens = [t for t in _WS_RE.sub(" ", text).strip().split(" ") if t]
    return "".join(token[0] for token in tokens).upper()


def acronym_match(short: str, long_name: str) -> bool:
    """True if ``short`` looks like an acronym of ``long_name``.

    Handles the BSCCL-style case where WHOIS carries an acronym while
    documents carry the expanded legal name.  The acronym must be at least
    four letters: three-letter acronyms collide far too often across
    unrelated operators.
    """
    candidate = normalize_name(short).replace(" ", "").upper()
    if len(candidate) < 4:
        return False
    if candidate == acronym_of(long_name):
        return True
    # Also accept the acronym of the suffix-stripped name: sources differ in
    # whether they spell out the legal form ("... Company Limited").
    stripped = "".join(token[0] for token in name_tokens(long_name) if token).upper()
    return len(stripped) >= 4 and candidate == stripped


def _token_weight(token: str) -> float:
    """Weight of a token in weighted-Jaccard scoring."""
    if token in GENERIC_TOKENS:
        return 0.4
    if len(token) <= 2:
        return 0.2
    return 1.0


def _tokens_match(a: str, b: str) -> bool:
    """Fuzzy token equality: exact, or one transliteration slip for long
    tokens (``Telecomunication`` vs ``Telecommunication``)."""
    if a == b:
        return True
    if min(len(a), len(b)) >= 5 and abs(len(a) - len(b)) <= 2:
        return edit_distance(a, b) <= 1
    return False


@lru_cache(maxsize=262144)
def name_similarity(a: str, b: str) -> float:
    """Similarity score in [0, 1] for two company names.

    The core signal is a *distinctiveness-weighted* token Jaccard: generic
    telecom vocabulary ("Telecom", "Communications", "Network"...) carries
    little weight, so "Macao Telekom" and "Canada Telekom" score low while
    "Telekom Malaysia Berhad" and "Telekom Malaysia" score ~1.  On top of
    that: a containment bonus for brand-inside-legal-name pairs, an acronym
    bonus (BSCCL vs its expansion), and a character-level channel reserved
    for single-token brand names.
    """
    norm_a, norm_b = normalize_name(a), normalize_name(b)
    if not norm_a or not norm_b:
        return 0.0
    if norm_a == norm_b:
        return 1.0
    tokens_a, tokens_b = norm_a.split(), norm_b.split()

    # Weighted fuzzy Jaccard.
    matched_b: set = set()
    inter_weight = 0.0
    for token_a in set(tokens_a):
        for token_b in set(tokens_b):
            if token_b in matched_b:
                continue
            if _tokens_match(token_a, token_b):
                inter_weight += max(_token_weight(token_a), _token_weight(token_b))
                matched_b.add(token_b)
                break
    union_tokens = set(tokens_a) | set(tokens_b)
    # Matched fuzzy pairs count once: remove the lighter twin from the union.
    union_weight = sum(_token_weight(t) for t in union_tokens)
    for token_b in matched_b:
        if token_b not in set(tokens_a):
            union_weight -= _token_weight(token_b)
    score = inter_weight / union_weight if union_weight > 0 else 0.0

    shorter, longer = (
        (norm_a, norm_b) if len(norm_a) <= len(norm_b) else (norm_b, norm_a)
    )
    if shorter in longer and all(
        token not in GENERIC_TOKENS for token in shorter.split()
    ):
        # Brand-contained-in-legal-name bonus ("ZamTel" in "ZamTel
        # Communications Ltd") — only when the contained name is made of
        # distinctive tokens, otherwise "honduras state" would swallow any
        # longer name built from the same generic vocabulary.
        score = max(score, 0.8)
    if acronym_match(a, b) or acronym_match(b, a):
        score = max(score, 0.9)
    if len(tokens_a) == 1 and len(tokens_b) == 1:
        longest = max(len(norm_a), len(norm_b))
        score = max(score, 1.0 - edit_distance(norm_a, norm_b) / longest)
    return min(score, 1.0)
