"""Selecting candidate ASes from CTI scores (§4.1, "Countries' main
upstream providers").

The paper applies CTI in the 75 countries previously inferred to be
transit-dominant and takes the two highest-ranked transit ASes per country.
Here the transit-dominant country list comes from whoever calls us (the
pipeline passes the world's inferred list; ablations can pass others).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Set, Tuple

from repro.cti.metric import CTIComputer

__all__ = ["CTISelection", "select_cti_candidates"]


@dataclass(frozen=True)
class CTISelection:
    """The CTI candidate set plus per-AS provenance."""

    asns: frozenset
    #: asn -> list of (country, rank, score) entries that selected it.
    provenance: Dict[int, Tuple[Tuple[str, int, float], ...]]
    countries_applied: Tuple[str, ...]

    def countries_of(self, asn: int) -> List[str]:
        """Countries in which ``asn`` ranked among the top influencers."""
        return [cc for cc, _, _ in self.provenance.get(asn, ())]


def select_cti_candidates(
    cti: CTIComputer,
    eligible_countries: Iterable[str],
    top_k: int = 2,
    min_score: float = 0.02,
    context=None,
) -> CTISelection:
    """Take the ``top_k`` CTI-ranked ASes in every eligible country.

    ``min_score`` discards countries whose "top" transit ASes barely carry
    anything (the metric is meaningless where peering dominates).

    ``context`` (an :class:`~repro.parallel.ExecutionContext`) fans the
    per-origin routing-tree work out across workers before the per-country
    scoring replays it — results are bit-identical to the serial path.
    The fan-out is sharded by country group (``REPRO_CTI_SHARD``): each
    shard precomputes, scores, and releases the transit terms no later
    shard needs, so term memory stays bounded at internet scale.  Scores
    stream per country (:meth:`~repro.cti.metric.CTIComputer.
    stream_country_scores`) and are ranked as they arrive, so selection
    never waits on — or re-reads — the full score set.
    """
    eligible = sorted(set(eligible_countries))
    provenance: Dict[int, List[Tuple[str, int, float]]] = {}
    selected: Set[int] = set()
    applied: List[str] = []
    for cc, scores in cti.stream_country_scores(eligible, context=context):
        ranked = sorted(scores.items(), key=lambda pair: (-pair[1], pair[0]))[:top_k]
        kept = [(asn, score) for asn, score in ranked if score >= min_score]
        if not kept:
            continue
        applied.append(cc)
        for rank, (asn, score) in enumerate(kept, start=1):
            selected.add(asn)
            provenance.setdefault(asn, []).append((cc, rank, score))
    return CTISelection(
        asns=frozenset(selected),
        provenance={asn: tuple(entries) for asn, entries in provenance.items()},
        countries_applied=tuple(applied),
    )
