"""Country-Level Transit Influence (CTI) — the paper's Appendix G metric."""

from repro.cti.metric import CTIComputer
from repro.cti.selection import CTISelection, select_cti_candidates

__all__ = ["CTIComputer", "CTISelection", "select_cti_candidates"]
