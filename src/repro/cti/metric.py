"""Country-Level Transit Influence (Appendix G).

For a transit AS and a country C the metric is::

    CTI(AS, C) = sum over monitors m of
        w(m)/|M| * sum over prefixes p with AS on the preferred path m->p of
            ( a(p, C) / A(C) ) * ( 1 / d(AS, m, p) )

where ``w(m)`` is the inverse of the number of monitors in m's host AS,
``a(p, C)`` is the number of addresses of prefix p geolocated to C that are
not covered by a more-specific announced prefix, ``A(C)`` is the total
address count geolocated to C, and ``d`` is the AS-hop distance between AS
and the prefix on the observed path.  The origin AS itself is not a transit
hop (d would be 0) and a monitor hosted inside AS does not count toward
AS's influence.

CTI captures how much of a country's inbound connectivity funnels through a
given transit provider — exactly the lens that surfaces the small,
state-owned gateways no popularity-based source can see (§4.1, Appendix D).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import AnalysisError
from repro.net.monitors import RouteCollector
from repro.obs import get_metrics
from repro.sources.geolocation import GeolocationService
from repro.sources.prefix2as import Prefix2ASTable

__all__ = ["CTIComputer"]


class CTIComputer:
    """Computes CTI scores per country over a fixed BGP/geolocation view."""

    def __init__(
        self,
        table: Prefix2ASTable,
        geolocation: GeolocationService,
        collector: RouteCollector,
        min_address_fraction: float = 1e-3,
    ) -> None:
        self._table = table
        self._geolocation = geolocation
        self._collector = collector
        #: Origins holding less than this fraction of a country's addresses
        #: are skipped: their CTI contribution is bounded by the fraction
        #: itself, and pruning them avoids computing routing trees for the
        #: long tail of geolocation-leak artifacts.
        self._min_address_fraction = min_address_fraction
        # Precompute, per country: origin AS -> geolocated address weight,
        # de-duplicated with the more-specific rule.
        self._per_country: Dict[str, Dict[int, int]] = {}
        self._country_totals: Dict[str, int] = {}
        for prefix, origin in table:
            usable = table.uncovered_addresses(prefix)
            if usable == 0:
                continue
            split = geolocation.locate_prefix(prefix, origin)
            scale = usable / prefix.num_addresses
            for cc, count in split.items():
                scaled = round(count * scale)
                if scaled <= 0:
                    continue
                weights = self._per_country.setdefault(cc, {})
                weights[origin] = weights.get(origin, 0) + scaled
                self._country_totals[cc] = (
                    self._country_totals.get(cc, 0) + scaled
                )
        self._cti_cache: Dict[str, Dict[int, float]] = {}

    def countries(self) -> List[str]:
        """Countries with any geolocated address space."""
        return sorted(self._per_country)

    def country_address_total(self, cc: str) -> int:
        """A(C): total geolocated addresses of the country."""
        return self._country_totals.get(cc, 0)

    def country_cti(self, cc: str) -> Dict[int, float]:
        """CTI(AS, cc) for every transit AS with non-zero influence."""
        metrics = get_metrics()
        if cc in self._cti_cache:
            metrics.incr("cti.cache_hits")
            return self._cti_cache[cc]
        origin_weights = self._per_country.get(cc)
        total = self._country_totals.get(cc, 0)
        metrics.incr("cti.countries_computed")
        if not origin_weights or total == 0:
            self._cti_cache[cc] = {}
            return {}
        monitors = self._collector.monitors
        monitor_count = len(monitors)
        if monitor_count == 0:
            raise AnalysisError("CTI requires at least one monitor")
        # w(m)/|M| depends only on the monitor, not on the origin being
        # walked: compute it once per call instead of once per
        # origin x monitor iteration of the hot loop below.
        monitor_weights = [
            (monitor, monitors.weight(monitor) / monitor_count)
            for monitor in monitors
        ]
        scores: Dict[int, float] = {}
        origins_scored = 0
        origins_pruned = 0
        for origin, weight in origin_weights.items():
            address_fraction = weight / total
            if address_fraction < self._min_address_fraction:
                origins_pruned += 1
                continue
            origins_scored += 1
            for monitor, w in monitor_weights:
                path = self._collector.path(monitor, origin)
                if path is None or len(path) < 2:
                    continue
                # path[0] is the monitor's host AS, path[-1] the origin.
                length = len(path)
                for index, asn in enumerate(path):
                    distance = length - 1 - index
                    if distance == 0:
                        continue  # the origin is not a transit hop
                    if asn == monitor.host_asn:
                        continue  # m is contained within AS itself
                    scores[asn] = scores.get(asn, 0.0) + (
                        w * address_fraction / distance
                    )
        metrics.incr("cti.origins_scored", origins_scored)
        metrics.incr("cti.origins_pruned", origins_pruned)
        self._cti_cache[cc] = scores
        return scores

    def top_influencers(self, cc: str, k: int = 2) -> List[Tuple[int, float]]:
        """The ``k`` highest-CTI transit ASes for a country."""
        scores = self.country_cti(cc)
        ranked = sorted(scores.items(), key=lambda pair: (-pair[1], pair[0]))
        return ranked[:k]

    def cti_of(self, asn: int, cc: str) -> float:
        """CTI score of one AS on one country (0 when absent)."""
        return self.country_cti(cc).get(asn, 0.0)
