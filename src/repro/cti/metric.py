"""Country-Level Transit Influence (Appendix G).

For a transit AS and a country C the metric is::

    CTI(AS, C) = sum over monitors m of
        w(m)/|M| * sum over prefixes p with AS on the preferred path m->p of
            ( a(p, C) / A(C) ) * ( 1 / d(AS, m, p) )

where ``w(m)`` is the inverse of the number of monitors in m's host AS,
``a(p, C)`` is the number of addresses of prefix p geolocated to C that are
not covered by a more-specific announced prefix, ``A(C)`` is the total
address count geolocated to C, and ``d`` is the AS-hop distance between AS
and the prefix on the observed path.  The origin AS itself is not a transit
hop (d would be 0) and a monitor hosted inside AS does not count toward
AS's influence.

CTI captures how much of a country's inbound connectivity funnels through a
given transit provider — exactly the lens that surfaces the small,
state-owned gateways no popularity-based source can see (§4.1, Appendix D).

Execution shape
---------------
The monitor-observed path walk for one origin is independent of the country
being scored, so the expensive part — computing the routing tree toward the
origin and collecting its per-hop ``(asn, w(m)/|M|, d)`` *transit terms* —
is done **once per origin** and shared by every country that scores that
origin.  :meth:`CTIComputer.precompute` fans that per-origin work out over
an :class:`~repro.parallel.ExecutionContext`; :meth:`country_cti` then
replays the terms in exactly the order the serial loop visits them, so
scores are bit-identical regardless of worker count.  The per-country
address-weight index is built lazily on first use: constructing a
``CTIComputer`` costs nothing if (for example) cached scores are preloaded.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

from repro.errors import AnalysisError
from repro.cti.soa import CountryWeightIndex
from repro.net.monitors import RouteCollector
from repro.net.prefix import Prefix
from repro.obs import get_metrics
from repro.sources.geolocation import GeolocationService
from repro.sources.prefix2as import Prefix2ASTable

__all__ = ["CTIComputer"]

#: Countries scored per shard by :meth:`CTIComputer.score_countries`; the
#: terms of origins no later shard needs are released between shards, so
#: peak memory is bounded by the widest shard instead of the whole run.
_DEFAULT_COUNTRY_SHARD = 16

#: One transit contribution: (transit ASN, w(m)/|M|, AS-hop distance).
TransitTerm = Tuple[int, float, int]


def _walk_origin(collector: RouteCollector, origin: int) -> Tuple[TransitTerm, ...]:
    """Transit terms of one origin over every monitor, in monitor order.

    This is the country-independent inner loop of the metric: it computes
    (or reuses) the routing tree toward ``origin`` and emits one
    ``(asn, w, d)`` term per transit hop per monitor, preserving the
    (monitor, hop) iteration order of the original serial formula so that
    replaying the terms reproduces its floating-point sums bit for bit.
    """
    terms: List[TransitTerm] = []
    for monitor, w in collector.monitors.normalized_weights():
        path = collector.path(monitor, origin)
        if path is None or len(path) < 2:
            continue
        # path[0] is the monitor's host AS, path[-1] the origin.
        length = len(path)
        for index, asn in enumerate(path):
            distance = length - 1 - index
            if distance == 0:
                continue  # the origin is not a transit hop
            if asn == monitor.host_asn:
                continue  # m is contained within AS itself
            terms.append((asn, w, distance))
    return tuple(terms)


def _walk_origin_task(
    collector: RouteCollector, origin: int
) -> Tuple[int, Tuple[TransitTerm, ...]]:
    """Worker task: ``(origin, terms)`` so results self-identify."""
    return origin, _walk_origin(collector, origin)


class CTIComputer:
    """Computes CTI scores per country over a fixed BGP/geolocation view."""

    def __init__(
        self,
        table: Prefix2ASTable,
        geolocation: GeolocationService,
        collector: RouteCollector,
        min_address_fraction: float = 1e-3,
    ) -> None:
        self._table = table
        self._geolocation = geolocation
        self._collector = collector
        #: Origins holding less than this fraction of a country's addresses
        #: are skipped: their CTI contribution is bounded by the fraction
        #: itself, and pruning them avoids computing routing trees for the
        #: long tail of geolocation-leak artifacts.
        self._min_address_fraction = min_address_fraction
        # Struct-of-arrays per-country address-weight index (origin and
        # weight columns per country span, see repro.cti.soa).  Built
        # lazily on first use — a computer whose scores come preloaded
        # from the persistent cache never pays for the table scan.
        self._index: Optional[CountryWeightIndex] = None
        #: Dict-shaped view of the index, materialized only when the
        #: reference oracle (or a legacy caller) asks for it.
        self._dict_view: Optional[
            Tuple[Dict[str, Dict[int, int]], Dict[str, int]]
        ] = None
        #: Per-origin transit terms, shared across all countries that score
        #: the origin (and across serial/parallel execution paths).
        self._terms: Dict[int, Tuple[TransitTerm, ...]] = {}
        self._cti_cache: Dict[str, Dict[int, float]] = {}

    @property
    def min_address_fraction(self) -> float:
        """The address-fraction prune threshold (part of the cache key)."""
        return self._min_address_fraction

    # -- lazy per-country address index ------------------------------------
    def _ensure_index(self) -> CountryWeightIndex:
        if self._index is not None:
            return self._index
        weights_by_cc: Dict[str, Dict[int, int]] = {}
        totals: Dict[str, int] = {}
        # The flat prefix/count view bakes the post-order trie pass into
        # its uncovered column, so this loop pays only for geolocation —
        # no per-prefix dict lookups.  Row order is table order, identical
        # to iterating (prefix, origin) pairs directly.
        flat = self._table.flat_counts()
        get_metrics().incr("cti.index_prefixes", len(self._table))
        for base, length, origin, usable in flat.rows():
            if usable == 0:
                continue
            prefix = Prefix(base, length)
            split = self._geolocation.locate_prefix(prefix, origin)
            scale = usable / prefix.num_addresses
            for cc, count in split.items():
                scaled = round(count * scale)
                if scaled <= 0:
                    continue
                weights = weights_by_cc.setdefault(cc, {})
                weights[origin] = weights.get(origin, 0) + scaled
                totals[cc] = totals.get(cc, 0) + scaled
        # The dicts are transient: the index flattens them to SoA columns
        # in the same insertion order, which is what the scoring loop (and
        # its float-addition order) replays.
        self._index = CountryWeightIndex.build(weights_by_cc, totals)
        return self._index

    @property
    def weight_index(self) -> CountryWeightIndex:
        """The flat per-country weight index (shm-shareable)."""
        return self._ensure_index()

    @property
    def _per_country(self) -> Dict[str, Dict[int, int]]:
        """Dict-shaped view of the weight index (oracle/compat path)."""
        if self._dict_view is None:
            self._dict_view = self._ensure_index().as_dicts()
        return self._dict_view[0]

    @property
    def _country_totals(self) -> Dict[str, int]:
        if self._dict_view is None:
            self._dict_view = self._ensure_index().as_dicts()
        return self._dict_view[1]

    def countries(self) -> List[str]:
        """Countries with any geolocated address space."""
        return sorted(self._ensure_index().ccs)

    def country_address_total(self, cc: str) -> int:
        """A(C): total geolocated addresses of the country."""
        return self._ensure_index().total(cc)

    # -- shared per-origin transit terms -----------------------------------
    def scored_origins(self, cc: str) -> List[int]:
        """Public view of the origins CTI actually scores for ``cc``.

        Scenario packs use this to aim perturbations (hijack victims,
        leak beneficiaries) at origins that contribute to the metric.
        """
        return self._scored_origins(cc)

    def _scored_origins(self, cc: str) -> List[int]:
        """Origins of ``cc`` passing the address-fraction prune, in the
        index column order the scoring loop uses."""
        index = self._ensure_index()
        span = index.span(cc)
        total = index.total(cc)
        if span is None or total == 0:
            return []
        start, end = span
        origins = index.origins
        weights = index.weights
        return [
            origins[i]
            for i in range(start, end)
            if weights[i] / total >= self._min_address_fraction
        ]

    def _origin_terms(self, origin: int) -> Tuple[TransitTerm, ...]:
        terms = self._terms.get(origin)
        if terms is None:
            terms = _walk_origin(self._collector, origin)
            self._terms[origin] = terms
            get_metrics().incr("cti.origins_walked")
        return terms

    def precompute(
        self,
        ccs: Iterable[str],
        context=None,
    ) -> int:
        """Compute transit terms for every origin the given countries score.

        Origins are deduplicated across countries first, then fanned out
        over ``context`` (an :class:`~repro.parallel.ExecutionContext`;
        None or a serial context computes inline).  Countries whose scores
        are already cached — in memory or preloaded from the persistent
        cache — contribute no work.  Returns the number of origins walked.
        """
        pending = [cc for cc in ccs if cc not in self._cti_cache]
        if not pending:
            return 0
        if len(self._collector.monitors) == 0:
            raise AnalysisError("CTI requires at least one monitor")
        needed = sorted(
            {
                origin
                for cc in pending
                for origin in self._scored_origins(cc)
                if origin not in self._terms
            }
        )
        if not needed:
            return 0
        metrics = get_metrics()
        if context is None or context.is_serial:
            for origin in needed:
                self._origin_terms(origin)
        else:
            results = context.map_ordered(
                _walk_origin_task,
                needed,
                state=self._collector,
                label="cti.terms",
            )
            for origin, terms in results:
                self._terms[origin] = terms
            metrics.incr("cti.origins_walked", len(needed))
        return len(needed)

    def release_terms(self, keep: Optional[Set[int]] = None) -> int:
        """Drop cached transit terms (all, or all not in ``keep``).

        Scores already computed are unaffected; origins scored again later
        simply re-walk.  Returns the number of term tuples released.
        """
        if keep is None:
            released = len(self._terms)
            self._terms = {}
        else:
            victims = [o for o in self._terms if o not in keep]
            for origin in victims:
                del self._terms[origin]
            released = len(victims)
        if released:
            get_metrics().incr("cti.terms_released", released)
        return released

    def score_countries(
        self,
        ccs: Iterable[str],
        context=None,
        shard_size: Optional[int] = None,
    ) -> None:
        """Score many countries in bounded memory, sharded by country group.

        Drains :meth:`stream_country_scores` with retention on: every
        yielded score map also lands in the in-memory cache, exactly like
        the historical eager pass.
        """
        for _ in self.stream_country_scores(ccs, context=context, shard_size=shard_size):
            pass

    def stream_country_scores(
        self,
        ccs: Iterable[str],
        context=None,
        shard_size: Optional[int] = None,
        retain: bool = True,
    ):
        """Yield ``(cc, scores)`` per country, sharded, in input order.

        Splits ``ccs`` into shards of ``shard_size`` (default
        ``REPRO_CTI_SHARD``, falling back to 16), precomputes each shard's
        origin terms over ``context``, scores and **yields** the shard's
        countries one at a time, then releases the terms no remaining
        shard needs.  Peak term memory is bounded by the widest shard +
        carryover instead of the whole country list, and — because
        per-country scores depend only on that country's column span and
        its origins' terms — the scores are bit-identical to an unsharded
        pass regardless of shard size or backend.

        With ``retain=False`` each score map is dropped from the cache
        right after it is yielded, so a consumer that reduces per country
        (ranking, export, aggregation) never holds more than one shard of
        scores — the coordinator-side merge streams instead of
        accumulating.  Countries already cached are yielded from cache
        (and kept, regardless of ``retain``).
        """
        if shard_size is None:
            shard_size = int(
                os.environ.get("REPRO_CTI_SHARD", str(_DEFAULT_COUNTRY_SHARD))
            )
        shard_size = max(1, shard_size)
        ccs = list(ccs)
        pending = {cc for cc in ccs if cc not in self._cti_cache}
        order = [cc for cc in ccs if cc in pending]
        shards = [order[i : i + shard_size] for i in range(0, len(order), shard_size)]
        if len(shards) > 1:
            get_metrics().incr("cti.country_shards", len(shards))
        # Shards are computed on demand as the consumer advances, so the
        # in-flight buffer never exceeds one shard of score maps.
        ready: Dict[str, Dict[int, float]] = {}
        processed = 0
        for cc in ccs:
            if cc not in pending:
                yield cc, self._cti_cache.get(cc, {})
                continue
            while cc not in ready:
                shard = shards[processed]
                processed += 1
                self.precompute(shard, context=context)
                for shard_cc in shard:
                    scores = self.country_cti(shard_cc)
                    if not retain:
                        self._cti_cache.pop(shard_cc, None)
                    ready[shard_cc] = scores
                remaining = shards[processed:]
                if remaining:
                    keep: Set[int] = set()
                    for later in remaining:
                        for later_cc in later:
                            keep.update(self._scored_origins(later_cc))
                    self.release_terms(keep=keep)
            yield cc, ready.pop(cc)

    # -- persistent-cache interchange --------------------------------------
    def preload_terms(self, terms: Mapping[int, Tuple[TransitTerm, ...]]) -> None:
        """Install externally computed transit terms (incremental reuse).

        Sound only when the terms were walked under the same routing view
        (graph adjacency + monitors) — the caller keys them on the routing
        fingerprint.  Preloaded origins are never re-walked.
        """
        for origin, origin_terms in terms.items():
            self._terms[int(origin)] = tuple(
                (int(asn), float(w), int(d)) for asn, w, d in origin_terms
            )

    def term_snapshot(self) -> Dict[int, Tuple[TransitTerm, ...]]:
        """Copy of the per-origin transit terms currently held.

        Sharded scoring releases terms between shards, so this may cover
        only the origins of the final shard — callers treat it as a
        partial carry, never as the full walked set.
        """
        return dict(self._terms)

    def preload_scores(self, scores: Mapping[str, Mapping[int, float]]) -> None:
        """Install externally computed score maps (warm persistent cache).

        Preloaded countries are served from memory: no address index, no
        routing trees, no ``cti.countries_computed`` increments.
        """
        for cc, country_scores in scores.items():
            self._cti_cache[cc] = dict(country_scores)

    def computed_scores(self) -> Dict[str, Dict[int, float]]:
        """Copy of every per-country score map computed (or preloaded) so far."""
        return {cc: dict(scores) for cc, scores in self._cti_cache.items()}

    def transit_term_stats(self) -> Dict[str, int]:
        """Routing-tree statistics for diagnostics and cache metadata."""
        return {
            "origins_walked": len(self._terms),
            "transit_terms": sum(len(t) for t in self._terms.values()),
            "trees_computed": self._collector.trees_computed(),
        }

    # -- the metric --------------------------------------------------------
    def country_cti(self, cc: str) -> Dict[int, float]:
        """CTI(AS, cc) for every transit AS with non-zero influence.

        Scores straight off the SoA weight index: one pass over the
        country's column span, with the same divisions and additions (in
        the same order) as the dict walk it replaced — see
        :meth:`_reference_country_cti`, the retained oracle.
        """
        metrics = get_metrics()
        if cc in self._cti_cache:
            metrics.incr("cti.cache_hits")
            return self._cti_cache[cc]
        index = self._ensure_index()
        span = index.span(cc)
        total = index.total(cc)
        metrics.incr("cti.countries_computed")
        if span is None or span[0] == span[1] or total == 0:
            self._cti_cache[cc] = {}
            return {}
        if len(self._collector.monitors) == 0:
            raise AnalysisError("CTI requires at least one monitor")
        start, end = span
        origins = index.origins
        weights = index.weights
        scores: Dict[int, float] = {}
        origins_scored = 0
        origins_pruned = 0
        for i in range(start, end):
            address_fraction = weights[i] / total
            if address_fraction < self._min_address_fraction:
                origins_pruned += 1
                continue
            origins_scored += 1
            # Replay the shared per-origin terms in the exact (monitor, hop)
            # order of the original nested loop: same additions, same
            # float associativity, bit-identical scores.
            for asn, w, distance in self._origin_terms(origins[i]):
                scores[asn] = scores.get(asn, 0.0) + (w * address_fraction / distance)
        metrics.incr("cti.origins_scored", origins_scored)
        metrics.incr("cti.origins_pruned", origins_pruned)
        self._cti_cache[cc] = scores
        return scores

    def _reference_country_cti(self, cc: str) -> Dict[int, float]:
        """Dict-walk oracle: the pre-SoA scoring loop, retained verbatim.

        Bypasses the score cache and walks the dict-shaped index exactly
        as the original implementation did.  The randomized equivalence
        suite asserts ``country_cti(cc) == _reference_country_cti(cc)``
        (bit-identical floats) across seeds; never call this in
        production paths.
        """
        origin_weights = self._per_country.get(cc)
        total = self._country_totals.get(cc, 0)
        if not origin_weights or total == 0:
            return {}
        if len(self._collector.monitors) == 0:
            raise AnalysisError("CTI requires at least one monitor")
        scores: Dict[int, float] = {}
        for origin, weight in origin_weights.items():
            address_fraction = weight / total
            if address_fraction < self._min_address_fraction:
                continue
            for asn, w, distance in self._origin_terms(origin):
                scores[asn] = scores.get(asn, 0.0) + (w * address_fraction / distance)
        return scores

    def _reference_scored_origins(self, cc: str) -> List[int]:
        """Dict-walk oracle for :meth:`_scored_origins`."""
        origin_weights = self._per_country.get(cc)
        total = self._country_totals.get(cc, 0)
        if not origin_weights or total == 0:
            return []
        return [
            origin
            for origin, weight in origin_weights.items()
            if weight / total >= self._min_address_fraction
        ]

    def top_influencers(self, cc: str, k: int = 2) -> List[Tuple[int, float]]:
        """The ``k`` highest-CTI transit ASes for a country."""
        scores = self.country_cti(cc)
        ranked = sorted(scores.items(), key=lambda pair: (-pair[1], pair[0]))
        return ranked[:k]

    def cti_of(self, asn: int, cc: str) -> float:
        """CTI score of one AS on one country (0 when absent)."""
        return self.country_cti(cc).get(asn, 0.0)
