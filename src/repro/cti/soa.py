"""Struct-of-arrays per-country address-weight index for CTI scoring.

PR 3 replaced the quadratic cone and trie passes with flat single-pass
kernels; this module extends that approach to the last per-object dict in
the CTI hot path.  The per-country index — ``{cc: {origin: weight}}`` plus
``{cc: total}`` — becomes four parallel arrays and a country string pool:

* ``cc_blob`` / ``cc_offsets`` — UTF-8 string pool of country codes with a
  byte-offset table (``n + 1`` entries);
* ``starts`` — per-country span table into the origin/weight columns
  (``n + 1`` entries, country ``i`` owns ``[starts[i], starts[i+1])``);
* ``origins`` / ``weights`` — the columns, concatenated per country in
  the exact insertion order the dict-based index produced, so replaying a
  span reproduces the dict iteration (and therefore every floating-point
  sum) bit for bit;
* ``totals`` — A(C) per country.

The index is immutable after :meth:`CountryWeightIndex.build` and
implements the :mod:`repro.parallel.shm` shareable protocol, so a
scale-10 world's weight table can live in one shared segment instead of
per-worker dict copies.
"""

from __future__ import annotations

from array import array
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["CountryWeightIndex"]

#: Buffer order for the shm protocol (must match ``__shm_export__``).
_FORMATS: Tuple[str, ...] = ("B", "i", "i", "q", "q", "q")


class CountryWeightIndex:
    """Immutable SoA view of per-country origin address weights."""

    __slots__ = (
        "cc_blob",
        "cc_offsets",
        "starts",
        "origins",
        "weights",
        "totals",
        "_ccs",
        "_slot",
    )

    def __init__(
        self,
        cc_blob,
        cc_offsets: Sequence[int],
        starts: Sequence[int],
        origins: Sequence[int],
        weights: Sequence[int],
        totals: Sequence[int],
    ) -> None:
        self.cc_blob = cc_blob
        self.cc_offsets = cc_offsets
        self.starts = starts
        self.origins = origins
        self.weights = weights
        self.totals = totals
        self._ccs: Optional[Tuple[str, ...]] = None
        self._slot: Optional[Dict[str, int]] = None

    # -- construction -------------------------------------------------------
    @classmethod
    def build(
        cls,
        weights_by_cc: Dict[str, Dict[int, int]],
        totals: Dict[str, int],
    ) -> "CountryWeightIndex":
        """Flatten the transient dict index, preserving insertion order.

        The dicts are the build-time representation only; nothing retains
        them after flattening.  Column order per country *is* the dict
        iteration order, which is what keeps SoA scoring byte-identical to
        the dict walk it replaces.
        """
        ccs = list(weights_by_cc)
        blob_parts: List[bytes] = []
        cc_offsets = array("i", [0])
        starts = array("i", [0])
        origins = array("q")
        weights = array("q")
        total_col = array("q")
        pos = 0
        count = 0
        for cc in ccs:
            encoded = cc.encode("utf-8")
            blob_parts.append(encoded)
            pos += len(encoded)
            cc_offsets.append(pos)
            per_origin = weights_by_cc[cc]
            for origin, weight in per_origin.items():
                origins.append(origin)
                weights.append(weight)
            count += len(per_origin)
            starts.append(count)
            total_col.append(totals.get(cc, 0))
        return cls(
            b"".join(blob_parts),
            cc_offsets,
            starts,
            origins,
            weights,
            total_col,
        )

    # -- zero-copy shipping (repro.parallel.shm protocol) -------------------
    def __shm_export__(self):
        buffers = (
            self.cc_blob,
            self.cc_offsets,
            self.starts,
            self.origins,
            self.weights,
            self.totals,
        )
        return {}, list(zip(_FORMATS, buffers))

    @classmethod
    def __shm_rebuild__(cls, meta, views) -> "CountryWeightIndex":
        return cls(*views)

    # -- queries ------------------------------------------------------------
    @property
    def ccs(self) -> Tuple[str, ...]:
        """Country codes in index order (decoded from the pool once)."""
        if self._ccs is None:
            blob = bytes(self.cc_blob)
            offsets = self.cc_offsets
            self._ccs = tuple(
                blob[offsets[i] : offsets[i + 1]].decode("utf-8")
                for i in range(len(offsets) - 1)
            )
        return self._ccs

    def _slot_of(self, cc: str) -> Optional[int]:
        if self._slot is None:
            self._slot = {cc: i for i, cc in enumerate(self.ccs)}
        return self._slot.get(cc)

    def __len__(self) -> int:
        return len(self.starts) - 1

    def __contains__(self, cc: str) -> bool:
        return self._slot_of(cc) is not None

    def span(self, cc: str) -> Optional[Tuple[int, int]]:
        """Column span ``[start, end)`` of ``cc``, or None if unknown."""
        slot = self._slot_of(cc)
        if slot is None:
            return None
        return self.starts[slot], self.starts[slot + 1]

    def total(self, cc: str) -> int:
        """A(C): the country's total geolocated address count."""
        slot = self._slot_of(cc)
        return self.totals[slot] if slot is not None else 0

    def as_dicts(self) -> Tuple[Dict[str, Dict[int, int]], Dict[str, int]]:
        """Reconstruct the dict-shaped index (reference/compat path).

        Rebuilds ``({cc: {origin: weight}}, {cc: total})`` with the same
        insertion order the build-time dicts had.  Used by the retained
        dict-based oracle and by callers that still want mapping access;
        the scoring hot path never calls this.
        """
        weights_by_cc: Dict[str, Dict[int, int]] = {}
        totals: Dict[str, int] = {}
        origins = self.origins
        weights = self.weights
        for slot, cc in enumerate(self.ccs):
            start, end = self.starts[slot], self.starts[slot + 1]
            weights_by_cc[cc] = {origins[i]: weights[i] for i in range(start, end)}
            totals[cc] = self.totals[slot]
        return weights_by_cc, totals
