"""Plain-text table rendering for the evaluation harness.

Every benchmark prints its table/figure data with this renderer so the
output visually matches the rows the paper reports.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

__all__ = ["render_table"]


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render rows as a fixed-width text table.

    >>> print(render_table(("a", "b"), [(1, 22)]))
    a | b
    --+---
    1 | 22
    """
    materialized: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        if len(row) != len(widths):
            raise ValueError(f"row has {len(row)} cells, expected {len(widths)}")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * max(len(title), sum(widths) + 3 * len(widths) - 3))
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in materialized:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
