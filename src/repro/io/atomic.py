"""Crash-safe file replacement for the dataset exporters.

Both exporters used to write straight into the destination path, so a
crash mid-export destroyed the previous dataset.  :func:`atomic_replace`
yields a temporary path in the *same directory* as the destination (so the
final rename never crosses a filesystem) and promotes it with
:func:`os.replace` only after the writer finished without raising; on any
failure the temporary file is removed and the destination is untouched.
"""

from __future__ import annotations

import contextlib
import os
import tempfile
from pathlib import Path
from typing import Iterator, Union

__all__ = ["atomic_replace"]


@contextlib.contextmanager
def atomic_replace(path: Union[str, Path]) -> Iterator[Path]:
    """Yield a temp path next to ``path``; atomically promote it on success."""
    path = Path(path)
    directory = path.parent if str(path.parent) else Path(".")
    fd, tmp_name = tempfile.mkstemp(
        dir=str(directory), prefix=path.name + ".", suffix=".tmp"
    )
    os.close(fd)
    tmp_path = Path(tmp_name)
    try:
        yield tmp_path
        # Preserve the permissions of the file being replaced; mkstemp
        # creates 0600 files, which would otherwise leak onto the export.
        if path.exists():
            os.chmod(tmp_path, path.stat().st_mode & 0o7777)
        else:
            os.chmod(tmp_path, 0o644)
        os.replace(tmp_path, path)
    finally:
        with contextlib.suppress(FileNotFoundError):
            tmp_path.unlink()
