"""Crash-safe file replacement for the dataset exporters.

Both exporters used to write straight into the destination path, so a
crash mid-export destroyed the previous dataset.  :func:`atomic_replace`
yields a temporary path in the *same directory* as the destination (so the
final rename never crosses a filesystem) and promotes it with
:func:`os.replace` only after the writer finished without raising; on any
failure the temporary file is removed and the destination is untouched.

Durability matters as much as atomicity here: the rename is the hot-swap
point the ``repro serve`` reloader trusts, and a rename alone only updates
the directory entry in the page cache.  A power loss shortly after
``os.replace`` could therefore lose *both* the old and the new dataset.
So the temporary file is flushed to stable storage (``fsync``) before the
rename, and the parent directory entry after it.
"""

from __future__ import annotations

import contextlib
import os
import tempfile
from pathlib import Path
from typing import Iterator, Union

__all__ = ["atomic_replace"]


def _fsync_file(path: Path) -> None:
    """Flush a finished file's contents to stable storage."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _fsync_dir(directory: Path) -> None:
    """Persist a directory entry (the rename itself) to stable storage."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return  # some platforms refuse to open directories
    try:
        os.fsync(fd)
    except OSError:
        pass  # fsync on a directory fd is not supported everywhere
    finally:
        os.close(fd)


@contextlib.contextmanager
def atomic_replace(path: Union[str, Path]) -> Iterator[Path]:
    """Yield a temp path next to ``path``; atomically promote it on success."""
    path = Path(path)
    directory = path.parent if str(path.parent) else Path(".")
    fd, tmp_name = tempfile.mkstemp(
        dir=str(directory), prefix=path.name + ".", suffix=".tmp"
    )
    os.close(fd)
    tmp_path = Path(tmp_name)
    try:
        yield tmp_path
        # Preserve the permissions of the file being replaced; mkstemp
        # creates 0600 files, which would otherwise leak onto the export.
        if path.exists():
            os.chmod(tmp_path, path.stat().st_mode & 0o7777)
        else:
            os.chmod(tmp_path, 0o644)
        # Contents must be on disk *before* the rename points at them, and
        # the rename itself must be on disk before we report success.
        _fsync_file(tmp_path)
        os.replace(tmp_path, path)
        _fsync_dir(directory)
    finally:
        with contextlib.suppress(FileNotFoundError):
            tmp_path.unlink()
