"""Serialization (JSON / SQLite, per §6) and plain-text table rendering."""

from repro.io.jsonio import dataset_to_json, dataset_from_json, dump_json, load_json
from repro.io.sqliteio import dataset_to_sqlite, dataset_from_sqlite
from repro.io.tables import render_table

__all__ = [
    "dataset_to_json",
    "dataset_from_json",
    "dump_json",
    "load_json",
    "dataset_to_sqlite",
    "dataset_from_sqlite",
    "render_table",
]
