"""JSON round-trip of the output dataset (the paper's Listing 1 format).

The JSON document holds the same two products the paper publishes: the
organization list (ownership metadata + confirmation provenance) and the
org-to-ASN mapping.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

from repro.core.dataset import OrganizationRecord, StateOwnedDataset
from repro.errors import DatasetError
from repro.io.atomic import atomic_replace
from repro.obs import span

__all__ = [
    "dataset_to_json",
    "dataset_from_json",
    "dump_json",
    "load_json",
    "dump_cti_json",
    "load_cti_json",
]

_FORMAT_VERSION = 1
_CTI_FORMAT_VERSION = 1


def dataset_to_json(dataset: StateOwnedDataset) -> str:
    """Serialize a dataset to a JSON string."""
    payload = {
        "format_version": _FORMAT_VERSION,
        "degraded_sources": list(dataset.degraded_sources),
        "organizations": [org.to_dict() for org in dataset.organizations()],
        "asns": [
            {"org_id": org.org_id, "asn": list(dataset.asns_of(org.org_id))}
            for org in dataset.organizations()
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def dataset_from_json(text: str) -> StateOwnedDataset:
    """Parse a dataset from its JSON serialization."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise DatasetError(f"malformed dataset JSON: {exc}") from exc
    if payload.get("format_version") != _FORMAT_VERSION:
        raise DatasetError(
            f"unsupported format_version {payload.get('format_version')!r}"
        )
    organizations: List[OrganizationRecord] = []
    for entry in payload.get("organizations", []):
        try:
            organizations.append(
                OrganizationRecord(
                    conglomerate_name=entry["conglomerate_name"],
                    org_id=entry["org_id"],
                    org_name=entry["org_name"],
                    ownership_cc=entry["ownership_cc"],
                    ownership_country_name=entry["ownership_country_name"],
                    rir=entry["rir"],
                    source=entry["source"],
                    quote=entry["quote"],
                    quote_lang=entry["quote_lang"],
                    url=entry["url"],
                    additional_info=entry.get("additional_info", ""),
                    inputs=tuple(entry.get("inputs", ())),
                    parent_org=entry.get("parent_org"),
                    target_cc=entry.get("target_cc"),
                    target_country_name=entry.get("target_country_name"),
                )
            )
        except KeyError as exc:
            raise DatasetError(f"organization entry missing field {exc}") from exc
    asns: Dict[str, List[int]] = {}
    for entry in payload.get("asns", []):
        try:
            asns[entry["org_id"]] = [int(a) for a in entry["asn"]]
        except (KeyError, TypeError, ValueError) as exc:
            raise DatasetError(f"malformed ASN entry: {entry!r}") from exc
    degraded = payload.get("degraded_sources", [])
    if not isinstance(degraded, list):
        raise DatasetError(
            f"degraded_sources must be a list, got {type(degraded).__name__}"
        )
    return StateOwnedDataset(organizations, asns, degraded_sources=tuple(degraded))


def dump_json(dataset: StateOwnedDataset, path: Union[str, Path]) -> None:
    """Write a dataset to a JSON file (atomically replaces existing)."""
    path = Path(path)
    with span("export.json") as sp, atomic_replace(path) as tmp_path:
        text = dataset_to_json(dataset)
        tmp_path.write_text(text, encoding="utf-8")
        sp.incr("organizations", len(dataset))
        sp.incr("bytes", len(text))


def load_json(path: Union[str, Path]) -> StateOwnedDataset:
    """Read a dataset from a JSON file.

    Every failure mode — an unreadable file, undecodable bytes, a
    truncated or otherwise malformed document — surfaces as
    :class:`~repro.errors.DatasetError`, the one error shape the CLI's
    clean exit-2 path and the serve reloader handle.
    """
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError as exc:
        raise DatasetError(f"cannot read dataset {path}: {exc}") from exc
    except UnicodeDecodeError as exc:
        raise DatasetError(f"dataset {path} is not valid UTF-8: {exc}") from exc
    return dataset_from_json(text)


def dump_cti_json(selection, path: Union[str, Path]) -> None:
    """Write a CTI selection sidecar (rankings + provenance) next to a
    dataset export.

    ``selection`` is anything shaped like
    :class:`~repro.cti.selection.CTISelection`: a ``provenance`` mapping of
    ``asn -> ((cc, rank, score), ...)`` plus a ``countries_applied`` tuple.
    The sidecar is what the serve CTI endpoints are indexed from.
    """
    path = Path(path)
    payload = {
        "format_version": _CTI_FORMAT_VERSION,
        "countries_applied": list(selection.countries_applied),
        "rankings": [
            {
                "asn": asn,
                "entries": [
                    [cc, rank, score] for cc, rank, score in selection.provenance[asn]
                ],
            }
            for asn in sorted(selection.provenance)
        ],
    }
    with span("export.cti") as sp, atomic_replace(path) as tmp_path:
        text = json.dumps(payload, indent=2, sort_keys=True)
        tmp_path.write_text(text, encoding="utf-8")
        sp.incr("asns", len(payload["rankings"]))
        sp.incr("bytes", len(text))


def load_cti_json(path: Union[str, Path]) -> Dict[str, object]:
    """Read a CTI sidecar back as plain data.

    Returns ``{"countries_applied": [cc, ...],
    "provenance": {asn: [(cc, rank, score), ...]}}`` — the shape the serve
    index consumes.  All failures raise
    :class:`~repro.errors.DatasetError`, like :func:`load_json`.
    """
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError as exc:
        raise DatasetError(f"cannot read CTI sidecar {path}: {exc}") from exc
    except UnicodeDecodeError as exc:
        raise DatasetError(f"CTI sidecar {path} is not valid UTF-8: {exc}") from exc
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise DatasetError(f"malformed CTI sidecar JSON: {exc}") from exc
    if payload.get("format_version") != _CTI_FORMAT_VERSION:
        raise DatasetError(
            f"unsupported CTI format_version " f"{payload.get('format_version')!r}"
        )
    provenance: Dict[int, List[tuple]] = {}
    for entry in payload.get("rankings", []):
        try:
            provenance[int(entry["asn"])] = [
                (str(cc), int(rank), float(score))
                for cc, rank, score in entry["entries"]
            ]
        except (KeyError, TypeError, ValueError) as exc:
            raise DatasetError(f"malformed CTI entry: {entry!r}") from exc
    applied = payload.get("countries_applied", [])
    if not isinstance(applied, list):
        raise DatasetError(
            f"countries_applied must be a list, " f"got {type(applied).__name__}"
        )
    return {"countries_applied": applied, "provenance": provenance}
