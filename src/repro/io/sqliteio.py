"""SQLite round-trip of the output dataset.

The paper's primary distribution format is an SQLite database (also
exported to JSON, §6).  The schema mirrors the two data products:
``organizations`` (one row per state-owned organization) and ``asns``
(one row per (org_id, ASN) pair).
"""

from __future__ import annotations

import sqlite3
from pathlib import Path
from typing import Dict, List, Union

from repro.core.dataset import OrganizationRecord, StateOwnedDataset
from repro.errors import DatasetError
from repro.io.atomic import atomic_replace
from repro.obs import span

__all__ = ["dataset_to_sqlite", "dataset_from_sqlite"]

_SCHEMA = """
CREATE TABLE organizations (
    org_id TEXT PRIMARY KEY,
    conglomerate_name TEXT NOT NULL,
    org_name TEXT NOT NULL,
    ownership_cc TEXT NOT NULL,
    ownership_country_name TEXT NOT NULL,
    rir TEXT NOT NULL,
    source TEXT NOT NULL,
    quote TEXT NOT NULL,
    quote_lang TEXT NOT NULL,
    url TEXT NOT NULL,
    additional_info TEXT NOT NULL DEFAULT '',
    inputs TEXT NOT NULL DEFAULT '',
    parent_org TEXT,
    target_cc TEXT,
    target_country_name TEXT
);
CREATE TABLE asns (
    org_id TEXT NOT NULL REFERENCES organizations(org_id),
    asn INTEGER NOT NULL,
    PRIMARY KEY (org_id, asn)
);
CREATE INDEX idx_asns_asn ON asns(asn);
CREATE TABLE meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
"""


def dataset_to_sqlite(dataset: StateOwnedDataset, path: Union[str, Path]) -> None:
    """Write the dataset to an SQLite file (atomically replaces existing).

    The database is built in a temporary file next to ``path`` and renamed
    into place only after a successful commit, so a crash mid-export can
    never destroy a previously exported dataset.  All rows go in one
    transaction.
    """
    path = Path(path)
    with span("export.sqlite") as sp, atomic_replace(path) as tmp_path:
        connection = sqlite3.connect(str(tmp_path))
        try:
            connection.executescript(_SCHEMA)
            with connection:  # one transaction for the whole insert loop
                connection.execute(
                    "INSERT INTO meta VALUES ('degraded_sources', ?)",
                    (",".join(dataset.degraded_sources),),
                )
                for org in dataset.organizations():
                    connection.execute(
                        "INSERT INTO organizations VALUES "
                        "(?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                        (
                            org.org_id,
                            org.conglomerate_name,
                            org.org_name,
                            org.ownership_cc,
                            org.ownership_country_name,
                            org.rir,
                            org.source,
                            org.quote,
                            org.quote_lang,
                            org.url,
                            org.additional_info,
                            ",".join(org.inputs),
                            org.parent_org,
                            org.target_cc,
                            org.target_country_name,
                        ),
                    )
                    sp.incr("organizations")
                    asns = dataset.asns_of(org.org_id)
                    connection.executemany(
                        "INSERT INTO asns VALUES (?, ?)",
                        ((org.org_id, asn) for asn in asns),
                    )
                    sp.incr("asn_rows", len(asns))
        finally:
            connection.close()


def dataset_from_sqlite(path: Union[str, Path]) -> StateOwnedDataset:
    """Load a dataset from an SQLite file."""
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"no such database: {path}")
    connection = sqlite3.connect(str(path))
    try:
        organizations: List[OrganizationRecord] = []
        for row in connection.execute(
            "SELECT org_id, conglomerate_name, org_name, ownership_cc, "
            "ownership_country_name, rir, source, quote, quote_lang, url, "
            "additional_info, inputs, parent_org, target_cc, "
            "target_country_name FROM organizations ORDER BY org_id"
        ):
            organizations.append(
                OrganizationRecord(
                    org_id=row[0],
                    conglomerate_name=row[1],
                    org_name=row[2],
                    ownership_cc=row[3],
                    ownership_country_name=row[4],
                    rir=row[5],
                    source=row[6],
                    quote=row[7],
                    quote_lang=row[8],
                    url=row[9],
                    additional_info=row[10],
                    inputs=tuple(part for part in row[11].split(",") if part),
                    parent_org=row[12],
                    target_cc=row[13],
                    target_country_name=row[14],
                )
            )
        asns: Dict[str, List[int]] = {}
        for org_id, asn in connection.execute(
            "SELECT org_id, asn FROM asns ORDER BY org_id, asn"
        ):
            asns.setdefault(org_id, []).append(int(asn))
        # Databases exported before the resilience layer have no meta table.
        degraded: List[str] = []
        try:
            row = connection.execute(
                "SELECT value FROM meta WHERE key = 'degraded_sources'"
            ).fetchone()
        except sqlite3.OperationalError:
            row = None
        if row is not None and row[0]:
            degraded = row[0].split(",")
    except sqlite3.DatabaseError as exc:
        raise DatasetError(f"corrupt dataset database: {exc}") from exc
    finally:
        connection.close()
    return StateOwnedDataset(organizations, asns, degraded_sources=degraded)
