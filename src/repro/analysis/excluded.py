"""Appendix E — the excluded state-funded organizations.

The paper removes academic networks, government bureaucratic networks,
Internet administrative organizations (NICs) and subnational operators from
the dataset, and documents the categories in Appendix E.  This analysis
summarizes what a run excluded and why, so the filtering behaviour is
auditable the same way.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Tuple

from repro.core.pipeline import PipelineResult

__all__ = ["excluded_summary", "excluded_companies"]


def excluded_summary(result: PipelineResult) -> Dict[str, int]:
    """Exclusion reason -> number of companies filtered in stage 2."""
    return dict(Counter(result.excluded.values()))


def excluded_companies(result: PipelineResult) -> List[Tuple[str, str]]:
    """(company name, exclusion reason) rows, sorted by reason then name."""
    rows: List[Tuple[str, str]] = []
    for key, reason in result.excluded.items():
        item = result.work.get(key)
        name = item.canonical_name if item is not None else key
        rows.append((name, reason))
    rows.sort(key=lambda row: (row[1], row[0]))
    return rows
