"""Per-country dossiers (the paper's promised "full data for each country").

§8 says the authors "will publish the full data for each country on a
dedicated website"; this module builds that artifact: everything one run
knows about a single country — its state-owned organizations (domestic and
foreign), access-market footprints, minority stakes, and, where CTI was
applied, its top transit gateway.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.footprint import CountryFootprint, compute_footprints
from repro.core.pipeline import PipelineInputs, PipelineResult
from repro.world.countries import country_by_cc

__all__ = ["CountryProfile", "build_country_profile", "profile_text"]


@dataclass
class CountryProfile:
    """Everything the dataset knows about one country."""

    cc: str
    name: str
    region: str
    rir: str
    domestic_orgs: List[Tuple[str, str]] = field(default_factory=list)
    #: (org name, owner cc) of foreign subsidiaries operating here.
    foreign_orgs: List[Tuple[str, str]] = field(default_factory=list)
    #: ASNs of organizations abroad that this country's government owns.
    owns_abroad: List[Tuple[str, str]] = field(default_factory=list)
    footprint: Optional[CountryFootprint] = None
    minority_ccs: Tuple[str, ...] = ()
    cti_applied: bool = False
    top_gateway: Optional[Tuple[int, float]] = None


def build_country_profile(
    cc: str,
    result: PipelineResult,
    inputs: PipelineInputs,
    footprints: Optional[Dict[str, CountryFootprint]] = None,
) -> CountryProfile:
    """Assemble the dossier for ``cc`` from a pipeline run."""
    country = country_by_cc(cc)
    profile = CountryProfile(
        cc=country.cc,
        name=country.name,
        region=country.region,
        rir=country.rir,
    )
    for org in result.dataset.organizations_in(country.cc):
        if org.is_foreign_subsidiary:
            profile.foreign_orgs.append((org.org_name, org.ownership_cc))
        else:
            profile.domestic_orgs.append((org.org_name, org.source))
    for org in result.dataset.foreign_subsidiaries():
        if org.ownership_cc == country.cc and org.target_cc:
            profile.owns_abroad.append((org.org_name, org.target_cc))
    if footprints is None:
        footprints = compute_footprints(
            result.dataset,
            inputs.prefix2as,
            inputs.geolocation,
            inputs.eyeballs,
        )
    profile.footprint = footprints.get(country.cc)
    minority = set()
    for verdict in result.verdicts.values():
        if verdict.confirming_doc is not None and (
            verdict.confirming_doc.cc == country.cc
        ):
            for holder_cc, fraction in verdict.state_equity.items():
                if 0 < fraction < 0.5:
                    minority.add(holder_cc)
    profile.minority_ccs = tuple(sorted(minority))
    profile.cti_applied = country.cc in inputs.cti_eligible_ccs
    if result.cti_selection is not None:
        for asn in result.cti_selection.asns:
            for entry_cc, rank, score in result.cti_selection.provenance.get(
                asn, ()
            ):
                if entry_cc == country.cc and rank == 1:
                    profile.top_gateway = (asn, round(score, 3))
    return profile


def profile_text(profile: CountryProfile) -> str:
    """Render a dossier as plain text."""
    lines = [
        f"{profile.name} ({profile.cc}) — {profile.region}, {profile.rir}",
        "-" * 60,
    ]
    if profile.footprint is not None:
        fp = profile.footprint
        lines.append(
            f"state footprint: domestic addr {fp.domestic_addr_share:.2f}, "
            f"eyeballs {fp.domestic_eyeball_share:.2f}; foreign addr "
            f"{fp.foreign_addr_share:.2f}, eyeballs "
            f"{fp.foreign_eyeball_share:.2f}"
        )
    if profile.domestic_orgs:
        lines.append("domestic state-owned operators:")
        for name, source in profile.domestic_orgs:
            lines.append(f"  - {name} (confirmed via {source})")
    if profile.foreign_orgs:
        lines.append("foreign state-owned operators present:")
        for name, owner in profile.foreign_orgs:
            lines.append(f"  - {name} (owned by {owner})")
    if profile.owns_abroad:
        lines.append("state-owned subsidiaries abroad:")
        for name, target in profile.owns_abroad:
            lines.append(f"  - {name} (operates in {target})")
    if profile.minority_ccs:
        lines.append(
            "minority government stakes seen from: " + ", ".join(profile.minority_ccs)
        )
    if profile.cti_applied:
        gateway = (
            f"AS{profile.top_gateway[0]} (CTI {profile.top_gateway[1]})"
            if profile.top_gateway
            else "n/a"
        )
        lines.append(f"transit-dominant; top CTI gateway: {gateway}")
    if len(lines) == 2:
        lines.append("no state participation detected")
    return "\n".join(lines)
