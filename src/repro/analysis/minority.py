"""The minority-ownership side product (§7, "Large ASes with government
minority ownership").

The paper did not search for minority stakes systematically but logged the
ones encountered — Deutsche Telekom (31 %), Orange (22.95 %), Telia
(39.5 %), Bharti Airtel (SingTel 35.1 %) — and counted 302 minority
state-owned ASes.  The pipeline's analyst keeps the same log; this module
turns it into the reportable artifact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.mapping import CompanyMapper
from repro.core.pipeline import PipelineResult

__all__ = ["MinorityHolding", "minority_report"]


@dataclass(frozen=True)
class MinorityHolding:
    """One company with a sub-majority government stake."""

    company_name: str
    government_cc: str
    fraction: Optional[float]
    asn_count: int


def minority_report(
    result: PipelineResult,
    mapper: Optional[CompanyMapper] = None,
) -> List[MinorityHolding]:
    """All minority holdings the run encountered, largest stakes first.

    ``mapper`` enables ASN counting per company (the paper reports 302
    minority *ASes*); without it the count falls back to the candidate
    seeds recorded in the worklist.
    """
    holdings: List[MinorityHolding] = []
    for key in sorted(result.minority_keys):
        verdict = result.verdicts.get(key)
        if verdict is None:
            continue
        if not verdict.state_equity:
            continue
        government_cc = max(
            verdict.state_equity, key=lambda cc: (verdict.state_equity[cc], cc)
        )
        fraction = verdict.state_equity.get(government_cc)
        item = result.work.get(key)
        if mapper is not None:
            asns = mapper.asns_of_company(verdict.company_name)
            if item is not None:
                asns |= item.seed_asns
            asn_count = len(asns)
        else:
            asn_count = len(item.seed_asns) if item is not None else 0
        holdings.append(
            MinorityHolding(
                company_name=verdict.company_name,
                government_cc=government_cc,
                fraction=round(fraction, 4) if fraction is not None else None,
                asn_count=asn_count,
            )
        )
    holdings.sort(key=lambda h: (-(h.fraction or 0.0), h.company_name))
    return holdings
