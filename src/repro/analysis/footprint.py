"""Access-market footprint analyses (Figure 1, Figure 4, Figure 6, Table 8).

The paper approximates each country's Internet-access market with two
proxies: the fraction of the country's geolocated address space originated
by state-owned ASes, and the fraction of the country's estimated eyeballs
served by them — split into *domestic* state ownership (the country's own
government) and *foreign* (another country's government via subsidiaries).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.dataset import StateOwnedDataset
from repro.sources.eyeballs import EyeballDataset
from repro.sources.geolocation import GeolocationService
from repro.sources.prefix2as import Prefix2ASTable
from repro.world.countries import COUNTRIES

__all__ = [
    "CountryFootprint",
    "compute_footprints",
    "figure1_map_data",
    "figure4_histograms",
    "figure6_map_data",
    "table8_dominant_countries",
]

_RIR_OF = {c.cc: c.rir for c in COUNTRIES}


@dataclass(frozen=True)
class CountryFootprint:
    """State-owned footprint of one country's access market."""

    cc: str
    domestic_addr_share: float
    domestic_eyeball_share: float
    foreign_addr_share: float
    foreign_eyeball_share: float

    @property
    def domestic_max(self) -> float:
        """Figure 1's blue value: max of the two domestic proxies."""
        return max(self.domestic_addr_share, self.domestic_eyeball_share)

    @property
    def foreign_max(self) -> float:
        """Figure 1's green value."""
        return max(self.foreign_addr_share, self.foreign_eyeball_share)


def compute_footprints(
    dataset: StateOwnedDataset,
    prefix2as: Prefix2ASTable,
    geolocation: GeolocationService,
    eyeballs: EyeballDataset,
) -> Dict[str, CountryFootprint]:
    """Per-country footprints of state-owned ASes (domestic and foreign).

    An AS's addresses geolocated in country C count as *domestic* when the
    organization that owns the AS is majority-held by C's own government,
    and as *foreign* when held by another government.
    """
    owner_of_asn: Dict[int, str] = {}
    for org in dataset.organizations():
        for asn in dataset.asns_of(org.org_id):
            owner_of_asn[asn] = org.ownership_cc

    domestic_addr: Dict[str, int] = {}
    foreign_addr: Dict[str, int] = {}
    total_addr: Dict[str, int] = {}
    for (asn, cc), count in geolocation.country_asn_addresses(prefix2as).items():
        total_addr[cc] = total_addr.get(cc, 0) + count
        owner = owner_of_asn.get(asn)
        if owner is None:
            continue
        if owner == cc:
            domestic_addr[cc] = domestic_addr.get(cc, 0) + count
        else:
            foreign_addr[cc] = foreign_addr.get(cc, 0) + count

    domestic_eye: Dict[str, int] = {}
    foreign_eye: Dict[str, int] = {}
    total_eye: Dict[str, int] = {}
    for asn in eyeballs.covered_asns():
        cc = eyeballs.country_of(asn)
        users = eyeballs.estimate(asn) or 0
        if cc is None:
            continue
        total_eye[cc] = total_eye.get(cc, 0) + users
        owner = owner_of_asn.get(asn)
        if owner is None:
            continue
        if owner == cc:
            domestic_eye[cc] = domestic_eye.get(cc, 0) + users
        else:
            foreign_eye[cc] = foreign_eye.get(cc, 0) + users

    footprints: Dict[str, CountryFootprint] = {}
    all_ccs = set(total_addr) | set(total_eye)
    for cc in sorted(all_ccs):
        addr_total = total_addr.get(cc, 0)
        eye_total = total_eye.get(cc, 0)
        footprints[cc] = CountryFootprint(
            cc=cc,
            domestic_addr_share=(
                domestic_addr.get(cc, 0) / addr_total if addr_total else 0.0
            ),
            domestic_eyeball_share=(
                domestic_eye.get(cc, 0) / eye_total if eye_total else 0.0
            ),
            foreign_addr_share=(
                foreign_addr.get(cc, 0) / addr_total if addr_total else 0.0
            ),
            foreign_eyeball_share=(
                foreign_eye.get(cc, 0) / eye_total if eye_total else 0.0
            ),
        )
    return footprints


def figure1_map_data(
    footprints: Dict[str, CountryFootprint]
) -> Dict[str, Tuple[float, float]]:
    """Figure 1's per-country (blue, green) = (domestic max, foreign max)."""
    return {
        cc: (fp.domestic_max, fp.foreign_max) for cc, fp in sorted(footprints.items())
    }


def figure4_histograms(
    footprints: Dict[str, CountryFootprint],
    proxy: str = "addresses",
) -> Dict[str, List[List[str]]]:
    """Figure 4's stacked histogram: bin -> per-RIR country lists.

    ``proxy`` selects 4a ("addresses") or 4b ("eyeballs").  Returns a map
    from bin label ("0.0", "0.1", ... "1.0" lower edges) to the countries
    in that bin, grouped by RIR in a dict-of-lists.
    """
    if proxy not in ("addresses", "eyeballs"):
        raise ValueError(f"unknown proxy {proxy!r}")
    bins: Dict[str, Dict[str, List[str]]] = {
        f"{edge / 10:.1f}": {} for edge in range(11)
    }
    for cc, fp in footprints.items():
        share = (
            fp.domestic_addr_share
            if proxy == "addresses"
            else fp.domestic_eyeball_share
        )
        edge = min(10, int(share * 10))
        rir = _RIR_OF.get(cc, "?")
        bins[f"{edge / 10:.1f}"].setdefault(rir, []).append(cc)
    # Flatten to bin -> [rir, count] rows for easy rendering.
    return {
        label: [[rir, str(len(ccs))] for rir, ccs in sorted(groups.items())]
        for label, groups in bins.items()
    }


def figure6_map_data(
    dataset: StateOwnedDataset, minority_ccs: Optional[set] = None
) -> Dict[str, str]:
    """Figure 6's country coloring: majority / minority / none."""
    majority = dataset.owner_countries()
    minority = set(minority_ccs or set()) - set(majority)
    colors: Dict[str, str] = {}
    for country in COUNTRIES:
        if country.cc in majority:
            colors[country.cc] = "majority"
        elif country.cc in minority:
            colors[country.cc] = "minority"
        else:
            colors[country.cc] = "none"
    return colors


def table8_dominant_countries(
    footprints: Dict[str, CountryFootprint], threshold: float = 0.9
) -> List[Tuple[str, float]]:
    """Countries whose domestic state footprint reaches ``threshold``."""
    dominant = [
        (cc, round(fp.domestic_max, 2))
        for cc, fp in footprints.items()
        if fp.domestic_max >= threshold
    ]
    dominant.sort(key=lambda pair: (-pair[1], pair[0]))
    return dominant
