"""Transit-market analyses (Table 5 and Figure 5).

Table 5 ranks state-owned ASes by customer-cone size; Figure 5 plots the
decade of cone growth for the fastest-growing state-owned transit ASes
(the submarine-cable archetypes in the paper: Angola Cables and BSCCL).

Cone sizes reach these analyses through :class:`AsRankDataset`, which sizes
every cone in one bottom-up bitset sweep of the c2p DAG
(:meth:`repro.net.topology.ASGraph.all_cone_sizes`) instead of one BFS per
AS, so ranking the full AS population stays linear in the topology size.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.dataset import StateOwnedDataset
from repro.sources.asrank import AsRankDataset
from repro.sources.whois import WhoisDatabase

__all__ = ["table5_top_cones", "figure5_growth_series"]


def table5_top_cones(
    dataset: StateOwnedDataset,
    asrank: AsRankDataset,
    whois: Optional[WhoisDatabase] = None,
    k: int = 10,
) -> List[Tuple[int, str, str, int]]:
    """Table 5: the ``k`` largest customer cones among state-owned ASes.

    Returns (asn, AS name, country, cone size) rows, largest first.
    """
    rows: List[Tuple[int, str, str, int]] = []
    for asn, size in asrank.top_cones(dataset.all_asns(), k=k):
        name, cc = "", ""
        if whois is not None:
            record = whois.lookup(asn)
            if record is not None:
                name, cc = record.as_name, record.cc
        rows.append((asn, name, cc, size))
    return rows


def figure5_growth_series(
    dataset: StateOwnedDataset,
    asrank: AsRankDataset,
    k: int = 2,
) -> Dict[int, List[Tuple[Tuple[int, int], int]]]:
    """Figure 5: cone-size history of the ``k`` fastest-growing state ASes.

    The ranking uses the same temporal linear regression over ASRank
    history that the paper applies; the returned series are quarterly
    (epoch, cone size) points from January 2010 to June 2020.
    """
    fastest = asrank.fastest_growing(dataset.all_asns(), k=k)
    return {asn: asrank.cone_history(asn) for asn, _slope in fastest}
