"""The paper's published numbers, used as shape-comparison targets.

These constants are the values Carisimo et al. report; EXPERIMENTS.md and
the benchmark harness print measured values side by side with them.  We do
not expect absolute agreement (the substrate is a synthetic world, not the
2019-2020 Internet) — the comparison is about who wins, rough ratios, and
where crossovers fall.
"""

from __future__ import annotations

from typing import Dict, Tuple

__all__ = [
    "HEADLINE",
    "CANDIDATE_FUNNEL",
    "TABLE1_CONFIRMATION_SOURCES",
    "TABLE2_PARTICIPATION",
    "TABLE3_SUBSIDIARIES",
    "TABLE4_BY_RIR",
    "TABLE5_TOP_CONES",
    "TABLE6_SOURCE_CONTRIBUTIONS",
    "TABLE7_CTI_ONLY_COUNT",
    "TABLE8_DOMINANT_COUNTRIES",
    "FIGURE3_VENN",
    "ORBIS_QUALITY",
]

#: §7 headline numbers.
HEADLINE: Dict[str, float] = {
    "state_owned_asns": 989,
    "foreign_subsidiary_asns": 193,
    "companies": 302,
    "foreign_subsidiary_companies": 84,
    "countries_with_majority": 123,
    "fraction_of_countries": 0.53,
    "announced_space_share": 0.17,
    "announced_space_share_ex_us": 0.25,
}

#: §4.1 / §4.2 candidate-funnel statistics.
CANDIDATE_FUNNEL: Dict[str, int] = {
    "geolocation_asns": 793,
    "eyeball_asns": 716,
    "geo_eyeball_intersection": 466,
    "geo_eyeball_union": 1043,
    "cti_asns": 93,
    "cti_countries": 75,
    "total_asns": 1091,
    "candidate_organizations": 1023,
}

#: Table 1 — confirmation data source -> number of companies.
TABLE1_CONFIRMATION_SOURCES: Dict[str, int] = {
    "Company's website": 161,
    "Company's annual report": 44,
    "Freedom House": 33,
    "TG's commsupdate": 22,
    "World Bank": 20,
    "ITU": 6,
    "FCC": 4,
    "News": 2,
    "regulator": 2,
    "Others": 9,
}

#: Table 2 — country participation counts.
TABLE2_PARTICIPATION: Dict[str, int] = {
    "state_owned_operators": 123,
    "subsidiaries": 19,
    "minority_state_owned": 24,
    "total_countries": 136,
}

#: Table 3 — owner country -> number of subsidiary target countries.
TABLE3_SUBSIDIARIES: Dict[str, int] = {
    "AE": 12,
    "CN": 9,
    "QA": 9,
    "NO": 9,
    "VN": 9,
    "SG": 6,
    "MY": 5,
    "CO": 4,
    "RS": 3,
    "ID": 3,
    "BH": 3,
    "TN": 3,
    "SA": 2,
    "FJ": 1,
    "MU": 1,
    "BE": 1,
    "CH": 1,
    "RU": 1,
    "SI": 1,
}

#: Table 4 — per-RIR company and country counts.
TABLE4_BY_RIR: Dict[str, Tuple[int, int, int]] = {
    # rir: (companies, countries, % of RIR members)
    "APNIC": (56, 30, 54),
    "RIPE": (76, 47, 62),
    "ARIN": (29, 2, 7),
    "AFRINIC": (56, 30, 45),
    "LACNIC": (31, 14, 50),
    "World": (248, 123, 50),
}

#: Table 5 — the ten largest customer cones of state-owned ASes (June 2020).
TABLE5_TOP_CONES: Tuple[Tuple[str, str, int], ...] = (
    ("7473-SingTel", "SG", 4235),
    ("12389-Rostelecom", "RU", 3778),
    ("20485-TTK", "RU", 3171),
    ("37468-Angola Cables", "AO", 1843),
    ("262589-Internexa", "CO", 1315),
    ("4809-China Telecom", "CN", 1134),
    ("3303-Swisscom", "CH", 702),
    ("20804-Exatel", "PL", 699),
    ("10099-China Unicom", "CN", 595),
    ("132602-BSCCL", "BD", 556),
)

#: Table 6 (Appendix B) — per-source contributions:
#: source -> (state-owned ASes, of which subsidiaries, minority ASes).
TABLE6_SOURCE_CONTRIBUTIONS: Dict[str, Tuple[int, int, int]] = {
    "G": (593, 126, 253),
    "E": (586, 151, 288),
    "C": (15, 0, 7),
    "W": (728, 126, 4),
    "O": (587, 123, 0),
    "TOTAL": (984, 193, 302),
}

#: Table 7 (Appendix D) — ASes only discovered by CTI.
TABLE7_CTI_ONLY_COUNT: int = 9

#: Table 8 (Appendix F) — countries with >= 0.9 estimated access-market
#: footprint held by domestic state-owned ASes.
TABLE8_DOMINANT_COUNTRIES: Tuple[str, ...] = (
    "ET",
    "TV",
    "CU",
    "GL",
    "DJ",
    "SY",
    "AE",
    "ER",
    "SR",
    "CN",
    "LY",
    "YE",
    "DZ",
    "MO",
    "AD",
    "IR",
    "UY",
    "TM",
)

#: Figure 3 — three-category Venn (technical / Wikipedia+FH / Orbis).
FIGURE3_VENN: Dict[str, int] = {
    "all_three": 193,
    "technical_only": 95,
}

#: §7 Orbis quality findings.
ORBIS_QUALITY: Dict[str, int] = {
    "false_positives": 12,
    "false_negatives": 140,
    "false_negative_countries": 79,
}
