"""Source-contribution analyses (Table 6, Table 7, Figures 3 and 7).

The paper's central methodological claim is that *every* input source
contributes ASes no other source finds — Orbis alone would miss the
developing world, the technical sources alone would miss ASN-poor
companies, and only CTI surfaces the quiet transit gateways.  These
functions compute exactly the artifacts backing that claim.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.core.pipeline import PipelineResult
from repro.sources.base import InputSource
from repro.sources.whois import WhoisDatabase

__all__ = [
    "source_contributions",
    "venn_regions",
    "venn_three_categories",
    "cti_only_ases",
]

_SOURCE_ORDER = (
    InputSource.GEOLOCATION,
    InputSource.EYEBALLS,
    InputSource.CTI,
    InputSource.WIKIPEDIA_FH,
    InputSource.ORBIS,
)


def source_contributions(
    result: PipelineResult,
) -> Dict[str, Tuple[int, int, int]]:
    """Table 6: per source, (state-owned ASes, subsidiaries, minority ASes).

    An AS counts toward a source when that source either selected the AS
    directly or surfaced the company that owns it.  Minority counts use the
    candidate provenance of companies whose verification ended in a
    minority verdict.
    """
    foreign = result.dataset.foreign_subsidiary_asns()
    per_source: Dict[str, Tuple[int, int, int]] = {}

    minority_asns_by_source: Dict[InputSource, Set[int]] = {
        source: set() for source in _SOURCE_ORDER
    }
    for key in result.minority_keys:
        item = result.work.get(key)
        if item is None:
            continue
        for source in item.sources:
            minority_asns_by_source[source].update(item.seed_asns)

    for source in _SOURCE_ORDER:
        owned = {asn for asn, sources in result.asn_inputs.items() if source in sources}
        per_source[source.value] = (
            len(owned),
            len(owned & foreign),
            len(minority_asns_by_source[source]),
        )
    total_minority = len(
        set().union(*minority_asns_by_source.values())
        if minority_asns_by_source
        else set()
    )
    per_source["TOTAL"] = (
        len(result.dataset.all_asns()),
        len(foreign),
        total_minority,
    )
    return per_source


def venn_regions(result: PipelineResult) -> Dict[str, int]:
    """Figure 7: the full five-source Venn diagram.

    Keys are 5-bit strings in source order G, E, C, W, O — e.g. ``"11010"``
    counts ASes contributed by geolocation, eyeballs and Wikipedia+FH but
    not CTI or Orbis.
    """
    regions: Dict[str, int] = {}
    for asn in result.dataset.all_asns():
        sources = result.asn_inputs.get(asn, frozenset())
        bits = "".join("1" if source in sources else "0" for source in _SOURCE_ORDER)
        if bits == "00000":
            continue  # discovered only through subsidiary walks
        regions[bits] = regions.get(bits, 0) + 1
    return regions


def venn_three_categories(result: PipelineResult) -> Dict[str, int]:
    """Figure 3: technical / Wikipedia+FH / Orbis category Venn.

    Keys name the seven regions: "technical_only", "wiki_fh_only",
    "orbis_only", "technical_wiki_fh", "technical_orbis", "wiki_fh_orbis",
    "all_three".
    """
    technical = {InputSource.GEOLOCATION, InputSource.EYEBALLS, InputSource.CTI}
    counts = {
        "technical_only": 0,
        "wiki_fh_only": 0,
        "orbis_only": 0,
        "technical_wiki_fh": 0,
        "technical_orbis": 0,
        "wiki_fh_orbis": 0,
        "all_three": 0,
    }
    for asn in result.dataset.all_asns():
        sources = result.asn_inputs.get(asn, frozenset())
        has_technical = bool(sources & technical)
        has_wiki = InputSource.WIKIPEDIA_FH in sources
        has_orbis = InputSource.ORBIS in sources
        if has_technical and has_wiki and has_orbis:
            counts["all_three"] += 1
        elif has_technical and has_wiki:
            counts["technical_wiki_fh"] += 1
        elif has_technical and has_orbis:
            counts["technical_orbis"] += 1
        elif has_wiki and has_orbis:
            counts["wiki_fh_orbis"] += 1
        elif has_technical:
            counts["technical_only"] += 1
        elif has_wiki:
            counts["wiki_fh_only"] += 1
        elif has_orbis:
            counts["orbis_only"] += 1
    return counts


def cti_only_ases(
    result: PipelineResult, whois: Optional[WhoisDatabase] = None
) -> List[Tuple[int, str, str]]:
    """Table 7: state-owned ASes that only CTI discovered.

    Returns (asn, country, AS name) rows; names/countries come from WHOIS
    when available.
    """
    rows: List[Tuple[int, str, str]] = []
    for asn in sorted(result.dataset.all_asns()):
        sources = result.asn_inputs.get(asn, frozenset())
        if sources != frozenset({InputSource.CTI}):
            continue
        cc, name = "", ""
        if whois is not None:
            record = whois.lookup(asn)
            if record is not None:
                cc, name = record.cc, record.as_name
        rows.append((asn, cc, name))
    return rows
