"""Builders for Tables 1-4 of the paper.

Each function consumes a :class:`~repro.core.pipeline.PipelineResult` (and,
where needed, static country data) and returns the table's data in a
render-ready structure.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Set, Tuple

from repro.core.pipeline import PipelineResult
from repro.world.countries import COUNTRIES

__all__ = [
    "table1_confirmation_sources",
    "table2_country_participation",
    "table3_foreign_subsidiaries",
    "table4_by_rir",
]

#: Sources with fewer companies than this collapse into "Others", matching
#: how the paper presents Table 1.
_OTHERS_SOURCES = ("Government portal", "SEC")


def table1_confirmation_sources(result: PipelineResult) -> Dict[str, int]:
    """Table 1: confirmation source -> number of companies confirmed by it."""
    counts: Counter = Counter()
    for org in result.dataset.organizations():
        source = org.source or "unknown"
        if source in _OTHERS_SOURCES:
            source = "Others"
        counts[source] += 1
    return dict(counts)


def _minority_countries(result: PipelineResult) -> Set[str]:
    """Countries holding sub-majority stakes anywhere in the run's evidence.

    Includes pure-minority companies and minority co-owners of confirmed
    joint ventures (the paper's Singapore-in-Telkomsel case).
    """
    minority: Set[str] = set()
    for verdict in result.verdicts.values():
        for cc, fraction in verdict.state_equity.items():
            if 0 < fraction < 0.5 and cc != verdict.controlling_cc:
                minority.add(cc)
    return minority


def table2_country_participation(result: PipelineResult) -> Dict[str, int]:
    """Table 2: how many countries participate in Internet operators."""
    majority = set(result.dataset.owner_countries())
    subsidiaries = set(result.dataset.subsidiary_owner_countries())
    minority = _minority_countries(result)
    return {
        "state_owned_operators": len(majority),
        "subsidiaries": len(subsidiaries),
        "minority_state_owned": len(minority),
        "total_countries": len(majority | subsidiaries | minority),
    }


def table3_foreign_subsidiaries(
    result: PipelineResult,
) -> List[Tuple[str, int, Tuple[str, ...]]]:
    """Table 3: (owner cc, #targets, target ccs) sorted by reach."""
    targets: Dict[str, Set[str]] = {}
    for org in result.dataset.foreign_subsidiaries():
        if org.target_cc is None:
            continue
        targets.setdefault(org.ownership_cc, set()).add(org.target_cc)
    rows = [(owner, len(ccs), tuple(sorted(ccs))) for owner, ccs in targets.items()]
    rows.sort(key=lambda row: (-row[1], row[0]))
    return rows


def table4_by_rir(result: PipelineResult) -> Dict[str, Tuple[int, int, float]]:
    """Table 4: per RIR, (#companies, #countries, % of member countries).

    Companies are counted for the RIR serving their *operating* country;
    only domestic organizations define a country's membership in the
    "has a state-owned operator" count, as in the paper.
    """
    members_per_rir: Counter = Counter(c.rir for c in COUNTRIES)
    rir_of_cc = {c.cc: c.rir for c in COUNTRIES}
    companies: Counter = Counter()
    countries: Dict[str, Set[str]] = {}
    for org in result.dataset.domestic_organizations():
        rir = org.rir or rir_of_cc.get(org.operating_cc, "?")
        companies[rir] += 1
        countries.setdefault(rir, set()).add(org.ownership_cc)
    table: Dict[str, Tuple[int, int, float]] = {}
    world_companies = 0
    world_countries: Set[str] = set()
    for rir in sorted(members_per_rir):
        count = companies.get(rir, 0)
        ccs = countries.get(rir, set())
        members = members_per_rir[rir]
        table[rir] = (
            count,
            len(ccs),
            round(100.0 * len(ccs) / members, 1) if members else 0.0,
        )
        world_companies += count
        world_countries |= ccs
    total_members = sum(members_per_rir.values())
    table["World"] = (
        world_companies,
        len(world_countries),
        round(100.0 * len(world_countries) / total_members, 1),
    )
    return table
