"""The full evaluation report: every table/figure, with paper comparison.

``full_report`` renders the complete §7-§8 artifact set from one pipeline
run as plain text, printing measured values side by side with the paper's
published ones so the "shape" comparison is immediate.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.analysis import paper
from repro.analysis.cones import table5_top_cones
from repro.analysis.contributions import (
    cti_only_ases,
    source_contributions,
    venn_three_categories,
)
from repro.analysis.footprint import (
    compute_footprints,
    table8_dominant_countries,
)
from repro.analysis.tables import (
    table1_confirmation_sources,
    table2_country_participation,
    table3_foreign_subsidiaries,
    table4_by_rir,
)
from repro.core.pipeline import PipelineInputs, PipelineResult
from repro.io.tables import render_table
from repro.sources.base import InputSource

__all__ = ["headline_stats", "full_report"]


def headline_stats(result: PipelineResult, inputs: PipelineInputs) -> Dict[str, float]:
    """The §7 headline numbers for one run."""
    counts = inputs.prefix2as.announced_address_counts()
    total = sum(counts.values())
    state_asns = result.dataset.all_asns()
    state_space = sum(counts.get(asn, 0) for asn in state_asns)
    us_asns = {record.asn for record in inputs.whois if record.cc == "US"}
    us_space = sum(counts.get(asn, 0) for asn in us_asns)
    ex_us_total = total - us_space
    return {
        "state_owned_asns": len(state_asns),
        "foreign_subsidiary_asns": len(result.dataset.foreign_subsidiary_asns()),
        "companies": len(result.dataset),
        "foreign_subsidiary_companies": len(result.dataset.foreign_subsidiaries()),
        "countries_with_majority": len(result.dataset.owner_countries()),
        "announced_space_share": round(state_space / total, 4) if total else 0.0,
        "announced_space_share_ex_us": (
            round(state_space / ex_us_total, 4) if ex_us_total else 0.0
        ),
    }


def _compare_rows(measured: Dict, published: Dict) -> list:
    keys = sorted(set(measured) | set(published), key=str)
    return [(key, measured.get(key, "-"), published.get(key, "-")) for key in keys]


def full_report(
    result: PipelineResult,
    inputs: PipelineInputs,
    validation: Optional[object] = None,
) -> str:
    """Render the complete evaluation as text."""
    sections = []

    if result.degraded_sources:
        names = ", ".join(sorted(s.name for s in result.degraded_sources))
        sections.append(
            f"DEGRADED RUN: the {names} source(s) were quarantined after "
            "exhausting retries; their candidates are absent and every "
            "paper comparison below understates the corresponding rows."
        )

    sections.append(
        render_table(
            ("metric", "measured", "paper"),
            _compare_rows(headline_stats(result, inputs), paper.HEADLINE),
            title="Headline (§7)",
        )
    )
    sections.append(
        render_table(
            ("stat", "measured", "paper"),
            _compare_rows(
                {k: v for k, v in result.candidates.stats.items()},
                paper.CANDIDATE_FUNNEL,
            ),
            title="Candidate funnel (§4)",
        )
    )
    sections.append(
        render_table(
            ("confirmation source", "measured", "paper"),
            _compare_rows(
                table1_confirmation_sources(result),
                paper.TABLE1_CONFIRMATION_SOURCES,
            ),
            title="Table 1 — confirmation sources",
        )
    )
    sections.append(
        render_table(
            ("participation", "measured", "paper"),
            _compare_rows(
                table2_country_participation(result),
                paper.TABLE2_PARTICIPATION,
            ),
            title="Table 2 — country participation",
        )
    )
    table3 = table3_foreign_subsidiaries(result)
    sections.append(
        render_table(
            ("owner", "#targets", "paper", "targets"),
            [
                (
                    owner,
                    count,
                    paper.TABLE3_SUBSIDIARIES.get(owner, "-"),
                    " ".join(targets),
                )
                for owner, count, targets in table3
            ],
            title="Table 3 — foreign subsidiaries",
        )
    )
    table4 = table4_by_rir(result)
    sections.append(
        render_table(
            (
                "RIR",
                "companies",
                "countries",
                "% countries",
                "paper (companies/countries/%)",
            ),
            [
                (
                    rir,
                    companies,
                    countries,
                    pct,
                    "/".join(str(v) for v in paper.TABLE4_BY_RIR.get(rir, ())),
                )
                for rir, (companies, countries, pct) in sorted(table4.items())
            ],
            title="Table 4 — state-owned operators by RIR",
        )
    )
    asrank = getattr(inputs, "asrank", None)
    if asrank is not None:
        table5 = table5_top_cones(result.dataset, asrank, inputs.whois)
        sections.append(
            render_table(
                ("ASN", "AS name", "cc", "cone"),
                table5,
                title="Table 5 — largest customer cones of state-owned ASes",
            )
        )
    contributions = source_contributions(result)
    sections.append(
        render_table(
            (
                "source",
                "ASes",
                "subsidiaries",
                "minority",
                "paper (ASes/subs/minority)",
            ),
            [
                (
                    source,
                    ases,
                    subs,
                    minority,
                    "/".join(
                        str(v)
                        for v in paper.TABLE6_SOURCE_CONTRIBUTIONS.get(
                            source, ()
                        )
                    ),
                )
                for source, (ases, subs, minority) in contributions.items()
            ],
            title="Table 6 — per-source contributions",
        )
    )
    cti_only = cti_only_ases(result, inputs.whois)
    sections.append(
        render_table(
            ("ASN", "cc", "AS name"),
            cti_only,
            title=f"Table 7 — ASes only discovered by CTI "
            f"(measured {len(cti_only)}, paper "
            f"{paper.TABLE7_CTI_ONLY_COUNT})",
        )
    )
    # Footprints need the raw geolocation/eyeball sources; skip the table
    # (with a note) when either was quarantined in a degraded run.
    footprint_feeds = {InputSource.GEOLOCATION, InputSource.EYEBALLS}
    if footprint_feeds & set(result.degraded_sources):
        sections.append(
            "Table 8 — skipped: the geolocation/eyeball sources were "
            "quarantined, so state footprints cannot be computed."
        )
    else:
        footprints = compute_footprints(
            result.dataset, inputs.prefix2as, inputs.geolocation, inputs.eyeballs
        )
        dominant = table8_dominant_countries(footprints)
        sections.append(
            render_table(
                ("cc", "footprint"),
                dominant,
                title=f"Table 8 — countries with >= 0.9 state footprint "
                f"(measured {len(dominant)}, paper "
                f"{len(paper.TABLE8_DOMINANT_COUNTRIES)})",
            )
        )
    venn3 = venn_three_categories(result)
    sections.append(
        render_table(
            ("region", "ASes"),
            sorted(venn3.items()),
            title="Figure 3 — three-category Venn regions",
        )
    )
    if validation is not None:
        sections.append(validation.as_text())
    return "\n\n".join(sections)
