"""Evaluation analyses: every table and figure of the paper's §7-§8."""

from repro.analysis.footprint import (
    CountryFootprint,
    compute_footprints,
    figure1_map_data,
    figure4_histograms,
    figure6_map_data,
    table8_dominant_countries,
)
from repro.analysis.contributions import (
    source_contributions,
    venn_regions,
    venn_three_categories,
    cti_only_ases,
)
from repro.analysis.tables import (
    table1_confirmation_sources,
    table2_country_participation,
    table3_foreign_subsidiaries,
    table4_by_rir,
)
from repro.analysis.cones import table5_top_cones, figure5_growth_series
from repro.analysis.minority import minority_report
from repro.analysis.excluded import excluded_summary, excluded_companies
from repro.analysis.country_profile import build_country_profile, profile_text
from repro.analysis.report import full_report

__all__ = [
    "CountryFootprint",
    "compute_footprints",
    "figure1_map_data",
    "figure4_histograms",
    "figure6_map_data",
    "table8_dominant_countries",
    "source_contributions",
    "venn_regions",
    "venn_three_categories",
    "cti_only_ases",
    "table1_confirmation_sources",
    "table2_country_participation",
    "table3_foreign_subsidiaries",
    "table4_by_rir",
    "table5_top_cones",
    "figure5_growth_series",
    "minority_report",
    "excluded_summary",
    "excluded_companies",
    "build_country_profile",
    "profile_text",
    "full_report",
]
