"""Run-scoped worker runtime: one pool per run, states shipped once.

:class:`WorkerRuntime` owns a single long-lived executor for an entire
pipeline run.  Every ``map_ordered`` call on the process backend used to
spawn (and tear down) a fresh ``ProcessPoolExecutor`` and re-pickle its
full ``state`` object through the pool initializer — so a run paid pool
startup plus state serialization once per fan-out site.  The runtime
amortizes both:

* **Persistent pool** — the first parallel map spawns the pool
  (``parallel.pool_spawns``); every later map reuses it
  (``parallel.pool_reuse``).  The pool survives across fan-out sites,
  world generation included, so a full ``run`` creates exactly one.
* **Handle-based shared-state plane** — heavy read-only objects are
  registered once (``runtime.register(state) -> StateHandle``) and shipped
  to the workers a single time (``parallel.state_ships``).  Subsequent
  maps reference the object by its handle token — a short string — instead
  of re-pickling the object per call.  States registered *after* the pool
  exists are broadcast with a barrier fence: exactly ``jobs`` installer
  tasks are submitted, each installs the pickled-once blob and then waits
  on a shared :class:`multiprocessing.Barrier`, which guarantees every
  worker runs exactly one installer before any real task can observe a
  missing handle.
* **Zero-copy shared-memory plane** — states that implement the
  ``__shm_export__`` / ``__shm_rebuild__`` protocol (see
  :mod:`repro.parallel.shm`) are flattened once into a POSIX shared
  segment and shipped as a tiny :class:`~repro.parallel.shm.ShmRef`
  instead of a pickle: workers attach by name and rebuild zero-copy
  views, so per-worker memory stays flat as ``jobs`` grows
  (``runtime.shm_bytes`` / ``runtime.attach``).  Non-shareable states
  keep the pickle path.  ``close()`` unlinks every segment
  deterministically; double-close is a no-op.
* **Streaming completion** — chunk results merge as they land
  (``as_completed``) instead of blocking on a ``wait()``-all barrier.
  Output stays byte-identical to serial because the final merge orders by
  chunk index, exactly like the barrier version did.

The crash-requeue protocol from the per-call pools carries over: a broken
pool is discarded, completed chunks keep their results, unfinished chunks
are requeued with an incremented delivery attempt on a freshly spawned
pool (whose initializer re-ships the complete state registry), bounded by
``_MAX_POOL_RESTARTS`` (``parallel.pool_restarts`` / ``requeued_tasks``).

Thread pools get the same lifecycle (spawn once, reuse, close) with states
shared by reference — no shipping needed.
"""

from __future__ import annotations

import itertools
import multiprocessing
import pickle
import threading
from concurrent.futures import (
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    as_completed,
)
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import ConfigError, WorkerCrashError
from repro.obs import get_metrics
from repro.parallel.shm import (
    SharedStatePlane,
    ShmRef,
    attach_ref,
    export_result,
    is_shareable,
)
from repro.resilience.faults import worker_fault_point

__all__ = ["StateHandle", "WorkerRuntime"]

#: Fresh-pool respawns allowed per map call before giving up.
_MAX_POOL_RESTARTS = 3

#: Seconds each worker waits at the state-broadcast barrier.  Generous —
#: the barrier only trips when a worker died mid-broadcast, and a broken
#: barrier is recovered by respawning the pool with a full registry.
_SYNC_TIMEOUT = 30.0


@dataclass(frozen=True)
class StateHandle:
    """Opaque token naming a state object registered with a runtime."""

    token: str


# -- worker-process side ----------------------------------------------------
# Installed once per worker by the pool initializer; extended in place by
# barrier-fenced ``_install_states`` broadcasts for late registrations.
# Each entry is ``("obj", state)`` for pickled states or ``("shm", ref)``
# for shared-memory refs, which are attached lazily on first resolve and
# then memoized as ``("obj", view)``.
_WORKER_STATES: Dict[str, Any] = {}
_WORKER_BARRIER = None


def _init_runtime_worker(blob: Optional[bytes], barrier) -> None:
    global _WORKER_STATES, _WORKER_BARRIER
    _WORKER_STATES = pickle.loads(blob) if blob else {}
    _WORKER_BARRIER = barrier


def _install_states(blob: bytes) -> bool:
    """Install late-registered states; barrier-fenced so each worker runs
    exactly one installer per broadcast (no worker can steal a second one
    while its siblings are still parked at the barrier)."""
    _WORKER_STATES.update(pickle.loads(blob))
    try:
        _WORKER_BARRIER.wait(timeout=_SYNC_TIMEOUT)
    except threading.BrokenBarrierError:
        return False
    return True


def _resolve_worker_state(state_ref):
    if state_ref is None:
        return None
    kind, value = state_ref
    if kind == "handle":
        try:
            entry_kind, payload = _WORKER_STATES[value]
        except KeyError:
            raise WorkerCrashError(
                f"state handle {value!r} was never shipped to this worker"
            ) from None
        if entry_kind == "shm":
            payload = attach_ref(payload)
            _WORKER_STATES[value] = ("obj", payload)
        return payload
    return value


@dataclass(frozen=True)
class _ShmResultMarker:
    """A worker result that crossed the pipe as a shared-segment ref."""

    ref: ShmRef


def _run_chunk(payload: Tuple[int, int, Callable, Any, str, list, bool]):
    """Run one indexed chunk inside a worker; returns (index, results).

    ``attempt`` is the chunk's delivery attempt: injected crash faults only
    fire on first delivery, so requeued chunks always make progress.  With
    ``shm_results`` set, shareable results are exported to worker-created
    shared segments *after* the whole chunk has computed (so crash faults,
    which fire before item functions, cannot strand half a chunk's
    segments) and travel back as :class:`_ShmResultMarker` name cards.
    """
    index, attempt, fn, state_ref, site, items, shm_results = payload
    state = _resolve_worker_state(state_ref)
    results = []
    for item in items:
        worker_fault_point(site, attempt)
        results.append(fn(state, item))
    if shm_results:
        results = [
            _ShmResultMarker(export_result(result))
            if is_shareable(result)
            else result
            for result in results
        ]
    return index, results


# -- coordinator side -------------------------------------------------------
class WorkerRuntime:
    """One long-lived worker pool plus the registry of shipped states."""

    def __init__(self, jobs: int, backend: str) -> None:
        self.jobs = jobs
        self.backend = backend
        self._registry: Dict[str, Any] = {}
        self._auto_handles: Dict[int, StateHandle] = {}
        self._tokens = itertools.count(1)
        self._pool = None
        self._barrier = None
        self._shipped: set = set()
        self._closed = False
        self._plane: Optional[SharedStatePlane] = None
        self._shm_refs: Dict[str, ShmRef] = {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WorkerRuntime(jobs={self.jobs}, backend={self.backend!r}, "
            f"states={len(self._registry)}, live={self._pool is not None})"
        )

    # -- shared-state plane ------------------------------------------------
    def register(self, state: Any, name: str = "state") -> StateHandle:
        """Register a read-only object; workers receive it exactly once."""
        handle = StateHandle(f"{name}#{next(self._tokens)}")
        self._registry[handle.token] = state
        return handle

    def handle_for(self, state: Any) -> StateHandle:
        """The handle for ``state``, registering it on first sight.

        Memoized by object identity, so call sites can keep passing the raw
        object to ``map_ordered`` and still get pickle-once semantics.  The
        registry holds a strong reference, which also pins the id().
        """
        handle = self._auto_handles.get(id(state))
        if handle is None:
            handle = self.register(state)
            self._auto_handles[id(state)] = handle
        return handle

    def resolve(self, handle: StateHandle) -> Any:
        """Coordinator-side lookup (serial / thread backends)."""
        try:
            return self._registry[handle.token]
        except KeyError:
            raise ConfigError(
                f"unknown state handle {handle.token!r}: "
                "not registered with this runtime"
            ) from None

    # -- zero-copy plane ---------------------------------------------------
    def _shm_ref(self, token: str, state: Any) -> Optional[ShmRef]:
        """The shared-segment ref for ``token``, flattening on first ship.

        Memoized per token so pool restarts and late broadcasts reuse the
        already-written segment instead of copying the state again.
        """
        ref = self._shm_refs.get(token)
        if ref is not None:
            return ref
        if not is_shareable(state):
            return None
        if self._plane is None:
            self._plane = SharedStatePlane()
        ref = self._plane.share(state)
        self._shm_refs[token] = ref
        return ref

    def _ship_blob(self, tokens) -> Tuple[Optional[bytes], int]:
        """Pickle the ship entries for ``tokens``: shareable states travel
        as ``("shm", ref)`` name cards, the rest as ``("obj", state)``
        pickles.  Returns ``(blob, shm_entries)``."""
        entries: Dict[str, Any] = {}
        shm_entries = 0
        for token in tokens:
            state = self._registry[token]
            ref = self._shm_ref(token, state)
            if ref is not None:
                entries[token] = ("shm", ref)
                shm_entries += 1
            else:
                entries[token] = ("obj", state)
        if not entries:
            return None, 0
        blob = pickle.dumps(entries, protocol=pickle.HIGHEST_PROTOCOL)
        metrics = get_metrics()
        metrics.incr("runtime.state_bytes", len(blob))
        if shm_entries:
            # Attachments provisioned: every worker attaches each shipped
            # segment (lazily, on first resolve) instead of copying it.
            metrics.incr("runtime.attach", shm_entries * self.jobs)
        return blob, shm_entries

    # -- pool lifecycle ----------------------------------------------------
    def _spawn_pool(self) -> None:
        ctx = multiprocessing.get_context()
        self._barrier = ctx.Barrier(self.jobs)
        blob, _ = self._ship_blob(self._registry)
        self._pool = ProcessPoolExecutor(
            max_workers=self.jobs,
            mp_context=ctx,
            initializer=_init_runtime_worker,
            initargs=(blob, self._barrier),
        )
        self._shipped = set(self._registry)
        metrics = get_metrics()
        metrics.incr("parallel.pool_spawns")
        if self._shipped:
            metrics.incr("parallel.state_ships", len(self._shipped))

    def _discard_pool(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
        self._pool = None
        self._barrier = None
        self._shipped = set()

    def _ensure_process_pool(self) -> ProcessPoolExecutor:
        if self._closed:
            raise ConfigError("worker runtime is closed")
        if self._pool is None:
            self._spawn_pool()
        else:
            get_metrics().incr("parallel.pool_reuse")
            self._sync_states()
        return self._pool

    def _sync_states(self) -> None:
        """Broadcast states registered after the pool was spawned.

        The blob is pickled once; ``jobs`` installer tasks are submitted and
        barrier-fenced so each worker installs it exactly once.  Any failure
        (dead worker, broken barrier, timeout) falls back to respawning the
        pool, whose initializer ships the complete registry snapshot.
        """
        pending = {
            token: state
            for token, state in self._registry.items()
            if token not in self._shipped
        }
        if not pending:
            return
        blob, _ = self._ship_blob(pending)
        futures = [self._pool.submit(_install_states, blob) for _ in range(self.jobs)]
        try:
            ok = all(future.result(timeout=_SYNC_TIMEOUT * 2) for future in futures)
        except (BrokenProcessPool, FuturesTimeoutError, OSError):
            ok = False
        if not ok:
            get_metrics().incr("parallel.pool_restarts")
            self._discard_pool()
            self._spawn_pool()
            return
        self._shipped |= set(pending)
        get_metrics().incr("parallel.state_ships", len(pending))

    def _ensure_thread_pool(self) -> ThreadPoolExecutor:
        if self._closed:
            raise ConfigError("worker runtime is closed")
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=self.jobs)
            get_metrics().incr("parallel.pool_spawns")
        else:
            get_metrics().incr("parallel.pool_reuse")
        return self._pool

    def close(self) -> None:
        """Shut the pool down and release every shared segment.

        Deterministic and idempotent: the pool drains first (workers exit
        and drop their attachments), then the plane closes **and unlinks**
        each segment, so repeated runtimes in one process cannot leak
        ``/dev/shm`` entries.  Double-close is a no-op.
        """
        if self._closed:
            return
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        self._barrier = None
        self._shipped = set()
        self._release_plane()
        self._closed = True

    def _release_plane(self) -> None:
        if self._plane is not None:
            self._plane.close()
            self._plane = None
        self._shm_refs = {}

    def __enter__(self) -> "WorkerRuntime":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    def __del__(self):  # pragma: no cover - GC backstop only
        try:
            if self._pool is not None:
                self._pool.shutdown(wait=False, cancel_futures=True)
                self._pool = None
        except Exception:
            pass
        try:
            self._release_plane()
        except Exception:
            pass

    # -- execution ---------------------------------------------------------
    def thread_map(self, fn, items, state, site) -> List[Any]:
        """Ordered map on the persistent thread pool (state by reference)."""
        pool = self._ensure_thread_pool()

        def run_one(item):
            worker_fault_point(site, 0)
            return fn(state, item)

        return list(pool.map(run_one, items))

    def process_map(
        self, fn, chunks, state_ref, site, sp, shm_results: bool = False
    ) -> List[Any]:
        """Crash-tolerant ordered map on the persistent process pool.

        Chunks carry their index and delivery attempt; completions stream
        in (``as_completed``) and merge into an index-keyed dict, so slow
        chunks never block the collection of finished ones.  A broken pool
        is discarded, its unfinished chunks requeued on a fresh pool, and
        the final merge orders strictly by chunk index — byte-identical to
        the serial backend regardless of completion or restart order.

        With ``shm_results``, shareable results land in worker-created
        shared segments and only name cards cross the pipe; the markers
        are rehydrated here, in merge order, with the runtime's plane
        adopting each segment (and unlinking it at :meth:`close`).
        """
        metrics = get_metrics()
        results_by_chunk: Dict[int, list] = {}
        pending: List[Tuple[int, int]] = [(i, 0) for i in range(len(chunks))]
        restarts = 0
        while pending:
            pool = self._ensure_process_pool()
            futures = {
                pool.submit(
                    _run_chunk,
                    (index, attempt, fn, state_ref, site, chunks[index], shm_results),
                ): (index, attempt)
                for index, attempt in pending
            }
            requeue: List[Tuple[int, int]] = []
            broken = False
            for future in as_completed(futures):
                index, attempt = futures[future]
                try:
                    chunk_index, chunk_results = future.result()
                except BrokenProcessPool:
                    broken = True
                    requeue.append((index, attempt + 1))
                    metrics.incr("parallel.requeued_tasks", len(chunks[index]))
                else:
                    results_by_chunk[chunk_index] = chunk_results
            if broken:
                restarts += 1
                metrics.incr("parallel.pool_restarts")
                sp.incr("pool_restarts")
                self._discard_pool()
                if restarts > _MAX_POOL_RESTARTS:
                    raise WorkerCrashError(
                        f"process pool for {site!r} broke {restarts} times; "
                        f"{len(requeue)} chunk(s) still unfinished"
                    )
            requeue.sort()
            pending = requeue
        merged = [
            result for index in range(len(chunks)) for result in results_by_chunk[index]
        ]
        if shm_results:
            merged = [self._adopt_result(result) for result in merged]
        return merged

    def _adopt_result(self, result):
        if isinstance(result, _ShmResultMarker):
            if self._plane is None:
                self._plane = SharedStatePlane()
            return self._plane.adopt(result.ref)
        return result
