"""Pluggable serial / thread / process execution.

:class:`ExecutionContext` is the one abstraction the pipeline fans work out
through.  Its contract is deliberately narrow so that every backend can
honor it exactly:

* ``map_ordered(fn, items, state=...)`` applies ``fn(state, item)`` to every
  item and returns the results **in input order** — the caller performs the
  reduction itself, in a deterministic order, so parallel runs are
  bit-identical to serial ones;
* ``state`` is shared by reference on the serial and thread backends and
  shipped to each worker process exactly once (via the pool initializer) on
  the process backend, so a heavy read-only object (a route collector, an
  ownership analyst) is not re-pickled per task.

Worker counts and task counts flow into the process-global metrics registry
as ``parallel.jobs`` (gauge) and ``parallel.tasks`` (counter); each
``map_ordered`` call is wrapped in a ``parallel.<label>`` span.

The process backend is crash-tolerant: work is partitioned into indexed
chunks, and when a worker dies (OOM kill, segfault, injected ``crash``
fault) the broken pool is discarded, already-completed chunks keep their
results, and the unfinished chunks are **requeued** on a fresh pool with an
incremented delivery attempt.  Results are reassembled by chunk index, so
the ordered-merge guarantee — bit-identical output to the serial backend —
survives any number of restarts (bounded by ``_MAX_POOL_RESTARTS``).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, List, Mapping, Optional, Sequence, Tuple, TypeVar

from repro.errors import ConfigError, WorkerCrashError
from repro.obs import get_metrics, span
from repro.resilience.faults import worker_fault_point

__all__ = ["BACKENDS", "ExecutionContext"]

BACKENDS = ("serial", "thread", "process")

#: Fresh-pool respawns allowed per map_ordered call before giving up.
_MAX_POOL_RESTARTS = 3

S = TypeVar("S")
T = TypeVar("T")
R = TypeVar("R")

# Worker-process globals, installed once per worker by the pool initializer
# so that ``state`` (and the task function) cross the process boundary one
# single time instead of once per task.
_WORKER_FN: Optional[Callable] = None
_WORKER_STATE = None
_WORKER_SITE = "worker.map"


def _init_worker(fn: Callable, state, site: str = "worker.map") -> None:
    global _WORKER_FN, _WORKER_STATE, _WORKER_SITE
    _WORKER_FN = fn
    _WORKER_STATE = state
    _WORKER_SITE = site


def _call_worker_chunk(payload: Tuple[int, int, list]):
    """Run one indexed chunk inside a worker; returns (index, results).

    ``attempt`` is the chunk's delivery attempt: injected crash faults only
    fire on first delivery, so requeued chunks always make progress.
    """
    index, attempt, items = payload
    results = []
    for item in items:
        worker_fault_point(_WORKER_SITE, attempt)
        results.append(_WORKER_FN(_WORKER_STATE, item))
    return index, results


class ExecutionContext:
    """Executes homogeneous task batches on a selectable backend."""

    def __init__(self, jobs: int = 1, backend: str = "serial") -> None:
        if backend not in BACKENDS:
            raise ConfigError(
                f"unknown parallel backend {backend!r}; pick one of {BACKENDS}"
            )
        if jobs < 1:
            raise ConfigError(f"jobs must be >= 1, got {jobs}")
        if backend == "serial":
            jobs = 1
        self.jobs = jobs
        self.backend = backend

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ExecutionContext(jobs={self.jobs}, backend={self.backend!r})"

    @property
    def is_serial(self) -> bool:
        return self.backend == "serial" or self.jobs == 1

    @classmethod
    def resolve(
        cls,
        jobs: Optional[int] = None,
        backend: Optional[str] = None,
        env: Optional[Mapping[str, str]] = None,
    ) -> "ExecutionContext":
        """Build a context from explicit values with environment fallbacks.

        ``jobs`` falls back to ``REPRO_JOBS`` and then 1; ``jobs=0`` (or
        ``REPRO_JOBS=0``) means "all cores".  ``backend`` falls back to
        ``REPRO_BACKEND`` and then to ``process`` when more than one job is
        requested, ``serial`` otherwise.
        """
        env = os.environ if env is None else env
        if jobs is None:
            raw = env.get("REPRO_JOBS", "").strip()
            if raw:
                try:
                    jobs = int(raw)
                except ValueError:
                    raise ConfigError(f"REPRO_JOBS must be an integer, got {raw!r}")
            else:
                jobs = 1
        if jobs < 0:
            raise ConfigError(f"jobs must be >= 0, got {jobs}")
        if jobs == 0:
            jobs = os.cpu_count() or 1
        if backend is None:
            backend = env.get("REPRO_BACKEND", "").strip() or (
                "process" if jobs > 1 else "serial"
            )
        return cls(jobs=jobs, backend=backend)

    # -- execution ---------------------------------------------------------
    def map_ordered(
        self,
        fn: Callable[[S, T], R],
        items: Sequence[T],
        *,
        state: S = None,
        chunksize: Optional[int] = None,
        label: str = "map",
    ) -> List[R]:
        """Apply ``fn(state, item)`` to every item; results in input order."""
        items = list(items)
        metrics = get_metrics()
        metrics.gauge("parallel.jobs", self.jobs)
        metrics.incr("parallel.tasks", len(items))
        site = f"worker.{label}"
        with span(f"parallel.{label}", backend=self.backend) as sp:
            sp.incr("tasks", len(items))
            if not items:
                return []
            if self.is_serial:
                results = []
                for item in items:
                    worker_fault_point(site, 0)
                    results.append(fn(state, item))
                return results
            if self.backend == "thread":

                def run_one(item):
                    worker_fault_point(site, 0)
                    return fn(state, item)

                with ThreadPoolExecutor(max_workers=self.jobs) as pool:
                    return list(pool.map(run_one, items))
            # Process backend: ship (fn, state) once per worker, then stream
            # items in chunks big enough to amortize the IPC round-trips.
            if chunksize is None:
                chunksize = max(1, len(items) // (self.jobs * 4) or 1)
            return self._map_process(fn, items, state, site, chunksize, sp)

    def _map_process(
        self,
        fn: Callable[[S, T], R],
        items: List[T],
        state: S,
        site: str,
        chunksize: int,
        sp,
    ) -> List[R]:
        """Crash-tolerant ordered map on the process backend.

        Chunks carry their index and delivery attempt; a broken pool is
        replaced and only the chunks without results are requeued, so every
        completed result is kept and the merge order never changes.
        """
        metrics = get_metrics()
        chunks = [
            items[start : start + chunksize]
            for start in range(0, len(items), chunksize)
        ]
        results_by_chunk: dict = {}
        pending: List[Tuple[int, int]] = [(i, 0) for i in range(len(chunks))]
        restarts = 0
        while pending:
            with ProcessPoolExecutor(
                max_workers=self.jobs,
                initializer=_init_worker,
                initargs=(fn, state, site),
            ) as pool:
                futures = {
                    pool.submit(
                        _call_worker_chunk, (index, attempt, chunks[index])
                    ): (index, attempt)
                    for index, attempt in pending
                }
                wait(futures)
                requeue: List[Tuple[int, int]] = []
                broken = False
                for future, (index, attempt) in futures.items():
                    try:
                        chunk_index, chunk_results = future.result()
                    except BrokenProcessPool:
                        broken = True
                        requeue.append((index, attempt + 1))
                        metrics.incr(
                            "parallel.requeued_tasks", len(chunks[index])
                        )
                    else:
                        results_by_chunk[chunk_index] = chunk_results
            if broken:
                restarts += 1
                metrics.incr("parallel.pool_restarts")
                sp.incr("pool_restarts")
                if restarts > _MAX_POOL_RESTARTS:
                    raise WorkerCrashError(
                        f"process pool for {site!r} broke {restarts} times; "
                        f"{len(requeue)} chunk(s) still unfinished"
                    )
            requeue.sort()
            pending = requeue
        return [
            result
            for index in range(len(chunks))
            for result in results_by_chunk[index]
        ]
