"""Pluggable serial / thread / process execution.

:class:`ExecutionContext` is the one abstraction the pipeline fans work out
through.  Its contract is deliberately narrow so that every backend can
honor it exactly:

* ``map_ordered(fn, items, state=...)`` applies ``fn(state, item)`` to every
  item and returns the results **in input order** — the caller performs the
  reduction itself, in a deterministic order, so parallel runs are
  bit-identical to serial ones;
* ``state`` is shared by reference on the serial and thread backends and
  shipped to each worker process exactly once **per run** on the process
  backend: the context lazily creates one run-scoped
  :class:`~repro.parallel.runtime.WorkerRuntime` that owns a persistent
  pool and a handle-based state registry, so a heavy read-only object (a
  route collector, an ownership analyst) is pickled once and referenced by
  handle in every later ``map_ordered`` call.  Call sites may register
  explicitly (``context.register(obj) -> StateHandle``) or keep passing the
  raw object — unregistered states are auto-registered by identity.

Contexts are context managers; ``close()`` shuts the runtime's pool down.
The pipeline closes the contexts it creates itself and leaves injected
ones (CLI-owned, shared across world generation and the pipeline) alone.

Worker counts and task counts flow into the process-global metrics registry
as ``parallel.jobs`` (gauge) and ``parallel.tasks`` (counter); pool
lifecycle shows up as ``parallel.pool_spawns`` / ``pool_reuse`` /
``state_ships``.  Each ``map_ordered`` call is wrapped in a
``parallel.<label>`` span.

The process backend is crash-tolerant: work is partitioned into indexed
chunks, completions stream back (``as_completed``), and when a worker dies
(OOM kill, segfault, injected ``crash`` fault) the broken pool is
discarded, already-completed chunks keep their results, and the unfinished
chunks are **requeued** on a fresh pool with an incremented delivery
attempt.  Results are reassembled by chunk index, so the ordered-merge
guarantee — bit-identical output to the serial backend — survives any
number of restarts (bounded by ``_MAX_POOL_RESTARTS``).
"""

from __future__ import annotations

import os
from typing import Callable, List, Mapping, Optional, Sequence, TypeVar

from repro.errors import ConfigError, invalid_jobs
from repro.obs import get_metrics, span
from repro.parallel.runtime import StateHandle, WorkerRuntime
from repro.resilience.faults import worker_fault_point

__all__ = ["BACKENDS", "ExecutionContext"]

BACKENDS = ("serial", "thread", "process")

S = TypeVar("S")
T = TypeVar("T")
R = TypeVar("R")


class ExecutionContext:
    """Executes homogeneous task batches on a selectable backend."""

    def __init__(self, jobs: int = 1, backend: str = "serial") -> None:
        if backend not in BACKENDS:
            raise ConfigError(
                f"unknown parallel backend {backend!r}; pick one of {BACKENDS}"
            )
        if jobs < 1:
            raise invalid_jobs(jobs)
        if backend == "serial":
            jobs = 1
        self.jobs = jobs
        self.backend = backend
        self._runtime: Optional[WorkerRuntime] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ExecutionContext(jobs={self.jobs}, backend={self.backend!r})"

    @property
    def is_serial(self) -> bool:
        return self.backend == "serial" or self.jobs == 1

    @property
    def runtime(self) -> WorkerRuntime:
        """The run-scoped worker runtime, created on first use."""
        if self._runtime is None:
            self._runtime = WorkerRuntime(self.jobs, self.backend)
        return self._runtime

    def register(self, state, name: str = "state") -> StateHandle:
        """Register a heavy read-only object; shipped to workers once."""
        return self.runtime.register(state, name)

    def close(self) -> None:
        """Shut down the runtime's pool (idempotent)."""
        if self._runtime is not None:
            self._runtime.close()
            self._runtime = None

    def __enter__(self) -> "ExecutionContext":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    @classmethod
    def resolve(
        cls,
        jobs: Optional[int] = None,
        backend: Optional[str] = None,
        env: Optional[Mapping[str, str]] = None,
    ) -> "ExecutionContext":
        """Build a context from explicit values with environment fallbacks.

        ``jobs`` falls back to ``REPRO_JOBS`` and then 1; ``jobs=0`` (or
        ``REPRO_JOBS=0``) means "all cores" and is expanded here — only
        ``resolve`` accepts it.  ``backend`` falls back to ``REPRO_BACKEND``
        and then to ``process`` when more than one job is requested,
        ``serial`` otherwise.
        """
        env = os.environ if env is None else env
        if jobs is None:
            raw = env.get("REPRO_JOBS", "").strip()
            if raw:
                try:
                    jobs = int(raw)
                except ValueError:
                    raise ConfigError(f"REPRO_JOBS must be an integer, got {raw!r}")
            else:
                jobs = 1
        if jobs < 0:
            raise invalid_jobs(jobs)
        if jobs == 0:
            jobs = os.cpu_count() or 1
        if backend is None:
            backend = env.get("REPRO_BACKEND", "").strip() or (
                "process" if jobs > 1 else "serial"
            )
        return cls(jobs=jobs, backend=backend)

    # -- execution ---------------------------------------------------------
    def map_ordered(
        self,
        fn: Callable[[S, T], R],
        items: Sequence[T],
        *,
        state: S = None,
        chunksize: Optional[int] = None,
        label: str = "map",
        shm_results: bool = False,
    ) -> List[R]:
        """Apply ``fn(state, item)`` to every item; results in input order.

        ``state`` may be a raw object or a :class:`StateHandle` from
        :meth:`register`.  On the process backend either way ships the
        object to each worker at most once per run.

        ``shm_results`` opts heavy *results* into the shared-memory return
        path on the process backend: workers export each shareable result
        into a segment (:func:`~repro.parallel.shm.export_result`) and only
        the name card crosses the pipe; the runtime adopts the segments
        during the ordered merge.  Serial and thread backends return the
        objects directly (no pickling happens there anyway), and setting
        ``REPRO_SHM_RESULTS=0`` disables the path globally.
        """
        items = list(items)
        metrics = get_metrics()
        metrics.gauge("parallel.jobs", self.jobs)
        metrics.incr("parallel.tasks", len(items))
        site = f"worker.{label}"
        with span(f"parallel.{label}", backend=self.backend) as sp:
            sp.incr("tasks", len(items))
            if not items:
                return []
            if self.is_serial:
                local_state = (
                    self.runtime.resolve(state)
                    if isinstance(state, StateHandle)
                    else state
                )
                results = []
                for item in items:
                    worker_fault_point(site, 0)
                    results.append(fn(local_state, item))
                return results
            if self.backend == "thread":
                local_state = (
                    self.runtime.resolve(state)
                    if isinstance(state, StateHandle)
                    else state
                )
                return self.runtime.thread_map(fn, items, local_state, site)
            # Process backend: reference state by handle (shipped once per
            # run), then stream items in chunks big enough to amortize the
            # IPC round-trips.
            if chunksize is None:
                chunksize = max(1, len(items) // (self.jobs * 4) or 1)
            chunks = [
                items[start : start + chunksize]
                for start in range(0, len(items), chunksize)
            ]
            use_shm = (
                shm_results and os.environ.get("REPRO_SHM_RESULTS", "1") != "0"
            )
            return self.runtime.process_map(
                fn, chunks, self._state_ref(state), site, sp, shm_results=use_shm
            )

    def _state_ref(self, state):
        """The cross-process reference for ``state``: a handle token.

        Raw objects are auto-registered (memoized by identity), so repeated
        maps over the same object re-ship nothing.
        """
        if state is None:
            return None
        handle = (
            state if isinstance(state, StateHandle) else self.runtime.handle_for(state)
        )
        return ("handle", handle.token)
