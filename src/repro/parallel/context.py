"""Pluggable serial / thread / process execution.

:class:`ExecutionContext` is the one abstraction the pipeline fans work out
through.  Its contract is deliberately narrow so that every backend can
honor it exactly:

* ``map_ordered(fn, items, state=...)`` applies ``fn(state, item)`` to every
  item and returns the results **in input order** — the caller performs the
  reduction itself, in a deterministic order, so parallel runs are
  bit-identical to serial ones;
* ``state`` is shared by reference on the serial and thread backends and
  shipped to each worker process exactly once (via the pool initializer) on
  the process backend, so a heavy read-only object (a route collector, an
  ownership analyst) is not re-pickled per task.

Worker counts and task counts flow into the process-global metrics registry
as ``parallel.jobs`` (gauge) and ``parallel.tasks`` (counter); each
``map_ordered`` call is wrapped in a ``parallel.<label>`` span.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, List, Mapping, Optional, Sequence, TypeVar

from repro.errors import ConfigError
from repro.obs import get_metrics, span

__all__ = ["BACKENDS", "ExecutionContext"]

BACKENDS = ("serial", "thread", "process")

S = TypeVar("S")
T = TypeVar("T")
R = TypeVar("R")

# Worker-process globals, installed once per worker by the pool initializer
# so that ``state`` (and the task function) cross the process boundary one
# single time instead of once per task.
_WORKER_FN: Optional[Callable] = None
_WORKER_STATE = None


def _init_worker(fn: Callable, state) -> None:
    global _WORKER_FN, _WORKER_STATE
    _WORKER_FN = fn
    _WORKER_STATE = state


def _call_worker(item):
    return _WORKER_FN(_WORKER_STATE, item)


class ExecutionContext:
    """Executes homogeneous task batches on a selectable backend."""

    def __init__(self, jobs: int = 1, backend: str = "serial") -> None:
        if backend not in BACKENDS:
            raise ConfigError(
                f"unknown parallel backend {backend!r}; pick one of {BACKENDS}"
            )
        if jobs < 1:
            raise ConfigError(f"jobs must be >= 1, got {jobs}")
        if backend == "serial":
            jobs = 1
        self.jobs = jobs
        self.backend = backend

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ExecutionContext(jobs={self.jobs}, backend={self.backend!r})"

    @property
    def is_serial(self) -> bool:
        return self.backend == "serial" or self.jobs == 1

    @classmethod
    def resolve(
        cls,
        jobs: Optional[int] = None,
        backend: Optional[str] = None,
        env: Optional[Mapping[str, str]] = None,
    ) -> "ExecutionContext":
        """Build a context from explicit values with environment fallbacks.

        ``jobs`` falls back to ``REPRO_JOBS`` and then 1; ``jobs=0`` (or
        ``REPRO_JOBS=0``) means "all cores".  ``backend`` falls back to
        ``REPRO_BACKEND`` and then to ``process`` when more than one job is
        requested, ``serial`` otherwise.
        """
        env = os.environ if env is None else env
        if jobs is None:
            raw = env.get("REPRO_JOBS", "").strip()
            if raw:
                try:
                    jobs = int(raw)
                except ValueError:
                    raise ConfigError(f"REPRO_JOBS must be an integer, got {raw!r}")
            else:
                jobs = 1
        if jobs < 0:
            raise ConfigError(f"jobs must be >= 0, got {jobs}")
        if jobs == 0:
            jobs = os.cpu_count() or 1
        if backend is None:
            backend = env.get("REPRO_BACKEND", "").strip() or (
                "process" if jobs > 1 else "serial"
            )
        return cls(jobs=jobs, backend=backend)

    # -- execution ---------------------------------------------------------
    def map_ordered(
        self,
        fn: Callable[[S, T], R],
        items: Sequence[T],
        *,
        state: S = None,
        chunksize: Optional[int] = None,
        label: str = "map",
    ) -> List[R]:
        """Apply ``fn(state, item)`` to every item; results in input order."""
        items = list(items)
        metrics = get_metrics()
        metrics.gauge("parallel.jobs", self.jobs)
        metrics.incr("parallel.tasks", len(items))
        with span(f"parallel.{label}", backend=self.backend) as sp:
            sp.incr("tasks", len(items))
            if not items:
                return []
            if self.is_serial:
                return [fn(state, item) for item in items]
            if self.backend == "thread":
                with ThreadPoolExecutor(max_workers=self.jobs) as pool:
                    return list(pool.map(lambda item: fn(state, item), items))
            # Process backend: ship (fn, state) once per worker, then stream
            # items in chunks big enough to amortize the IPC round-trips.
            if chunksize is None:
                chunksize = max(1, len(items) // (self.jobs * 4) or 1)
            with ProcessPoolExecutor(
                max_workers=self.jobs,
                initializer=_init_worker,
                initargs=(fn, state),
            ) as pool:
                return list(pool.map(_call_worker, items, chunksize=chunksize))
