"""Content-addressed on-disk result cache.

Pipeline stages whose output is a pure function of the world configuration
(CTI score maps, routing-tree statistics) are cached under
``REPRO_CACHE_DIR`` (default ``~/.cache/repro``) keyed by a SHA-256 digest
of the inputs that produced them.  A warm cache lets a repeated ``run`` /
``report`` / benchmark invocation skip CTI recomputation entirely.

Entries are JSON files written through :func:`repro.io.atomic.atomic_replace`
so a crash mid-write never leaves a truncated entry.  A corrupt or
truncated entry that appears anyway (external tampering, filesystem
damage, injected faults) is treated as a miss, **evicted**, and counted as
``cache.corrupt`` — a bad entry can poison at most one lookup.  Floats
survive the round-trip exactly: ``json`` serializes them with ``repr``
(shortest round-trip form), so cached CTI scores are bit-identical to
freshly computed ones.

Reads and writes run through a :class:`~repro.resilience.retry.RetryPolicy`
and a shared :class:`~repro.resilience.breaker.CircuitBreaker`: transient
filesystem errors are retried with deterministic backoff, a persistently
failing cache stops being consulted (``cache.bypass``) instead of slowing
every lookup, and a failed write never sinks the run
(``cache.write_errors``).  The fault-injection sites are ``cache.get``
(transient/slow/corrupt/truncate) and ``cache.put`` (transient/slow).

Hits and misses are counted in the process-global metrics registry as
``cache.hits`` / ``cache.misses`` / ``cache.writes``, and traffic volume
as ``cache.bytes_read`` / ``cache.bytes_written``.

Besides JSON entries the cache stores opaque **blobs**
(``get_blob``/``put_blob``, ``<root>/<section>/<key>.bin``) for payloads
that are not JSON-friendly — notably the pickled generated world, keyed by
its :func:`world_fingerprint`, which lets a warm ``run``/``report``/
``validate`` skip world generation entirely.  Blobs carry a magic header
plus a SHA-256 digest of the payload; any mismatch (truncation, bit rot,
injected ``corrupt``/``truncate`` faults) is treated as a miss and the
entry evicted, exactly like a corrupt JSON entry.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Union

from repro.errors import ResilienceError
from repro.io.atomic import atomic_replace
from repro.obs import get_metrics
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.faults import fault_point, mangle_text
from repro.resilience.retry import RetryPolicy

__all__ = [
    "ResultCache",
    "resolve_cache_dir",
    "stable_digest",
    "world_fingerprint",
]

_SECTION_SAFE = set("abcdefghijklmnopqrstuvwxyz0123456789_-")

#: Blob entry layout: magic + SHA-256(payload) + payload.
_BLOB_MAGIC = b"RPB1"
_BLOB_HEADER = len(_BLOB_MAGIC) + hashlib.sha256().digest_size


def _canonical_json(obj: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace drift."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"), default=_jsonable)


def _jsonable(obj: Any) -> Any:
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return dataclasses.asdict(obj)
    if isinstance(obj, Mapping):
        return dict(obj)
    if isinstance(obj, (set, frozenset)):
        return sorted(obj)
    if isinstance(obj, tuple):
        return list(obj)
    raise TypeError(f"not cache-keyable: {type(obj).__name__}")


def stable_digest(obj: Any) -> str:
    """SHA-256 digest of an object's canonical JSON form."""
    return hashlib.sha256(_canonical_json(obj).encode("utf-8")).hexdigest()


def world_fingerprint(world_config, noise_config=None) -> str:
    """Digest identifying a synthetic world and its derived sources.

    Everything the pipeline consumes is a deterministic function of the
    world config (seed, scale, probabilities...) and the source-noise
    config, so their digest addresses any world-derived cached artifact.
    """
    payload: Dict[str, Any] = {"world": dataclasses.asdict(world_config)}
    if noise_config is not None:
        payload["noise"] = dataclasses.asdict(noise_config)
    return stable_digest(payload)


def resolve_cache_dir(env: Optional[Mapping[str, str]] = None) -> Optional[Path]:
    """The cache directory the CLI should use.

    ``REPRO_CACHE_DIR`` wins when set; setting it to an empty string
    disables caching; unset falls back to ``~/.cache/repro``.
    """
    env = os.environ if env is None else env
    if "REPRO_CACHE_DIR" in env:
        raw = env["REPRO_CACHE_DIR"].strip()
        return Path(raw).expanduser() if raw else None
    return Path.home() / ".cache" / "repro"


#: Retry posture for cache I/O: one quick retry, tiny backoff.  The cache
#: is an optimization — it must never dominate the latency of a miss.
_CACHE_POLICY = RetryPolicy(
    max_attempts=2,
    base_delay=0.01,
    max_delay=0.05,
)


class ResultCache:
    """A tiny content-addressed JSON store: ``<root>/<section>/<key>.json``."""

    def __init__(
        self,
        root: Union[str, Path],
        policy: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
    ) -> None:
        self._root = Path(root).expanduser()
        self._policy = policy or _CACHE_POLICY
        self._breaker = breaker or CircuitBreaker(
            name="cache", failure_threshold=8, reset_timeout=60.0
        )

    @property
    def root(self) -> Path:
        return self._root

    def _path(self, section: str, key: str) -> Path:
        if not section or not set(section) <= _SECTION_SAFE:
            raise ValueError(f"invalid cache section {section!r}")
        return self._root / section / f"{key}.json"

    def _blob_path(self, section: str, key: str) -> Path:
        if not section or not set(section) <= _SECTION_SAFE:
            raise ValueError(f"invalid cache section {section!r}")
        return self._root / section / f"{key}.bin"

    @staticmethod
    def _read_text(path: Path) -> Optional[str]:
        """File contents, or None when the entry simply does not exist."""
        fault_point("cache.get")
        try:
            with open(path, "r", encoding="utf-8") as handle:
                return handle.read()
        except FileNotFoundError:
            return None

    def _evict_corrupt(self, path: Path) -> None:
        """Remove an unreadable entry so it cannot poison later lookups."""
        get_metrics().incr("cache.corrupt")
        try:
            path.unlink()
        except OSError:  # pragma: no cover - best-effort eviction
            pass

    def get(self, section: str, key: str) -> Optional[Dict[str, Any]]:
        """The cached payload, or None (counted as a miss) if absent/corrupt.

        An entry that exists but cannot be read or parsed is evicted and
        counted as ``cache.corrupt`` on top of the miss; a cache whose
        breaker is open is bypassed entirely (``cache.bypass``).
        """
        metrics = get_metrics()
        path = self._path(section, key)
        try:
            text = self._policy.call(
                lambda: self._read_text(path),
                site="cache.get",
                breaker=self._breaker,
            )
        except ResilienceError:
            # Breaker open, or the read kept failing: an unreadable entry
            # is a miss, and one that exists on disk is evicted.
            metrics.incr("cache.bypass")
            metrics.incr("cache.misses")
            if path.exists():
                self._evict_corrupt(path)
            return None
        if text is None:
            metrics.incr("cache.misses")
            return None
        text = mangle_text("cache.get", text)
        try:
            payload = json.loads(text)
        except ValueError:
            payload = None
        if not isinstance(payload, dict):
            self._evict_corrupt(path)
            metrics.incr("cache.misses")
            return None
        metrics.incr("cache.hits")
        metrics.incr("cache.bytes_read", len(text.encode("utf-8")))
        return payload

    def put(self, section: str, key: str, payload: Dict[str, Any]) -> None:
        """Store ``payload`` atomically; never corrupts an existing entry.

        A cache write is an optimization, not an obligation: persistent
        failures are counted (``cache.write_errors``) and swallowed.
        """

        text = json.dumps(payload, sort_keys=True)

        def write() -> None:
            fault_point("cache.put")
            path = self._path(section, key)
            path.parent.mkdir(parents=True, exist_ok=True)
            with atomic_replace(path) as tmp_path:
                with open(tmp_path, "w", encoding="utf-8") as handle:
                    handle.write(text)

        try:
            self._policy.call(write, site="cache.put", breaker=self._breaker)
        except ResilienceError:
            get_metrics().incr("cache.write_errors")
            return
        metrics = get_metrics()
        metrics.incr("cache.writes")
        metrics.incr("cache.bytes_written", len(text.encode("utf-8")))

    # -- opaque blobs ------------------------------------------------------
    @staticmethod
    def _read_bytes(path: Path) -> Optional[bytes]:
        """Raw blob contents, or None when the entry does not exist."""
        fault_point("cache.get")
        try:
            with open(path, "rb") as handle:
                return handle.read()
        except FileNotFoundError:
            return None

    def get_blob(self, section: str, key: str) -> Optional[bytes]:
        """The cached blob payload, or None (a miss) if absent or corrupt.

        The stored SHA-256 digest is verified before anything is returned;
        a mismatched, truncated or otherwise unreadable entry is evicted
        and counted as ``cache.corrupt`` on top of the miss.
        """
        metrics = get_metrics()
        path = self._blob_path(section, key)
        try:
            raw = self._policy.call(
                lambda: self._read_bytes(path),
                site="cache.get",
                breaker=self._breaker,
            )
        except ResilienceError:
            metrics.incr("cache.bypass")
            metrics.incr("cache.misses")
            if path.exists():
                self._evict_corrupt(path)
            return None
        if raw is None:
            metrics.incr("cache.misses")
            return None
        payload = raw[_BLOB_HEADER:]
        if (
            len(raw) < _BLOB_HEADER
            or raw[: len(_BLOB_MAGIC)] != _BLOB_MAGIC
            or raw[len(_BLOB_MAGIC) : _BLOB_HEADER]
            != hashlib.sha256(payload).digest()
        ):
            self._evict_corrupt(path)
            metrics.incr("cache.misses")
            return None
        metrics.incr("cache.hits")
        metrics.incr("cache.bytes_read", len(raw))
        return payload

    def put_blob(self, section: str, key: str, payload: bytes) -> None:
        """Store an opaque blob atomically with an integrity digest."""
        data = _BLOB_MAGIC + hashlib.sha256(payload).digest() + payload

        def write() -> None:
            fault_point("cache.put")
            path = self._blob_path(section, key)
            path.parent.mkdir(parents=True, exist_ok=True)
            with atomic_replace(path) as tmp_path:
                with open(tmp_path, "wb") as handle:
                    handle.write(data)

        try:
            self._policy.call(write, site="cache.put", breaker=self._breaker)
        except ResilienceError:
            get_metrics().incr("cache.write_errors")
            return
        metrics = get_metrics()
        metrics.incr("cache.writes")
        metrics.incr("cache.bytes_written", len(data))

    def evict(self, section: str, key: str) -> None:
        """Drop an entry (JSON and blob forms) that proved unusable."""
        for path in (self._path(section, key), self._blob_path(section, key)):
            if path.exists():
                self._evict_corrupt(path)

    def stats(self) -> Dict[str, Dict[str, int]]:
        """Per-section entry counts and byte totals, for cache hygiene.

        The fine-grained incremental tiers (``cti-terms``, ``cti-scores``)
        write one small file per origin/country, so this is how operators
        see what a maintain loop actually accumulated on disk.  Sections
        are reported even when empty-but-present; a missing root yields
        ``{}``.
        """
        stats: Dict[str, Dict[str, int]] = {}
        if not self._root.is_dir():
            return stats
        for section_dir in sorted(self._root.iterdir()):
            if not section_dir.is_dir():
                continue
            entries = 0
            blobs = 0
            total = 0
            for entry in section_dir.iterdir():
                if entry.suffix == ".json":
                    entries += 1
                elif entry.suffix == ".bin":
                    blobs += 1
                else:
                    continue
                try:
                    total += entry.stat().st_size
                except OSError:  # pragma: no cover - raced unlink
                    continue
            stats[section_dir.name] = {
                "entries": entries,
                "blobs": blobs,
                "bytes": total,
            }
        return stats
