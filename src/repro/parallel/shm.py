"""Zero-copy shared-memory state plane for the worker runtime.

The PR 5 runtime shipped every registered state as a pickle blob: each
worker unpickled (and therefore *copied*) the full object graph, so
resident memory grew linearly with ``--jobs``.  This module replaces the
copy with POSIX shared memory: the coordinator flattens a state object
into contiguous struct-of-arrays buffers, writes them once into a
:class:`multiprocessing.shared_memory.SharedMemory` segment, and ships
only a tiny :class:`ShmRef` (segment name + buffer layout + small meta
dict).  Workers attach to the segment **by name** and rebuild a read-only
view over zero-copy ``memoryview`` casts — per-worker memory stays flat
no matter how many workers attach.

An object opts in by implementing the shareable protocol:

``__shm_export__(self) -> (meta, buffers)``
    ``meta`` is a small picklable dict; ``buffers`` is an ordered list of
    ``(format, buffer)`` pairs where ``format`` is a single struct format
    character (``"q"``, ``"i"``, ``"B"``, ...) and ``buffer`` is any
    C-contiguous buffer of that item type (``array.array``,
    ``memoryview``, ``bytes``).

``__shm_rebuild__(cls, meta, views) -> object``  (classmethod)
    Inverse: receives ``meta`` plus one cast ``memoryview`` per exported
    buffer, in export order, and returns the worker-side view object.
    The views are backed by the shared segment — the rebuilt object must
    treat them as read-only and must not outlive the worker process.

Segment layout: buffers are packed back to back at 16-byte-aligned
offsets; the layout table ``(format, offset, nbytes)`` travels in the
``ShmRef`` so attach never has to parse the segment itself.

Lifecycle: the coordinator's :class:`SharedStatePlane` owns every segment
it creates and is the *only* unlinker.  ``close()`` is idempotent —
close + unlink each segment, tolerating double-close and already-removed
files — so repeated runtimes in one process cannot leak ``/dev/shm``
entries.  Workers never unlink: their attachments are opened with tracker
registration suppressed (Python 3.11 registers attachments
unconditionally, bpo-38119) and their views released via an ``atexit``
hook.
"""

from __future__ import annotations

import atexit
from contextlib import contextmanager
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import Any, Dict, Iterator, List, Tuple

from repro.obs import get_metrics

__all__ = [
    "ShmRef",
    "SharedStatePlane",
    "attach_ref",
    "export_result",
    "is_shareable",
    "release_worker_attachments",
]

#: Buffer offsets inside a segment are rounded up to this alignment so
#: ``memoryview.cast`` never sees a misaligned start for any item size.
_ALIGN = 16


@dataclass(frozen=True)
class ShmRef:
    """Picklable name card for one shared segment: everything a worker
    needs to attach and rebuild the object without touching the registry
    pickle path.  ``cls`` pickles by reference (module + qualname)."""

    name: str
    cls: type
    meta: Dict[str, Any]
    layout: Tuple[Tuple[str, int, int], ...]  # (format, offset, nbytes)
    total_bytes: int


def is_shareable(state: Any) -> bool:
    """True when ``state`` implements the shm export/rebuild protocol."""
    return hasattr(state, "__shm_export__") and hasattr(type(state), "__shm_rebuild__")


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) & ~(_ALIGN - 1)


class SharedStatePlane:
    """Coordinator-side owner of the shared segments for one runtime."""

    def __init__(self) -> None:
        self._segments: Dict[str, shared_memory.SharedMemory] = {}
        self._closed = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SharedStatePlane(segments={len(self._segments)}, "
            f"closed={self._closed})"
        )

    @property
    def segment_names(self) -> Tuple[str, ...]:
        return tuple(self._segments)

    def share(self, state: Any) -> ShmRef:
        """Flatten ``state`` into a fresh shared segment; returns the ref.

        The export buffers are copied into the segment exactly once, all
        transient write views are dropped before returning, and the
        segment stays alive (and attachable by name) until ``close``.
        """
        if self._closed:
            raise ValueError("shared state plane is closed")
        meta, buffers = state.__shm_export__()
        layout: List[Tuple[str, int, int]] = []
        offset = 0
        flat: List[memoryview] = []
        for fmt, buf in buffers:
            view = memoryview(buf)
            if view.format != "B" or view.ndim != 1:
                view = view.cast("B")
            offset = _aligned(offset)
            layout.append((fmt, offset, view.nbytes))
            flat.append(view)
            offset += view.nbytes
        total = offset
        segment = shared_memory.SharedMemory(create=True, size=max(total, 1))
        try:
            for (_, start, nbytes), view in zip(layout, flat):
                if nbytes:
                    segment.buf[start : start + nbytes] = view
        finally:
            for view in flat:
                view.release()
        self._segments[segment.name] = segment
        metrics = get_metrics()
        metrics.incr("runtime.shm_segments")
        metrics.incr("runtime.shm_bytes", total)
        metrics.gauge("runtime.shm_bytes_live", self.live_bytes())
        return ShmRef(
            name=segment.name,
            cls=type(state),
            meta=meta,
            layout=tuple(layout),
            total_bytes=total,
        )

    def live_bytes(self) -> int:
        return sum(seg.size for seg in self._segments.values())

    def adopt(self, ref: ShmRef) -> Any:
        """Attach a worker-exported result segment and rebuild the object.

        The inverse direction of :meth:`share`: the segment was created by
        a *worker* (see :func:`export_result`), so the coordinator attaches
        by name, takes ownership — this plane becomes the segment's sole
        unlinker, exactly as if it had created it — and rebuilds the
        object over zero-copy views.  The rebuilt object must not outlive
        the plane.
        """
        if self._closed:
            raise ValueError("shared state plane is closed")
        # Attach WITHOUT suppressing tracker registration: the exporting
        # worker suppressed its create-time registration (it must never
        # unlink), so this attach-time registration is the segment's only
        # tracker entry — it backs the unregister that ``unlink`` sends at
        # ``close`` and lets the tracker reap the file if we die first.
        segment = shared_memory.SharedMemory(name=ref.name)
        self._segments[segment.name] = segment
        views: List[memoryview] = []
        for fmt, start, nbytes in ref.layout:
            view = segment.buf[start : start + nbytes]
            if fmt != "B":
                view = view.cast(fmt)
            views.append(view)
        metrics = get_metrics()
        metrics.incr("runtime.shm_adopted")
        metrics.gauge("runtime.shm_bytes_live", self.live_bytes())
        return ref.cls.__shm_rebuild__(ref.meta, views)

    def close(self) -> None:
        """Close + unlink every owned segment; safe to call repeatedly."""
        self._closed = True
        while self._segments:
            _, segment = self._segments.popitem()
            try:
                segment.close()
            except BufferError:  # pragma: no cover - exported views linger
                pass
            try:
                segment.unlink()
            except FileNotFoundError:
                pass
        get_metrics().gauge("runtime.shm_bytes_live", 0)

    def __del__(self):  # pragma: no cover - GC backstop only
        try:
            self.close()
        except Exception:
            pass


def export_result(obj: Any) -> ShmRef:
    """Worker-side: flatten a shareable result into a fresh shared segment.

    The mirror image of :meth:`SharedStatePlane.share` for the
    worker-to-coordinator direction: plan/commit fan-outs whose *results*
    are heavy flat arrays (world wiring plans, swept count columns) write
    them straight into a segment and return only the :class:`ShmRef` name
    card — the result pickle crossing the pool pipe stays tiny and the
    coordinator rebuilds zero-copy views via :meth:`SharedStatePlane.
    adopt`.

    The segment is created with resource-tracker registration suppressed:
    the worker must not unlink it at exit (the adopting coordinator is the
    sole unlinker).  The worker's own mapping is closed before returning —
    after export the data lives only in the segment.
    """
    meta, buffers = obj.__shm_export__()
    layout: List[Tuple[str, int, int]] = []
    offset = 0
    flat: List[memoryview] = []
    for fmt, buf in buffers:
        view = memoryview(buf)
        if view.format != "B" or view.ndim != 1:
            view = view.cast("B")
        offset = _aligned(offset)
        layout.append((fmt, offset, view.nbytes))
        flat.append(view)
        offset += view.nbytes
    total = offset
    with _registration_suppressed():
        segment = shared_memory.SharedMemory(create=True, size=max(total, 1))
    try:
        for (_, start, nbytes), view in zip(layout, flat):
            if nbytes:
                segment.buf[start : start + nbytes] = view
    finally:
        for view in flat:
            view.release()
    ref = ShmRef(
        name=segment.name,
        cls=type(obj),
        meta=meta,
        layout=tuple(layout),
        total_bytes=total,
    )
    segment.close()
    metrics = get_metrics()
    metrics.incr("runtime.shm_exported")
    metrics.incr("runtime.shm_bytes", total)
    return ref


# -- worker-process side ----------------------------------------------------
# One attachment per segment name per worker process, reused across chunks;
# released in bulk by a single atexit hook so the mmap never closes while
# cast views are still exported.
_ATTACHED: Dict[str, Tuple[shared_memory.SharedMemory, List[memoryview], Any]]
_ATTACHED = {}
_RELEASE_HOOKED = False


def attach_ref(ref: ShmRef) -> Any:
    """Attach to ``ref``'s segment and rebuild the object (memoized).

    The first attach per segment maps it, deregisters the attachment from
    the resource tracker (the coordinator owns unlink), casts one view per
    layout entry, and calls ``cls.__shm_rebuild__``.  Later calls return
    the cached object — attaching is idempotent within a process.
    """
    cached = _ATTACHED.get(ref.name)
    if cached is not None:
        return cached[2]
    with _registration_suppressed():
        segment = shared_memory.SharedMemory(name=ref.name)
    views: List[memoryview] = []
    for fmt, start, nbytes in ref.layout:
        view = segment.buf[start : start + nbytes]
        if fmt != "B":
            view = view.cast(fmt)
        views.append(view)
    obj = ref.cls.__shm_rebuild__(ref.meta, views)
    _ATTACHED[ref.name] = (segment, views, obj)
    _ensure_release_hook()
    get_metrics().incr("runtime.attach")
    return obj


def release_worker_attachments() -> None:
    """Drop every cached attachment in this process (views then mmap)."""
    while _ATTACHED:
        _, (segment, views, _) = _ATTACHED.popitem()
        for view in views:
            try:
                view.release()
            except Exception:  # pragma: no cover - view already exported
                pass
        try:
            segment.close()
        except Exception:  # pragma: no cover - BufferError on live views
            pass


def _ensure_release_hook() -> None:
    global _RELEASE_HOOKED
    if not _RELEASE_HOOKED:
        atexit.register(release_worker_attachments)
        _RELEASE_HOOKED = True


@contextmanager
def _registration_suppressed() -> Iterator[None]:
    """Open a ``SharedMemory`` without registering it with the tracker.

    Python 3.11 registers *every* ``SharedMemory`` open — attach included —
    with the resource tracker (bpo-38119; fixed by ``track=`` only in
    3.13).  An attaching worker must not be tracked at all: the coordinator
    owns unlink.  Unregistering *after* the attach is not enough — under
    the fork start method workers share the coordinator's tracker process,
    so a worker's late-arriving register message can race the
    coordinator's unlink-time unregister and resurrect the entry (a bogus
    "leaked shared_memory objects" warning at shutdown), while an eager
    worker unregister strips the create-time entry unlink relies on.
    Suppressing the registration up front sidesteps the race for every
    start method: no message is ever sent for attachments.
    """
    original = resource_tracker.register

    def _register(name: str, rtype: str) -> None:
        if rtype != "shared_memory":  # pragma: no cover - not hit today
            original(name, rtype)

    resource_tracker.register = _register
    try:
        yield
    finally:
        resource_tracker.register = original
