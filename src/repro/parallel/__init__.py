"""Parallel execution layer: pluggable fan-out plus a persistent cache.

Two pieces, each usable alone:

* :class:`~repro.parallel.context.ExecutionContext` — one abstraction over
  serial / thread-pool / process-pool execution with order-preserving
  ``map_ordered``, selected via ``--jobs/-j`` on the CLI or the
  ``REPRO_JOBS`` / ``REPRO_BACKEND`` environment variables;
* :class:`~repro.parallel.cache.ResultCache` — a content-addressed on-disk
  store (``~/.cache/repro`` or ``REPRO_CACHE_DIR``) that lets repeated
  pipeline runs over the same world skip CTI recomputation entirely.

Every parallel path is required to produce **bit-identical** results to the
serial one: work is partitioned per item, partial results are returned in
input order, and all floating-point reductions replay in the same order the
serial loop uses.
"""

from repro.parallel.cache import (
    ResultCache,
    resolve_cache_dir,
    stable_digest,
    world_fingerprint,
)
from repro.parallel.context import BACKENDS, ExecutionContext
from repro.parallel.runtime import StateHandle, WorkerRuntime
from repro.parallel.shm import ShmRef, SharedStatePlane, is_shareable

__all__ = [
    "BACKENDS",
    "ExecutionContext",
    "ResultCache",
    "SharedStatePlane",
    "ShmRef",
    "StateHandle",
    "WorkerRuntime",
    "is_shareable",
    "resolve_cache_dir",
    "stable_digest",
    "world_fingerprint",
]
