"""The paper's contribution: the three-stage classification pipeline.

Stage 1 (:mod:`.candidates`) harvests candidate ASes from the three
technical sources and candidate company names from the two non-technical
sources.  The mapper (:mod:`.mapping`) reconciles ASes with company
identities through WHOIS, PeeringDB and domain search.  Stage 2
(:mod:`.confirmation`, :mod:`.subsidiaries`) verifies majority state
ownership against the confirmation corpus, chasing fund/holding chains and
walking parent/subsidiary links.  Stage 3 (:mod:`.expansion`) maps
confirmed companies back to ASNs and adds AS2Org siblings.  The
orchestrator (:mod:`.pipeline`) wires everything and emits the output
dataset (:mod:`.dataset`); :mod:`.validation` scores a run against the
world's ground truth.
"""

from repro.core.candidates import CandidateSet, CompanyCandidate, harvest_candidates
from repro.core.mapping import CompanyMapper, MappedCompany
from repro.core.confirmation import (
    ConfirmationVerdict,
    OwnershipAnalyst,
    ExclusionReason,
    classify_exclusion,
)
from repro.core.subsidiaries import SubsidiaryExplorer
from repro.core.expansion import expand_to_asns
from repro.core.dataset import (
    OrganizationRecord,
    StateOwnedDataset,
)
from repro.core.pipeline import PipelineInputs, PipelineResult, StateOwnershipPipeline
from repro.core.validation import ValidationReport, validate_against_world
from repro.core.maintenance import (
    MaintainReport,
    ReverificationItem,
    SnapshotRecord,
    plan_reverification,
    run_maintenance,
)
from repro.core.expertreview import ExpertReview, expert_review
from repro.core.diffing import DatasetDiff, asn_churn_fraction, diff_datasets

__all__ = [
    "CandidateSet",
    "CompanyCandidate",
    "harvest_candidates",
    "CompanyMapper",
    "MappedCompany",
    "ConfirmationVerdict",
    "OwnershipAnalyst",
    "ExclusionReason",
    "classify_exclusion",
    "SubsidiaryExplorer",
    "expand_to_asns",
    "OrganizationRecord",
    "StateOwnedDataset",
    "PipelineInputs",
    "PipelineResult",
    "StateOwnershipPipeline",
    "ValidationReport",
    "validate_against_world",
    "ReverificationItem",
    "plan_reverification",
    "MaintainReport",
    "SnapshotRecord",
    "run_maintenance",
    "ExpertReview",
    "expert_review",
    "DatasetDiff",
    "asn_churn_fraction",
    "diff_datasets",
]
