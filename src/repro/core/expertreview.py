"""Simulated third-party expert validation (§7).

The paper recruited two local experts — one covering the whole LACNIC
region, one covering France — who audited the dataset slices they knew and
reported zero false positives and zero false negatives.  With a synthetic
world the expert is the ground truth itself; this module reproduces the
*protocol*: pick a review scope (a region or a set of countries), extract
the dataset's claims inside it, and grade them like an expert would.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Tuple

from repro.core.pipeline import PipelineResult
from repro.world.countries import COUNTRIES

__all__ = ["ExpertFinding", "ExpertReview", "expert_review"]

_RIR_CCS = {
    rir: frozenset(c.cc for c in COUNTRIES if c.rir == rir)
    for rir in ("AFRINIC", "APNIC", "ARIN", "LACNIC", "RIPE")
}


@dataclass(frozen=True)
class ExpertFinding:
    """One disagreement the expert raises."""

    kind: str           # "false positive" | "false negative"
    asn: int
    company_name: str
    cc: str


@dataclass(frozen=True)
class ExpertReview:
    """An expert's audit of the dataset inside their region of knowledge."""

    scope_name: str
    countries: FrozenSet[str]
    asns_reviewed: int
    findings: Tuple[ExpertFinding, ...]

    @property
    def clean(self) -> bool:
        """True when the expert found nothing wrong (the paper's outcome)."""
        return not self.findings


def _scope_ccs(scope: str) -> FrozenSet[str]:
    if scope in _RIR_CCS:
        return _RIR_CCS[scope]
    return frozenset({scope.upper()})


def expert_review(
    result: PipelineResult,
    world,
    scope: str,
) -> ExpertReview:
    """Audit the dataset within ``scope`` (an RIR name or a country code).

    The "expert" knows the complete local truth, exactly like the paper's
    reviewers knew their markets.
    """
    countries = _scope_ccs(scope)
    cc_of_asn = {asn: rec.cc for asn, rec in world.asn_records.items()}
    truth = {
        asn for asn in world.ground_truth_asns() if cc_of_asn.get(asn) in countries
    }
    claimed = {
        asn for asn in result.dataset.all_asns() if cc_of_asn.get(asn) in countries
    }
    findings: List[ExpertFinding] = []
    for asn in sorted(claimed - truth):
        org = result.dataset.org_of_asn(asn)
        findings.append(
            ExpertFinding(
                kind="false positive",
                asn=asn,
                company_name=org.org_name if org else "?",
                cc=cc_of_asn.get(asn, "?"),
            )
        )
    for asn in sorted(truth - claimed):
        operator = world.operator(world.asn_records[asn].operator_id)
        findings.append(
            ExpertFinding(
                kind="false negative",
                asn=asn,
                company_name=operator.display_name,
                cc=cc_of_asn.get(asn, "?"),
            )
        )
    return ExpertReview(
        scope_name=scope,
        countries=countries,
        asns_reviewed=len(claimed | truth),
        findings=tuple(findings),
    )
