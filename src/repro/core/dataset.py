"""The output dataset (§6, Listing 1).

Two data products, exactly as the paper publishes them:

* a list of state-owned organizations with confirmation metadata
  (:class:`OrganizationRecord` — the JSON object of Listing 1), and
* a mapping from each organization to the ASNs it owns.

:class:`StateOwnedDataset` is the container; JSON and SQLite round-trips
live in :mod:`repro.io.jsonio` / :mod:`repro.io.sqliteio`.
"""

from __future__ import annotations

from dataclasses import dataclass, asdict
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import DatasetError

__all__ = ["OrganizationRecord", "StateOwnedDataset"]


@dataclass(frozen=True)
class OrganizationRecord:
    """One state-owned organization (the Listing 1 schema)."""

    conglomerate_name: str
    org_id: str
    org_name: str
    ownership_cc: str               # country holding the majority
    ownership_country_name: str
    rir: str
    source: str                     # confirmation source type
    quote: str
    quote_lang: str
    url: str
    additional_info: str = ""
    inputs: Tuple[str, ...] = ()    # candidate-source codes: G, E, C, W, O
    parent_org: Optional[str] = None        # parent org_id (subsidiaries)
    target_cc: Optional[str] = None         # operating country (foreign subs)
    target_country_name: Optional[str] = None

    @property
    def is_foreign_subsidiary(self) -> bool:
        """True when the operator serves a country other than its owner's."""
        return self.target_cc is not None and self.target_cc != self.ownership_cc

    @property
    def operating_cc(self) -> str:
        """The country whose market the operator serves."""
        return self.target_cc or self.ownership_cc

    def to_dict(self) -> Dict[str, object]:
        data = asdict(self)
        data["inputs"] = list(self.inputs)
        return data


class StateOwnedDataset:
    """The paper's two data products with convenience queries.

    ``degraded_sources`` is the resilience provenance of the producing run:
    the candidate-source codes (``G``/``E``/``C``/``W``/``O``) that were
    quarantined after exhausting their retries.  An empty tuple means a
    clean run.  The flags survive both the JSON and SQLite round-trips, so
    a consumer can always tell a complete dataset from a degraded one.
    """

    def __init__(
        self,
        organizations: Sequence[OrganizationRecord],
        asns_of_org: Dict[str, Sequence[int]],
        degraded_sources: Sequence[str] = (),
    ) -> None:
        for code in degraded_sources:
            if not isinstance(code, str) or not code:
                raise DatasetError(
                    f"degraded source codes must be non-empty strings, " f"got {code!r}"
                )
        self._degraded_sources: Tuple[str, ...] = tuple(sorted(set(degraded_sources)))
        self._organizations: List[OrganizationRecord] = list(organizations)
        seen: Set[str] = set()
        for org in self._organizations:
            if org.org_id in seen:
                raise DatasetError(f"duplicate org_id {org.org_id}")
            seen.add(org.org_id)
        unknown = set(asns_of_org) - seen
        if unknown:
            raise DatasetError(f"ASN lists for unknown orgs: {sorted(unknown)}")
        self._asns_of_org: Dict[str, Tuple[int, ...]] = {
            org_id: tuple(sorted(set(asns))) for org_id, asns in asns_of_org.items()
        }

    # -- container protocol ------------------------------------------------------
    def __len__(self) -> int:
        return len(self._organizations)

    def __iter__(self) -> Iterator[OrganizationRecord]:
        return iter(self._organizations)

    # -- queries ------------------------------------------------------------------
    @property
    def degraded_sources(self) -> Tuple[str, ...]:
        """Candidate-source codes quarantined in the producing run."""
        return self._degraded_sources

    @property
    def is_degraded(self) -> bool:
        """True when at least one candidate source was quarantined."""
        return bool(self._degraded_sources)

    def organizations(self) -> List[OrganizationRecord]:
        return list(self._organizations)

    def organization(self, org_id: str) -> OrganizationRecord:
        for org in self._organizations:
            if org.org_id == org_id:
                return org
        raise DatasetError(f"unknown org_id {org_id}")

    def asns_of(self, org_id: str) -> Tuple[int, ...]:
        """ASNs owned by one organization (empty tuple for ASN-less orgs)."""
        self.organization(org_id)
        return self._asns_of_org.get(org_id, ())

    def all_asns(self) -> FrozenSet[int]:
        """Every state-owned ASN in the dataset."""
        return frozenset(asn for asns in self._asns_of_org.values() for asn in asns)

    def foreign_subsidiary_asns(self) -> FrozenSet[int]:
        return frozenset(
            asn
            for org in self._organizations
            if org.is_foreign_subsidiary
            for asn in self._asns_of_org.get(org.org_id, ())
        )

    def org_of_asn(self, asn: int) -> Optional[OrganizationRecord]:
        for org in self._organizations:
            if asn in self._asns_of_org.get(org.org_id, ()):
                return org
        return None

    def owner_countries(self) -> FrozenSet[str]:
        """Countries that majority-own at least one organization."""
        return frozenset(org.ownership_cc for org in self._organizations)

    def subsidiary_owner_countries(self) -> FrozenSet[str]:
        """Countries owning foreign subsidiaries."""
        return frozenset(
            org.ownership_cc for org in self._organizations if org.is_foreign_subsidiary
        )

    def organizations_in(self, operating_cc: str) -> List[OrganizationRecord]:
        """Organizations operating in one country (domestic + foreign)."""
        return [org for org in self._organizations if org.operating_cc == operating_cc]

    def domestic_organizations(self) -> List[OrganizationRecord]:
        return [o for o in self._organizations if not o.is_foreign_subsidiary]

    def foreign_subsidiaries(self) -> List[OrganizationRecord]:
        return [o for o in self._organizations if o.is_foreign_subsidiary]

    def asn_count(self) -> int:
        return len(self.all_asns())

    # -- construction helpers --------------------------------------------------------
    def merged_with(self, other: "StateOwnedDataset") -> "StateOwnedDataset":
        """Union of two datasets (org_ids must not clash)."""
        orgs = self.organizations() + other.organizations()
        asns: Dict[str, Sequence[int]] = dict(self._asns_of_org)
        for org in other.organizations():
            asns[org.org_id] = other.asns_of(org.org_id)
        return StateOwnedDataset(
            orgs,
            asns,
            degraded_sources=self._degraded_sources
            + other.degraded_sources,
        )
