"""The three-stage classification pipeline (Figure 2), end to end.

:class:`StateOwnershipPipeline` consumes only derived data sources (never
the world's ground truth) and emits the output dataset plus rich
diagnostics.  :class:`PipelineInputs.from_world` is the convenience
constructor that materializes every source from a synthetic world.
"""

from __future__ import annotations

import hashlib
import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.config import (
    ParallelConfig,
    PipelineConfig,
    ResilienceConfig,
    SourceNoiseConfig,
)
from repro.core.candidates import CandidateSet, harvest_candidates
from repro.core.confirmation import (
    ConfirmationStatus,
    ConfirmationVerdict,
    OwnershipAnalyst,
    ExclusionReason,
    classify_exclusion,
)
from repro.core.dataset import OrganizationRecord, StateOwnedDataset
from repro.core.expansion import expand_to_asns
from repro.core.mapping import CompanyMapper
from repro.core.subsidiaries import DiscoveredCompany, SubsidiaryExplorer
from repro.cti.metric import CTIComputer
from repro.cti.selection import CTISelection, select_cti_candidates
from repro.errors import PipelineError, ResilienceError, SourceError
from repro.obs import get_metrics, span
from repro.parallel import (
    ExecutionContext,
    ResultCache,
    stable_digest,
    world_fingerprint,
)
from repro.resilience import QuarantinedSource, SourceGuard
from repro.sources.as2org import As2OrgDataset
from repro.sources.asrank import AsRankDataset
from repro.sources.base import InputSource
from repro.sources.documents import ConfirmationCorpus
from repro.sources.eyeballs import EyeballDataset
from repro.sources.freedomhouse import FreedomHouseReports
from repro.sources.geolocation import GeolocationService
from repro.sources.orbis import OrbisDatabase
from repro.sources.peeringdb import PeeringDBDataset
from repro.sources.prefix2as import Prefix2ASTable
from repro.sources.whois import WhoisDatabase
from repro.sources.wikipedia import WikipediaArticles
from repro.text.normalize import normalize_name
from repro.world.countries import COUNTRIES

__all__ = ["PipelineInputs", "PipelineResult", "StateOwnershipPipeline"]

_COUNTRY_NAME = {c.cc: c.name for c in COUNTRIES}
_COUNTRY_RIR = {c.cc: c.rir for c in COUNTRIES}


@dataclass
class PipelineInputs:
    """Every data source the pipeline consumes."""

    prefix2as: Prefix2ASTable
    geolocation: GeolocationService
    eyeballs: EyeballDataset
    whois: WhoisDatabase
    peeringdb: PeeringDBDataset
    as2org: As2OrgDataset
    orbis: OrbisDatabase
    freedomhouse: FreedomHouseReports
    wikipedia: WikipediaArticles
    corpus: ConfirmationCorpus
    collector: object                  # RouteCollector (for CTI)
    cti_eligible_ccs: Tuple[str, ...]  # transit-dominant countries
    asrank: Optional[object] = None    # AsRankDataset (evaluation only)
    #: Content digest of the configuration that produced these inputs; keys
    #: the persistent result cache.  None disables on-disk caching for runs
    #: over hand-assembled inputs, whose provenance we cannot fingerprint.
    fingerprint: Optional[str] = None
    #: Candidate sources quarantined while *building* the inputs: each
    #: exhausted its retry budget and was replaced by an inert
    #: :class:`~repro.resilience.QuarantinedSource`.  The pipeline folds
    #: these into the run's degraded-source provenance.
    degraded: FrozenSet[InputSource] = frozenset()
    #: The call sites that failed, for diagnostics ("source.orbis", ...).
    degraded_sites: Tuple[str, ...] = ()

    @classmethod
    def from_world(
        cls,
        world,
        noise: Optional[SourceNoiseConfig] = None,
        resilience: Optional[ResilienceConfig] = None,
        prefix2as: Optional[Prefix2ASTable] = None,
    ) -> "PipelineInputs":
        """Materialize all derived sources from a synthetic world.

        Every source loader runs under retry/circuit-breaker protection
        (and the fault-injection sites ``source.<name>``).  Loaders the
        pipeline can run without — the five candidate feeds — degrade into
        :class:`~repro.resilience.QuarantinedSource` stand-ins when they
        exhaust their retries; infrastructure loaders (prefix2as, WHOIS,
        PeeringDB, AS2Org, the confirmation corpus) stay fatal.  With
        ``resilience.fail_fast`` every exhausted loader is fatal.

        ``prefix2as`` reuses an already-built table (and its trie) when
        the caller has proven, via the prefix-source fingerprint, that the
        world's announced table is unchanged — the incremental maintain
        loop's trie-reuse path.
        """
        noise = noise or SourceNoiseConfig()
        config = resilience or ResilienceConfig()
        guard = SourceGuard.from_config(config)
        degraded: Set[InputSource] = set()
        failed_sites: List[str] = []

        def build(site: str, builder):
            """A required loader: retried, then fatal."""
            return guard.call(site, builder)

        def build_optional(site: str, builder, flags: Tuple[InputSource, ...]):
            """A candidate-feed loader: retried, then quarantined."""
            try:
                return guard.call(site, builder)
            except (SourceError, ResilienceError):
                if config.fail_fast:
                    raise
                metrics = get_metrics()
                metrics.incr("resilience.quarantined")
                for flag in flags:
                    degraded.add(flag)
                    metrics.incr(f"resilience.quarantined.{flag.name.lower()}")
                failed_sites.append(site)
                return QuarantinedSource(site)

        if prefix2as is None:
            prefix2as = build(
                "source.prefix2as", lambda: Prefix2ASTable.from_world(world)
            )
        whois = build("source.whois", lambda: WhoisDatabase.from_world(world, noise))
        freedomhouse = build_optional(
            "source.freedomhouse",
            lambda: FreedomHouseReports.from_world(world, noise),
            (InputSource.WIKIPEDIA_FH,),
        )
        # CTI cascades with geolocation: the transit-influence metric
        # cannot attribute addresses to countries without it.
        geolocation = build_optional(
            "source.geolocation",
            lambda: GeolocationService.from_world(world, noise),
            (InputSource.GEOLOCATION, InputSource.CTI),
        )
        eyeballs = build_optional(
            "source.eyeballs",
            lambda: EyeballDataset.from_world(world, noise),
            (InputSource.EYEBALLS,),
        )
        peeringdb = build(
            "source.peeringdb",
            lambda: PeeringDBDataset.from_world(world, noise),
        )
        as2org = build(
            "source.as2org",
            lambda: As2OrgDataset.from_world(world, whois, noise),
        )
        orbis = build_optional(
            "source.orbis",
            lambda: OrbisDatabase.from_world(world, noise),
            (InputSource.ORBIS,),
        )
        wikipedia = build_optional(
            "source.wikipedia",
            lambda: WikipediaArticles.from_world(world, noise),
            (InputSource.WIKIPEDIA_FH,),
        )
        # The confirmation corpus folds Freedom House reports in when they
        # are available; a degraded FH source thins the corpus (documents
        # are lost) but must not take confirmation down with it.
        fh_for_corpus = (
            None if isinstance(freedomhouse, QuarantinedSource) else freedomhouse
        )
        corpus = build(
            "source.corpus",
            lambda: ConfirmationCorpus.from_world(world, fh_for_corpus, noise),
        )
        asrank = build("source.asrank", lambda: AsRankDataset.from_world(world))
        return cls(
            prefix2as=prefix2as,
            geolocation=geolocation,
            eyeballs=eyeballs,
            whois=whois,
            peeringdb=peeringdb,
            as2org=as2org,
            orbis=orbis,
            freedomhouse=freedomhouse,
            wikipedia=wikipedia,
            corpus=corpus,
            collector=world.collector,
            cti_eligible_ccs=tuple(sorted(world.transit_dominant_ccs)),
            asrank=asrank,
            # Both what should be built (config + noise) and what was
            # built: a cache entry written by a different code revision —
            # same config, different generated world — can never collide.
            fingerprint=stable_digest(
                {
                    "config": world_fingerprint(world.config, noise),
                    "world": world.content_digest(),
                }
            ),
            degraded=frozenset(degraded),
            degraded_sites=tuple(failed_sites),
        )


@dataclass
class CompanyWork:
    """One company queued for stage-2 verification."""

    canonical_name: str
    sources: Set[InputSource] = field(default_factory=set)
    seed_asns: Set[int] = field(default_factory=set)
    cc_votes: Counter = field(default_factory=Counter)

    @property
    def cc_hint(self) -> Optional[str]:
        if not self.cc_votes:
            return None
        return self.cc_votes.most_common(1)[0][0]


@dataclass
class PipelineResult:
    """Dataset + full diagnostics of one pipeline run."""

    dataset: StateOwnedDataset
    candidates: CandidateSet
    cti_selection: Optional[CTISelection]
    verdicts: Dict[str, ConfirmationVerdict]
    work: Dict[str, CompanyWork]
    confirmed_keys: Set[str]
    minority_keys: Set[str]
    excluded: Dict[str, str]             # key -> exclusion reason text
    unconfirmed_keys: Set[str]           # candidates with no usable evidence
    discoveries: List[DiscoveredCompany]
    asn_inputs: Dict[int, FrozenSet[InputSource]]
    org_inputs: Dict[str, FrozenSet[InputSource]]   # org_id -> sources
    stats: Dict[str, float]
    #: Candidate sources quarantined anywhere along the run (input build,
    #: run-time query, or harvest); empty for a clean run.
    degraded_sources: FrozenSet[InputSource] = frozenset()

    def state_owned_asns(self) -> FrozenSet[int]:
        return self.dataset.all_asns()


def _investigate_task(state: Dict[str, object], company_name: str) -> Tuple[
    ConfirmationVerdict,
    Dict[str, ConfirmationVerdict],
    Dict[str, Tuple[str, ...]],
    Set[str],
]:
    """Stage-2 work unit: investigate one company.

    ``state`` carries the analyst: shared by reference on the serial and
    thread backends (so memoized ownership chains are reused exactly as in
    the serial loop), shipped once per worker on the process backend.  The
    returned minority-log snapshot lets the coordinator merge §7 minority
    findings from worker-local analysts deterministically; the footprint
    delta (per-verdict corpus-query footprints plus volatile keys recorded
    by this investigation) lets it merge the invalidation metadata the
    incremental maintain loop seeds the next snapshot from.
    """
    analyst: OwnershipAnalyst = state["analyst"]  # type: ignore[assignment]
    mark = analyst.footprint_mark()
    verdict = analyst.investigate(company_name)
    footprints, volatile = analyst.footprint_delta(mark)
    return verdict, dict(analyst.minority_log), footprints, volatile


def _decode_scores(payload: Dict[str, Dict[str, float]]) -> Dict[str, Dict[int, float]]:
    """Cached CTI score maps back to int-keyed form (JSON stringifies keys)."""
    return {
        cc: {int(asn): score for asn, score in scores.items()}
        for cc, scores in payload.items()
    }


class StateOwnershipPipeline:
    """Orchestrates stages 1-3 over a fixed set of inputs."""

    def __init__(
        self,
        inputs: PipelineInputs,
        config: Optional[PipelineConfig] = None,
        parallel: Optional[ParallelConfig] = None,
        resilience: Optional[ResilienceConfig] = None,
        context: Optional[ExecutionContext] = None,
        cti_computer: Optional[CTIComputer] = None,
        analyst: Optional[OwnershipAnalyst] = None,
    ) -> None:
        self._inputs = inputs
        self._config = config or PipelineConfig()
        self._parallel = parallel or ParallelConfig()
        self._resilience = resilience or ResilienceConfig()
        self._context = context
        self._whois_memo: Dict[int, object] = {}
        # Incremental-maintain injection points: a CTI computer carrying
        # still-valid transit terms/scores, and an analyst pre-seeded with
        # verdicts whose corpus-query footprints survived the delta.  When
        # a computer is injected the whole-run "cti" cache section is
        # bypassed — the injector owns finer-grained reuse.
        self._cti_computer = cti_computer
        self._analyst = analyst

    # -- public API --------------------------------------------------------------
    def run(self, skip_sources: Iterable[InputSource] = ()) -> PipelineResult:
        """Run the full pipeline.

        ``skip_sources`` disables candidate sources for ablation studies
        (the A1 benchmark); stage 2/3 behaviour is unchanged.

        Candidate sources that fail at run time (or arrived quarantined
        from :meth:`PipelineInputs.from_world`) are degraded: they
        contribute nothing, the run completes, and the output dataset
        carries their codes in ``degraded_sources``.  A degraded run is
        byte-identical to one that listed the same sources in
        ``skip_sources``.  With ``resilience.fail_fast`` any source
        failure aborts the run with :class:`PipelineError` instead.

        An injected execution context (shared with world generation by the
        CLI so one worker pool serves the whole run) is left open for the
        owner to close; a context created here is closed when the run ends.
        """
        context = self._context
        if context is not None:
            return self._run(context, skip_sources)
        with ExecutionContext(
            jobs=self._parallel.jobs, backend=self._parallel.backend
        ) as context:
            return self._run(context, skip_sources)

    def _run(
        self,
        context: ExecutionContext,
        skip_sources: Iterable[InputSource] = (),
    ) -> PipelineResult:
        started = time.time()
        inputs = self._inputs
        config = self._config
        resilience = self._resilience
        guard = SourceGuard.from_config(resilience)
        degraded: Set[InputSource] = set(inputs.degraded)
        if degraded and resilience.fail_fast:
            raise PipelineError(
                "inputs arrived degraded ("
                + ", ".join(sorted(s.name for s in degraded))
                + ") and fail_fast is set"
            )
        skip = set(skip_sources) | degraded
        self._whois_memo = {}
        cache = (
            ResultCache(self._parallel.cache_dir) if self._parallel.cache_dir else None
        )
        get_metrics().gauge("parallel.jobs", context.jobs)

        def quarantine(source: InputSource) -> None:
            """Fold a run-time source failure into the degradation state."""
            if resilience.fail_fast:
                raise PipelineError(f"source {source.name} failed and fail_fast is set")
            metrics = get_metrics()
            metrics.incr("resilience.quarantined")
            metrics.incr(f"resilience.quarantined.{source.name.lower()}")
            degraded.add(source)
            skip.add(source)

        # ---- stage 1: candidates ------------------------------------------------
        cti_selection: Optional[CTISelection] = None
        with span("pipeline.candidates") as sp_candidates:
            if InputSource.CTI not in skip:
                try:
                    cti_selection = guard.call(
                        "source.cti",
                        lambda: self._compute_cti(inputs, config, context, cache),
                    )
                except (SourceError, ResilienceError):
                    quarantine(InputSource.CTI)
            orbis_companies: List[Tuple[str, str]] = []
            if InputSource.ORBIS not in skip:
                try:
                    orbis_companies = guard.call(
                        "source.orbis",
                        lambda: [
                            (r.company_name, r.cc)
                            for r in inputs.orbis.state_owned_telcos()
                        ],
                    )
                except (SourceError, ResilienceError):
                    quarantine(InputSource.ORBIS)
            wiki_fh: List[Tuple[str, str]] = []
            if InputSource.WIKIPEDIA_FH not in skip:
                # Wikipedia and Freedom House feed one joint candidate
                # source (code W): if either query fails, the whole feed is
                # quarantined so the provenance flag is unambiguous.
                try:
                    wiki_fh = guard.call(
                        "source.wikipedia",
                        lambda: list(inputs.wikipedia.state_owned_company_names()),
                    )
                    wiki_fh = wiki_fh + guard.call(
                        "source.freedomhouse",
                        lambda: list(inputs.freedomhouse.state_owned_company_names()),
                    )
                except (SourceError, ResilienceError):
                    wiki_fh = []
                    quarantine(InputSource.WIKIPEDIA_FH)
            candidates = harvest_candidates(
                table=inputs.prefix2as,
                geolocation=inputs.geolocation,
                eyeballs=inputs.eyeballs,
                cti_selection=cti_selection,
                orbis_companies=orbis_companies,
                wiki_fh_companies=wiki_fh,
                config=config,
                skip=frozenset(skip),
                guard=guard,
            )
            for source in candidates.degraded:
                quarantine(source)
            for source in InputSource:
                harvested = len(candidates.asns_from(source))
                if harvested:
                    sp_candidates.incr(f"asns.{source.name.lower()}", harvested)
            sp_candidates.incr("asns_total", len(candidates.asn_sources))
            sp_candidates.incr("companies", len(candidates.companies))

        # ---- mapping: candidates -> company worklist ------------------------------
        mapper = CompanyMapper(inputs.whois, inputs.peeringdb, inputs.corpus, config)
        work: Dict[str, CompanyWork] = {}
        unmapped_asns = 0
        with span("pipeline.mapping") as sp_mapping:
            for asn in sorted(candidates.asn_sources):
                mapped = mapper.map_asn(asn)
                if mapped is None:
                    unmapped_asns += 1
                    continue
                key = normalize_name(mapped.company_name)
                item = work.setdefault(
                    key, CompanyWork(canonical_name=mapped.company_name)
                )
                item.sources |= candidates.asn_sources[asn]
                item.seed_asns.add(asn)
                if mapped.cc:
                    item.cc_votes[mapped.cc] += 1
            for company in candidates.companies:
                canonical = self._canonicalize(company.name, mapper)
                key = normalize_name(canonical)
                item = work.setdefault(key, CompanyWork(canonical_name=canonical))
                item.sources.add(company.source)
                if company.cc:
                    item.cc_votes[company.cc] += 1
            candidates.stats["candidate_organizations"] = (
                inputs.as2org.distinct_org_count(candidates.asn_sources)
            )
            candidates.stats["unmapped_asns"] = unmapped_asns
            candidates.stats["companies_to_verify"] = len(work)
            sp_mapping.incr("unmapped_asns", unmapped_asns)
            sp_mapping.incr("companies_to_verify", len(work))

        # ---- stage 2: confirmation -------------------------------------------------
        analyst = self._analyst or OwnershipAnalyst(inputs.corpus, config)
        verdicts: Dict[str, ConfirmationVerdict] = {}
        confirmed: Dict[str, ConfirmationVerdict] = {}
        minority: Set[str] = set()
        excluded: Dict[str, str] = {}
        unconfirmed: Set[str] = set()
        with span("pipeline.confirmation") as sp_confirm:
            # Pre-exclusion is a cheap registry lookup; the investigations
            # behind the surviving worklist are independent per company, so
            # they fan out across the execution context.  Results come back
            # in worklist (sorted-key) order and are folded in serially, so
            # verdict classification and minority merging are deterministic
            # for every backend.
            queue: List[Tuple[str, CompanyWork]] = []
            for key in sorted(work):
                item = work[key]
                reason = self._pre_exclusion(item, inputs.peeringdb)
                if reason is not None:
                    excluded[key] = reason.value
                    sp_confirm.incr(f"excluded.{reason.name.lower()}")
                    continue
                queue.append((key, item))
            results = context.map_ordered(
                _investigate_task,
                [item.canonical_name for _, item in queue],
                state={"analyst": analyst},
                label="confirmation",
            )
            for (key, item), (
                verdict,
                worker_minority,
                worker_footprints,
                worker_volatile,
            ) in zip(queue, results):
                analyst.absorb(
                    verdict,
                    worker_minority,
                    footprints=worker_footprints,
                    volatile=worker_volatile,
                )
                verdicts[key] = verdict
                sp_confirm.incr(f"verdict.{verdict.status.name.lower()}")
                if verdict.status is ConfirmationStatus.CONFIRMED:
                    confirmed[key] = verdict
                elif verdict.status is ConfirmationStatus.MINORITY:
                    minority.add(key)
                elif verdict.status is ConfirmationStatus.EXCLUDED_SUBNATIONAL:
                    excluded[key] = ExclusionReason.SUBNATIONAL.value
                else:
                    unconfirmed.add(key)

        # ---- stage 2b: parent / subsidiary discovery ---------------------------------
        with span("pipeline.discovery") as sp_discovery:
            explorer = SubsidiaryExplorer(analyst)
            discoveries = explorer.explore(
                (verdict.company_name, verdict) for verdict in confirmed.values()
            )
            parent_discovered: Set[str] = set()
            for discovery in discoveries:
                key = normalize_name(discovery.company_name)
                if key in confirmed:
                    continue
                verdicts[key] = discovery.verdict
                confirmed[key] = discovery.verdict
                sp_discovery.incr(f"discovered.{discovery.relationship}")
                if discovery.relationship == "parent":
                    parent_discovered.add(key)
                parent_key = normalize_name(discovery.discovered_via)
                item = work.setdefault(
                    key, CompanyWork(canonical_name=discovery.company_name)
                )
                if parent_key in work:
                    item.sources |= work[parent_key].sources
            minority |= {key for key in analyst.minority_log if key not in confirmed}

        # ---- stage 3: expansion + dataset assembly ----------------------------------
        with span("pipeline.expansion") as sp_expand:
            dataset, asn_inputs, org_inputs = self._assemble(
                confirmed,
                work,
                mapper,
                candidates,
                parent_discovered,
                degraded=frozenset(degraded),
            )
            sp_expand.incr("organizations", len(dataset))
            sp_expand.incr("asns_expanded", len(dataset.all_asns()))
            sp_expand.incr(
                "foreign_subsidiary_asns", len(dataset.foreign_subsidiary_asns())
            )

        stats = dict(candidates.stats)
        stats.update(
            {
                "confirmed_companies": len(confirmed),
                "minority_companies": len(minority),
                "excluded_companies": len(excluded),
                "unconfirmed_companies": len(unconfirmed),
                "discovered_companies": len(discoveries),
                "state_owned_asns": len(dataset.all_asns()),
                "foreign_subsidiary_asns": len(dataset.foreign_subsidiary_asns()),
                "degraded_sources": len(degraded),
                "runtime_seconds": round(time.time() - started, 3),
            }
        )
        return PipelineResult(
            dataset=dataset,
            candidates=candidates,
            cti_selection=cti_selection,
            verdicts=verdicts,
            work=work,
            confirmed_keys=set(confirmed),
            minority_keys=minority,
            excluded=excluded,
            unconfirmed_keys=unconfirmed,
            discoveries=discoveries,
            asn_inputs=asn_inputs,
            org_inputs=org_inputs,
            stats=stats,
            degraded_sources=frozenset(degraded),
        )

    # -- helpers -----------------------------------------------------------------
    def _compute_cti(
        self,
        inputs: PipelineInputs,
        config: PipelineConfig,
        context: ExecutionContext,
        cache: Optional[ResultCache],
    ) -> CTISelection:
        """The CTI stage: score transit influence and select candidates.

        Runs under the ``source.cti`` guard site so a mid-computation
        failure (including a quarantined geolocation dependency) degrades
        the CTI feed instead of sinking the run.
        """
        with span("cti") as sp_cti:
            metrics = get_metrics()
            computed_before = metrics.counter("cti.countries_computed")
            pruned_before = metrics.counter("cti.origins_pruned")
            injected = self._cti_computer is not None
            cti = self._cti_computer or CTIComputer(
                inputs.prefix2as, inputs.geolocation, inputs.collector
            )
            cache_key = None if injected else self._cti_cache_key(cti)
            cached = (
                cache.get("cti", cache_key)
                if cache is not None and cache_key is not None
                else None
            )
            if cached is not None:
                cti.preload_scores(_decode_scores(cached.get("scores", {})))
                sp_cti.set("cache", "hit")
            cti_selection = select_cti_candidates(
                cti,
                inputs.cti_eligible_ccs,
                top_k=config.cti_top_k,
                min_score=config.cti_min_score,
                context=context,
            )
            if cache is not None and cache_key is not None and cached is None:
                cache.put(
                    "cti",
                    cache_key,
                    {
                        "scores": cti.computed_scores(),
                        "tree_stats": cti.transit_term_stats(),
                    },
                )
                sp_cti.set("cache", "miss")
            sp_cti.incr(
                "countries_computed",
                metrics.counter("cti.countries_computed") - computed_before,
            )
            sp_cti.incr(
                "origins_pruned",
                metrics.counter("cti.origins_pruned") - pruned_before,
            )
            sp_cti.incr("asns_selected", len(cti_selection.asns))
        return cti_selection

    @staticmethod
    def _canonicalize(name: str, mapper: CompanyMapper) -> str:
        """Resolve a raw company-candidate name to its corpus identity."""
        docs = mapper.corpus.find_documents(name)
        if docs:
            return docs[0].subject_names[0]
        return name

    def _cti_cache_key(self, cti: CTIComputer) -> Optional[str]:
        """Persistent-cache key for the CTI score maps of this run.

        Keys only what the score maps depend on: the input fingerprint and
        the scoring knobs.  Selection knobs (``top_k``, ``min_score``) are
        excluded — selection is a cheap recomputation over cached scores.
        Returns None (caching disabled) for un-fingerprinted inputs.
        """
        if self._inputs.fingerprint is None:
            return None
        return stable_digest(
            {
                "fingerprint": self._inputs.fingerprint,
                "eligible": sorted(self._inputs.cti_eligible_ccs),
                "min_address_fraction": cti.min_address_fraction,
            }
        )

    def _whois_lookup(self, asn: int):
        """Memoized WHOIS lookup: the assembly stage queries the same ASNs
        from several helpers; the registry view is immutable within a run."""
        if asn in self._whois_memo:
            return self._whois_memo[asn]
        record = self._inputs.whois.lookup(asn)
        self._whois_memo[asn] = record
        return record

    def _pre_exclusion(
        self, item: CompanyWork, peeringdb: PeeringDBDataset
    ) -> Optional[ExclusionReason]:
        info_type = None
        for asn in sorted(item.seed_asns):
            record = peeringdb.lookup(asn)
            if record is not None:
                info_type = record.info_type
                break
        return classify_exclusion(item.canonical_name, info_type)

    def _operating_cc(
        self,
        asns: Set[int],
        item: Optional[CompanyWork],
        verdict: ConfirmationVerdict,
    ) -> Optional[str]:
        votes: Counter = Counter()
        for asn in asns:
            record = self._whois_lookup(asn)
            if record is not None:
                votes[record.cc] += 1
        if votes:
            return votes.most_common(1)[0][0]
        if item is not None and item.cc_hint:
            return item.cc_hint
        if verdict.confirming_doc is not None:
            return verdict.confirming_doc.cc
        return None

    def _conglomerate_name(
        self,
        key: str,
        confirmed: Dict[str, ConfirmationVerdict],
        memo: Dict[str, str],
        guard: Optional[Set[str]] = None,
    ) -> str:
        if key in memo:
            return memo[key]
        guard = guard or set()
        if key in guard:
            return confirmed[key].company_name
        guard.add(key)
        verdict = confirmed[key]
        name = verdict.company_name
        for parent_name, _fraction in verdict.parent_candidates:
            parent_key = normalize_name(parent_name)
            if parent_key in confirmed and parent_key != key:
                name = self._conglomerate_name(parent_key, confirmed, memo, guard)
                break
        memo[key] = name
        return name

    def _assemble(
        self,
        confirmed: Dict[str, ConfirmationVerdict],
        work: Dict[str, CompanyWork],
        mapper: CompanyMapper,
        candidates: CandidateSet,
        parent_discovered: Optional[Set[str]] = None,
        degraded: FrozenSet[InputSource] = frozenset(),
    ) -> Tuple[
        StateOwnedDataset,
        Dict[int, FrozenSet[InputSource]],
        Dict[str, FrozenSet[InputSource]],
    ]:
        parent_discovered = parent_discovered or set()
        inputs = self._inputs
        organizations: List[OrganizationRecord] = []
        asns_of_org: Dict[str, List[int]] = {}
        used_org_ids: Set[str] = set()
        asn_inputs: Dict[int, Set[InputSource]] = {}
        org_inputs: Dict[str, FrozenSet[InputSource]] = {}
        conglomerate_memo: Dict[str, str] = {}
        org_id_of_key: Dict[str, str] = {}

        # First pass: expand every confirmed company to its ASNs and decide
        # its org_id, so parent links can reference org ids in pass two.
        expanded: Dict[str, Set[int]] = {}
        claimed_asns: Set[int] = set()
        for key in sorted(confirmed):
            verdict = confirmed[key]
            item = work.get(key)
            seed = set(item.seed_asns) if item is not None else set()
            cc_hint = item.cc_hint if item is not None else None
            aliases = (
                verdict.confirming_doc.subject_names
                if verdict.confirming_doc is not None
                else ()
            )
            asns = expand_to_asns(
                verdict.company_name,
                mapper,
                inputs.as2org,
                cc=cc_hint,
                seed_asns=seed,
                aliases=aliases,
            )
            # Every organization in the output dataset operates in exactly
            # one country (foreign subsidiaries are separate legal entities
            # per target country), so prune cross-country name-collision
            # pollution: keep only ASNs registered in the org's country.
            cc_of = {}
            for asn in asns:
                record = self._whois_lookup(asn)
                if record is not None:
                    cc_of[asn] = record.cc
            if cc_of:
                votes = Counter(cc_of.values())
                preferred = (
                    cc_hint
                    if cc_hint is not None and cc_hint in votes
                    else votes.most_common(1)[0][0]
                )
                asns = {a for a in asns if cc_of.get(a) == preferred}
            # An ASN belongs to exactly one organization: first claim wins
            # (deterministic order), mirroring the dataset's 1:N org->ASN map.
            asns = {a for a in asns if a not in claimed_asns}
            claimed_asns |= asns
            expanded[key] = asns
            org_id = self._pick_org_id(key, asns, used_org_ids)
            used_org_ids.add(org_id)
            org_id_of_key[key] = org_id

        for key in sorted(confirmed):
            verdict = confirmed[key]
            item = work.get(key)
            asns = expanded[key]
            if key in parent_discovered and not asns:
                # A corporate parent found while walking ownership chains
                # that runs no network of its own: a holding, not an
                # Internet operator.  It stays out of the dataset (its name
                # still surfaces through conglomerate_name).
                continue
            ownership_cc = verdict.controlling_cc
            if ownership_cc is None:
                raise PipelineError(
                    f"confirmed company {verdict.company_name!r} has no "
                    f"controlling country"
                )
            operating_cc = self._operating_cc(asns, item, verdict)
            # A foreign-subsidiary verdict needs corroboration beyond a mere
            # country-code mismatch (which can be a mapping artifact): either
            # a corporate majority parent was seen in the evidence, or the
            # confirming document itself concerns the operating country.
            doc_cc = (
                verdict.confirming_doc.cc
                if verdict.confirming_doc is not None
                else None
            )
            foreign = (
                operating_cc is not None
                and operating_cc != ownership_cc
                and (bool(verdict.parent_candidates) or doc_cc == operating_cc)
            )
            rir = self._rir_of(asns, operating_cc or ownership_cc)
            doc = verdict.confirming_doc
            sources = frozenset(item.sources) if item is not None else frozenset()
            org_id = org_id_of_key[key]
            parent_org = None
            for parent_name, _fraction in verdict.parent_candidates:
                parent_key = normalize_name(parent_name)
                if parent_key in org_id_of_key and parent_key != key:
                    parent_org = org_id_of_key[parent_key]
                    break
            notes: List[str] = []
            if not asns:
                notes.append("no ASN found for this operator")
            if verdict.total_equity is None:
                notes.append("state control asserted without percentage")
            elif len(verdict.state_equity) > 1 or (
                verdict.total_equity < 0.999 and verdict.parent_candidates
            ):
                notes.append("control via aggregated/indirect holdings")
            organizations.append(
                OrganizationRecord(
                    conglomerate_name=self._conglomerate_name(
                        key, confirmed, conglomerate_memo
                    ),
                    org_id=org_id,
                    org_name=verdict.company_name,
                    ownership_cc=ownership_cc,
                    ownership_country_name=_COUNTRY_NAME.get(
                        ownership_cc, ownership_cc
                    ),
                    rir=rir,
                    source=doc.source_type.value if doc is not None else "",
                    quote=doc.quote if doc is not None else "",
                    quote_lang=doc.language if doc is not None else "",
                    url=doc.url if doc is not None else "",
                    additional_info="; ".join(notes),
                    inputs=tuple(sorted(source.value for source in sources)),
                    parent_org=parent_org,
                    target_cc=operating_cc if foreign else None,
                    target_country_name=_COUNTRY_NAME.get(operating_cc)
                    if foreign and operating_cc
                    else None,
                )
            )
            asns_of_org[org_id] = sorted(asns)
            org_inputs[org_id] = sources
            # Per-ASN provenance: most sources surface the *operator* (via a
            # flagship AS or a company name), so their credit extends to all
            # of the organization's ASNs.  CTI is the exception — the paper
            # counts its contribution per selected AS (Table 6: 15 ASes),
            # so CTI credit stays with the ASNs it actually ranked.
            company_level = sources - {InputSource.CTI}
            for asn in asns:
                contribution = set(candidates.asn_sources.get(asn, set()))
                contribution |= company_level
                asn_inputs.setdefault(asn, set()).update(contribution)

        dataset = StateOwnedDataset(
            organizations,
            asns_of_org,
            degraded_sources=tuple(sorted(s.value for s in degraded)),
        )
        return (
            dataset,
            {asn: frozenset(srcs) for asn, srcs in asn_inputs.items()},
            org_inputs,
        )

    def _pick_org_id(self, key: str, asns: Set[int], used: Set[str]) -> str:
        for asn in sorted(asns):
            org = self._inputs.as2org.org_of(asn)
            if org is not None and org not in used:
                return org
        digest = hashlib.blake2b(key.encode("utf-8"), digest_size=3).hexdigest()
        org_id = f"ORG-{digest.upper()}-X"
        suffix = 1
        while org_id in used:
            suffix += 1
            org_id = f"ORG-{digest.upper()}-X{suffix}"
        return org_id

    def _rir_of(self, asns: Set[int], fallback_cc: Optional[str]) -> str:
        for asn in sorted(asns):
            record = self._whois_lookup(asn)
            if record is not None:
                return record.rir
        if fallback_cc is not None:
            return _COUNTRY_RIR.get(fallback_cc, "")
        return ""
