"""Stage 1: candidate ASes and candidate companies (§4).

Three technical sources yield ASNs:

* **Country-level AS geolocation** — ASes originating at least 5 % of some
  country's geolocated address space;
* **APNIC eyeballs** — ASes serving at least 5 % of some country's
  estimated users;
* **CTI** — the two most influential transit ASes of each transit-dominant
  country.

Two non-technical sources yield company names to verify: Orbis's
state-owned-telco query and the Wikipedia + Freedom House harvest.

The returned :class:`CandidateSet` keeps per-candidate provenance (which
sources flagged it — the ``inputs`` field of the output dataset) and the
funnel statistics the paper reports in §4 (793 / 716 / 466 / 1043 / 93 /
1091 ASes, 1023 organizations).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Set,
    Tuple,
)

from repro.config import PipelineConfig
from repro.cti.selection import CTISelection
from repro.errors import ResilienceError, SourceError
from repro.sources.base import InputSource
from repro.sources.eyeballs import EyeballDataset
from repro.sources.geolocation import GeolocationService
from repro.sources.prefix2as import Prefix2ASTable

__all__ = ["CompanyCandidate", "CandidateSet", "harvest_candidates"]


@dataclass(frozen=True)
class CompanyCandidate:
    """A company name reported as (likely) state-owned by a source."""

    name: str
    cc: str
    source: InputSource


@dataclass
class CandidateSet:
    """Everything stage 1 hands to stage 2."""

    #: Candidate ASNs with the set of sources that selected each.
    asn_sources: Dict[int, Set[InputSource]] = field(default_factory=dict)
    #: Candidate company names from the non-technical sources.
    companies: List[CompanyCandidate] = field(default_factory=list)
    #: §4.1 funnel statistics, keyed by stat name.
    stats: Dict[str, int] = field(default_factory=dict)
    #: Per-AS, per-source detail: country that triggered selection + share.
    detail: Dict[Tuple[int, InputSource], Tuple[str, float]] = field(
        default_factory=dict
    )
    #: Technical sources that failed during harvest and were quarantined
    #: (contributed nothing); the pipeline folds these into the run's
    #: degraded-source provenance.
    degraded: Set[InputSource] = field(default_factory=set)

    def asns(self) -> FrozenSet[int]:
        return frozenset(self.asn_sources)

    def asns_from(self, source: InputSource) -> FrozenSet[int]:
        return frozenset(
            asn for asn, sources in self.asn_sources.items() if source in sources
        )

    def add_asn(
        self,
        asn: int,
        source: InputSource,
        cc: str,
        share: float,
    ) -> None:
        self.asn_sources.setdefault(asn, set()).add(source)
        key = (asn, source)
        # Keep the strongest trigger for reporting.
        if key not in self.detail or share > self.detail[key][1]:
            self.detail[key] = (cc, share)


def _geolocation_candidates(
    candidates: CandidateSet,
    table: Prefix2ASTable,
    geolocation: GeolocationService,
    threshold: float,
) -> None:
    triplets = geolocation.country_asn_addresses(table)
    country_totals: Dict[str, int] = {}
    for (_, cc), count in triplets.items():
        country_totals[cc] = country_totals.get(cc, 0) + count
    for (asn, cc), count in triplets.items():
        total = country_totals.get(cc, 0)
        if total == 0:
            continue
        share = count / total
        if share >= threshold:
            candidates.add_asn(asn, InputSource.GEOLOCATION, cc, share)


def _eyeball_candidates(
    candidates: CandidateSet,
    eyeballs: EyeballDataset,
    threshold: float,
) -> None:
    seen_countries: Set[str] = set()
    for asn in eyeballs.covered_asns():
        cc = eyeballs.country_of(asn)
        if cc is not None:
            seen_countries.add(cc)
    for cc in sorted(seen_countries):
        for asn, share in eyeballs.country_shares(cc).items():
            if share >= threshold:
                candidates.add_asn(asn, InputSource.EYEBALLS, cc, share)


def _cti_candidates(candidates: CandidateSet, selection: CTISelection) -> None:
    for asn in sorted(selection.asns):
        for cc, _rank, score in selection.provenance.get(asn, ()):
            candidates.add_asn(asn, InputSource.CTI, cc, score)


def _harvest_guarded(
    candidates: CandidateSet,
    source: InputSource,
    site: str,
    harvester: Callable[[CandidateSet], None],
    guard,
) -> None:
    """Run one technical-source harvest, quarantining it on failure.

    The harvester fills a scratch set that is merged only on success, so a
    source that fails mid-harvest contributes *nothing* — the surviving
    candidate set is byte-identical to a run that skipped the source.
    """
    if guard is None:
        harvester(candidates)
        return
    scratch = CandidateSet()
    try:
        guard.call(site, lambda: harvester(scratch))
    except (SourceError, ResilienceError):
        candidates.degraded.add(source)
        return
    for (asn, src), (cc, share) in scratch.detail.items():
        candidates.add_asn(asn, src, cc, share)


def harvest_candidates(
    table: Prefix2ASTable,
    geolocation: GeolocationService,
    eyeballs: EyeballDataset,
    cti_selection: Optional[CTISelection],
    orbis_companies: Iterable[Tuple[str, str]],
    wiki_fh_companies: Iterable[Tuple[str, str]],
    config: Optional[PipelineConfig] = None,
    skip: FrozenSet[InputSource] = frozenset(),
    guard=None,
) -> CandidateSet:
    """Run all five input sources and assemble the candidate set.

    ``orbis_companies`` and ``wiki_fh_companies`` are (name, cc) iterables —
    the callers extract them from :class:`~repro.sources.orbis.OrbisDatabase`
    and the Wikipedia/Freedom House sources.

    Sources in ``skip`` (ablation studies, pre-degraded inputs) are not
    harvested at all.  When a :class:`~repro.resilience.SourceGuard` is
    passed, each technical source is harvested under retry/circuit-breaker
    protection and quarantined into ``CandidateSet.degraded`` on failure
    instead of sinking the run.
    """
    config = config or PipelineConfig()
    candidates = CandidateSet()
    threshold = config.candidate_share_threshold

    if InputSource.GEOLOCATION not in skip:
        _harvest_guarded(
            candidates,
            InputSource.GEOLOCATION,
            "source.geolocation",
            lambda cs: _geolocation_candidates(cs, table, geolocation, threshold),
            guard,
        )
    geo_asns = candidates.asns_from(InputSource.GEOLOCATION)

    if InputSource.EYEBALLS not in skip:
        _harvest_guarded(
            candidates,
            InputSource.EYEBALLS,
            "source.eyeballs",
            lambda cs: _eyeball_candidates(cs, eyeballs, threshold),
            guard,
        )
    eyeball_asns = candidates.asns_from(InputSource.EYEBALLS)

    if cti_selection is not None and InputSource.CTI not in skip:
        _cti_candidates(candidates, cti_selection)
    cti_asns = candidates.asns_from(InputSource.CTI)

    seen_names: Set[Tuple[str, str, InputSource]] = set()
    for name, cc in orbis_companies:
        key = (name.lower(), cc, InputSource.ORBIS)
        if key not in seen_names:
            seen_names.add(key)
            candidates.companies.append(
                CompanyCandidate(name=name, cc=cc, source=InputSource.ORBIS)
            )
    for name, cc in wiki_fh_companies:
        key = (name.lower(), cc, InputSource.WIKIPEDIA_FH)
        if key not in seen_names:
            seen_names.add(key)
            candidates.companies.append(
                CompanyCandidate(name=name, cc=cc, source=InputSource.WIKIPEDIA_FH)
            )

    candidates.stats = {
        "geolocation_asns": len(geo_asns),
        "eyeball_asns": len(eyeball_asns),
        "geo_eyeball_intersection": len(geo_asns & eyeball_asns),
        "geo_eyeball_union": len(geo_asns | eyeball_asns),
        "cti_asns": len(cti_asns),
        "total_asns": len(candidates.asn_sources),
        "orbis_companies": sum(
            1 for c in candidates.companies if c.source is InputSource.ORBIS
        ),
        "wiki_fh_companies": sum(
            1 for c in candidates.companies if c.source is InputSource.WIKIPEDIA_FH
        ),
    }
    return candidates
