"""Scoring a pipeline run against the world's ground truth.

The paper validated its dataset with regional experts (LACNIC + France) who
found zero errors in the slices they could check (§7).  With a synthetic
world we can do better: exact precision/recall at both the ASN and the
company level, per region, plus the specific false positives/negatives for
debugging the process.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Set, Tuple

from repro.world.countries import COUNTRIES

__all__ = ["ValidationReport", "validate_against_world"]

_REGION_OF = {c.cc: c.region for c in COUNTRIES}
_RIR_OF = {c.cc: c.rir for c in COUNTRIES}


def _prf(tp: int, fp: int, fn: int) -> Tuple[float, float, float]:
    precision = tp / (tp + fp) if tp + fp else 0.0
    recall = tp / (tp + fn) if tp + fn else 0.0
    f1 = 2 * precision * recall / (precision + recall) if precision + recall else 0.0
    return precision, recall, f1


@dataclass
class ValidationReport:
    """ASN-level and company-level scores of a pipeline run."""

    asn_true_positives: FrozenSet[int]
    asn_false_positives: FrozenSet[int]
    asn_false_negatives: FrozenSet[int]
    company_true_positives: FrozenSet[str]
    company_false_positives: FrozenSet[str]
    company_false_negatives: FrozenSet[str]
    per_region: Dict[str, Tuple[float, float]] = field(default_factory=dict)
    per_rir: Dict[str, Tuple[float, float]] = field(default_factory=dict)

    @property
    def asn_precision(self) -> float:
        return _prf(
            len(self.asn_true_positives),
            len(self.asn_false_positives),
            len(self.asn_false_negatives),
        )[0]

    @property
    def asn_recall(self) -> float:
        return _prf(
            len(self.asn_true_positives),
            len(self.asn_false_positives),
            len(self.asn_false_negatives),
        )[1]

    @property
    def asn_f1(self) -> float:
        return _prf(
            len(self.asn_true_positives),
            len(self.asn_false_positives),
            len(self.asn_false_negatives),
        )[2]

    @property
    def company_precision(self) -> float:
        return _prf(
            len(self.company_true_positives),
            len(self.company_false_positives),
            len(self.company_false_negatives),
        )[0]

    @property
    def company_recall(self) -> float:
        return _prf(
            len(self.company_true_positives),
            len(self.company_false_positives),
            len(self.company_false_negatives),
        )[1]

    def as_text(self) -> str:
        lines = [
            "Validation against ground truth",
            "-" * 40,
            f"ASN    precision {self.asn_precision:6.3f}  "
            f"recall {self.asn_recall:6.3f}  f1 {self.asn_f1:6.3f}",
            f"       TP {len(self.asn_true_positives):5d}  "
            f"FP {len(self.asn_false_positives):5d}  "
            f"FN {len(self.asn_false_negatives):5d}",
            f"Company precision {self.company_precision:6.3f}  "
            f"recall {self.company_recall:6.3f}",
            "Per-region (precision, recall):",
        ]
        for region in sorted(self.per_region):
            precision, recall = self.per_region[region]
            lines.append(f"  {region:<10} {precision:6.3f}  {recall:6.3f}")
        return "\n".join(lines)


def validate_against_world(result, world) -> ValidationReport:
    """Score a :class:`~repro.core.pipeline.PipelineResult` against truth."""
    predicted_asns: Set[int] = set(result.dataset.all_asns())
    truth_asns: Set[int] = set(world.ground_truth_asns())
    tp = predicted_asns & truth_asns
    fp = predicted_asns - truth_asns
    fn = truth_asns - predicted_asns

    # Company level: compare by operator entity via ASN attribution where
    # possible, falling back to name comparison for ASN-less records.
    truth_ops = {gto.operator.entity_id: gto for gto in world.ground_truth()}
    operator_of_asn = {
        asn: record.operator_id for asn, record in world.asn_records.items()
    }
    predicted_ops: Set[str] = set()
    for asn in predicted_asns:
        operator_id = operator_of_asn.get(asn)
        if operator_id is not None:
            predicted_ops.add(operator_id)
    company_tp = frozenset(predicted_ops & set(truth_ops))
    company_fp = frozenset(predicted_ops - set(truth_ops))
    company_fn = frozenset(set(truth_ops) - predicted_ops)

    per_region: Dict[str, Tuple[float, float]] = {}
    per_rir: Dict[str, Tuple[float, float]] = {}
    cc_of_asn = {asn: record.cc for asn, record in world.asn_records.items()}

    def _grouped(group_of_cc: Dict[str, str]) -> Dict[str, Tuple[float, float]]:
        grouped: Dict[str, Tuple[Set[int], Set[int], Set[int]]] = {}
        for asn in tp | fp | fn:
            group = group_of_cc.get(cc_of_asn.get(asn, ""), "?")
            bucket = grouped.setdefault(group, (set(), set(), set()))
            if asn in tp:
                bucket[0].add(asn)
            elif asn in fp:
                bucket[1].add(asn)
            else:
                bucket[2].add(asn)
        return {
            group: _prf(len(b[0]), len(b[1]), len(b[2]))[:2]
            for group, b in grouped.items()
        }

    per_region = _grouped(_REGION_OF)
    per_rir = _grouped(_RIR_OF)

    return ValidationReport(
        asn_true_positives=frozenset(tp),
        asn_false_positives=frozenset(fp),
        asn_false_negatives=frozenset(fn),
        company_true_positives=company_tp,
        company_false_positives=company_fp,
        company_false_negatives=company_fn,
        per_region=per_region,
        per_rir=per_rir,
    )
