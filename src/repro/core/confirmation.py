"""Stage 2: ownership confirmation (§5).

:class:`OwnershipAnalyst` codifies the paper's manual verification: given a
company name, it retrieves the confirmation documents, reads the shareholder
claims, and decides whether a *federal-level* government holds at least 50 %
of the equity — chasing indirect chains (state funds, holding companies,
corporate parents) exactly the way the authors did by hand:

* a claim naming a government directly contributes its fraction;
* a claim naming another entity triggers a recursive investigation of that
  entity; if the entity turns out to be state-controlled, its **full stake**
  counts toward the controlling government (control-chain semantics — the
  Telekom Malaysia fund-aggregation case);
* authoritative sources that assert state ownership without a percentage
  (Freedom House, World Bank, ITU) confirm on their own, since the paper
  found them reliable;
* subnational owners and restricted-sector operators are flagged for
  exclusion (§5.3);
* sub-threshold stakes are logged as minority participation (§7).
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.config import PipelineConfig
from repro.sources.documents import ConfirmationCorpus, Document, SourceType
from repro.text.normalize import normalize_name

__all__ = [
    "ExclusionReason",
    "ConfirmationStatus",
    "ConfirmationVerdict",
    "OwnershipAnalyst",
    "classify_exclusion",
]


class ExclusionReason(enum.Enum):
    """Why an otherwise state-funded organization is excluded (§5.3)."""

    SUBNATIONAL = "subnational government owner"
    ACADEMIC = "academic / research & education network"
    GOVNET = "government bureaucratic network"
    NIC = "Internet administrative organization"


_EXCLUSION_KEYWORDS: Tuple[Tuple[str, ExclusionReason], ...] = (
    ("research and education", ExclusionReason.ACADEMIC),
    ("university", ExclusionReason.ACADEMIC),
    ("academic", ExclusionReason.ACADEMIC),
    ("government network", ExclusionReason.GOVNET),
    ("ministry", ExclusionReason.GOVNET),
    ("network information centre", ExclusionReason.NIC),
    ("network information center", ExclusionReason.NIC),
    ("regional telecom", ExclusionReason.SUBNATIONAL),
    ("province of", ExclusionReason.SUBNATIONAL),
    ("municipal", ExclusionReason.SUBNATIONAL),
)

_PDB_TYPE_EXCLUSIONS = {
    "Educational/Research": ExclusionReason.ACADEMIC,
    "Government": ExclusionReason.GOVNET,
}


def classify_exclusion(
    company_name: str, pdb_info_type: Optional[str] = None
) -> Optional[ExclusionReason]:
    """Keyword/registry classification of excluded organization types.

    Mirrors the paper's filters: the organization's own naming and its
    self-declared PeeringDB network type identify academic backbones,
    government office networks, NICs and subnational operators.
    """
    normalized = normalize_name(company_name)
    for keyword, reason in _EXCLUSION_KEYWORDS:
        if keyword in normalized:
            return reason
    if pdb_info_type in _PDB_TYPE_EXCLUSIONS:
        return _PDB_TYPE_EXCLUSIONS[pdb_info_type]
    return None


class ConfirmationStatus(enum.Enum):
    CONFIRMED = "confirmed state-owned"
    MINORITY = "minority state participation"
    NOT_STATE = "no state participation found"
    NO_EVIDENCE = "no authoritative evidence found"
    EXCLUDED_SUBNATIONAL = "owned by a subnational government"


@dataclass
class ConfirmationVerdict:
    """Outcome of investigating one company."""

    company_name: str
    status: ConfirmationStatus
    controlling_cc: Optional[str] = None
    total_equity: Optional[float] = None      # None: asserted w/o percentage
    confirming_doc: Optional[Document] = None
    state_equity: Dict[str, float] = field(default_factory=dict)
    parent_candidates: List[Tuple[str, float]] = field(default_factory=list)
    subsidiary_names: List[str] = field(default_factory=list)
    docs_consulted: int = 0

    @property
    def is_confirmed(self) -> bool:
        return self.status is ConfirmationStatus.CONFIRMED

    @property
    def source_type(self) -> Optional[SourceType]:
        return (
            self.confirming_doc.source_type if self.confirming_doc is not None else None
        )


#: Control threshold from the IMF definition the paper adopts (§3).
_THRESHOLD = 0.5
#: Maximum ownership-chain depth the analyst chases.
_MAX_DEPTH = 4


class OwnershipAnalyst:
    """Automated stand-in for the paper's manual verification (§5)."""

    def __init__(
        self,
        corpus: ConfirmationCorpus,
        config: Optional[PipelineConfig] = None,
    ) -> None:
        self._corpus = corpus
        self._config = config or PipelineConfig()
        self._memo: Dict[str, ConfirmationVerdict] = {}
        self._local = threading.local()
        #: Companies encountered with minority state stakes (§7 logging).
        self.minority_log: Dict[str, ConfirmationVerdict] = {}
        #: key -> every corpus query string issued while computing its
        #: verdict (own queries plus the whole recursive chain's).  This is
        #: the verdict's *footprint*: if none of these names shares a token
        #: with a changed document, the verdict is still exact against the
        #: new corpus (see repro.incremental).
        self._footprints: Dict[str, Tuple[str, ...]] = {}
        #: Keys whose verdict was computed while a cycle/depth guard fired
        #: somewhere in the open chain: such verdicts depend on the call
        #: stack, not just the corpus, and are never carried forward.
        self._volatile: Set[str] = set()
        #: Append-only log of keys as their footprints are recorded, so a
        #: worker can ship only the delta of one task back (see
        #: footprint_mark / footprint_delta).
        self._footprint_log: List[str] = []
        #: Verdicts adopted from a previous snapshot (provenance counter).
        self.seeded_verdicts = 0

    def __getstate__(self) -> dict:
        # ``threading.local`` cannot be pickled; process-pool workers get a
        # fresh (empty) recursion stack, which is exactly right — the
        # in-progress set tracks one investigation's chain, never state
        # that should survive a process boundary.
        state = self.__dict__.copy()
        del state["_local"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._local = threading.local()

    def _in_progress(self) -> Set[str]:
        """This thread's set of keys currently being investigated.

        Per-thread, so concurrent investigations on the thread backend do
        not mistake each other's open chains for cycles (which would turn a
        resolvable holder into NO_EVIDENCE nondeterministically).
        """
        stack = getattr(self._local, "in_progress", None)
        if stack is None:
            stack = set()
            self._local.in_progress = stack
        return stack

    def _collectors(self) -> List[Dict[str, object]]:
        """This thread's stack of open footprint collectors.

        One frame per in-flight investigation: ``names`` accumulates every
        corpus query issued below that frame, ``volatile`` is set when a
        cycle/depth guard fires anywhere while the frame is open.
        """
        stack = getattr(self._local, "collectors", None)
        if stack is None:
            stack = []
            self._local.collectors = stack
        return stack

    def _record_query(self, name: str) -> None:
        for frame in self._collectors():
            frame["names"].add(name)  # type: ignore[union-attr]

    def _mark_volatile(self) -> None:
        for frame in self._collectors():
            frame["volatile"] = True

    def investigate(self, company_name: str, depth: int = 0) -> ConfirmationVerdict:
        """Investigate one company, chasing ownership chains recursively."""
        key = normalize_name(company_name)
        if key in self._memo:
            # A memo hit re-executes no queries, so open collectors inherit
            # the hit's recorded footprint (and volatility) wholesale.
            footprint = self._footprints.get(key)
            if footprint:
                for frame in self._collectors():
                    frame["names"].update(footprint)  # type: ignore[union-attr]
            if key in self._volatile:
                self._mark_volatile()
            return self._memo[key]
        in_progress = self._in_progress()
        if key in in_progress or depth > _MAX_DEPTH:
            # Cycle or runaway chain: treat as unresolvable evidence.  The
            # guard verdict depends on the call stack, so everything above
            # it in the chain becomes uncarryable.
            self._mark_volatile()
            return ConfirmationVerdict(
                company_name=company_name,
                status=ConfirmationStatus.NO_EVIDENCE,
            )
        in_progress.add(key)
        collectors = self._collectors()
        frame: Dict[str, object] = {"names": set(), "volatile": False}
        collectors.append(frame)
        try:
            verdict = self._investigate_uncached(company_name, depth)
        finally:
            in_progress.discard(key)
            collectors.pop()
        names: Set[str] = frame["names"]  # type: ignore[assignment]
        for parent in collectors:
            parent["names"].update(names)  # type: ignore[union-attr]
            if frame["volatile"]:
                parent["volatile"] = True
        self._memo[key] = verdict
        self._footprints[key] = tuple(sorted(names))
        if frame["volatile"]:
            self._volatile.add(key)
        self._footprint_log.append(key)
        if verdict.status is ConfirmationStatus.MINORITY:
            self.minority_log[key] = verdict
        return verdict

    def absorb(
        self,
        verdict: ConfirmationVerdict,
        minority_log: Optional[Dict[str, ConfirmationVerdict]] = None,
        footprints: Optional[Dict[str, Tuple[str, ...]]] = None,
        volatile: Optional[Set[str]] = None,
    ) -> None:
        """Merge a verdict computed by a worker into this analyst.

        Investigation is a pure function of the (immutable) corpus, so a
        colliding key always carries an equal verdict and ``setdefault``
        merging is order-independent.  ``footprints``/``volatile`` carry
        the worker's per-key query footprints so the coordinator's analyst
        stays seedable into the next snapshot.
        """
        self._memo.setdefault(normalize_name(verdict.company_name), verdict)
        for key in sorted(minority_log or ()):
            self.minority_log.setdefault(key, minority_log[key])
        for key in sorted(footprints or ()):
            self._footprints.setdefault(key, footprints[key])
        if volatile:
            self._volatile.update(volatile)

    # -- cross-snapshot carry (repro.incremental) ---------------------------
    def footprint_mark(self) -> int:
        """Position in the footprint log before a task starts."""
        return len(self._footprint_log)

    def footprint_delta(self, mark: int) -> Tuple[Dict[str, Tuple[str, ...]], Set[str]]:
        """Footprints (and volatile keys) recorded since ``mark``.

        What a process-pool worker ships back alongside its verdict so the
        coordinator's analyst accumulates the full footprint map.
        """
        keys = self._footprint_log[mark:]
        delta = {key: self._footprints[key] for key in keys if key in self._footprints}
        volatile = {key for key in keys if key in self._volatile}
        return delta, volatile

    def carry_state(
        self,
    ) -> Tuple[
        Dict[str, ConfirmationVerdict],
        Dict[str, Tuple[str, ...]],
        Set[str],
        Dict[str, ConfirmationVerdict],
    ]:
        """Everything a successor analyst needs for :meth:`seed_memo`."""
        return (
            dict(self._memo),
            dict(self._footprints),
            set(self._volatile),
            dict(self.minority_log),
        )

    def seed_memo(
        self,
        memo: Dict[str, ConfirmationVerdict],
        footprints: Dict[str, Tuple[str, ...]],
        volatile: Set[str],
        minority_log: Dict[str, ConfirmationVerdict],
        dirty_tokens: Set[str],
    ) -> int:
        """Adopt a previous snapshot's verdicts that the delta left exact.

        An entry survives when it has a footprint, was never volatile, and
        none of its footprint queries shares a name token with a changed
        document — under those conditions every corpus answer it was built
        from is value-identical in the new corpus, so replaying the
        investigation would reproduce the verdict bit for bit.  Surviving
        MINORITY entries are replayed into the §7 minority log.  Returns
        the number of verdicts seeded.
        """
        from repro.incremental.fingerprints import tokens_overlap

        seeded = 0
        for key, verdict in memo.items():
            if key in volatile:
                continue
            footprint = footprints.get(key)
            if footprint is None:
                continue
            if tokens_overlap(footprint, dirty_tokens):
                continue
            self._memo[key] = verdict
            self._footprints[key] = footprint
            if key in minority_log:
                self.minority_log[key] = minority_log[key]
            seeded += 1
        self.seeded_verdicts = seeded
        return seeded

    # -- the actual analysis ------------------------------------------------------
    def _investigate_uncached(
        self, company_name: str, depth: int
    ) -> ConfirmationVerdict:
        self._record_query(company_name)
        docs = self._corpus.find_documents(company_name)
        if not docs:
            return ConfirmationVerdict(
                company_name=company_name,
                status=ConfirmationStatus.NO_EVIDENCE,
            )
        # Report the company under the matched document's legal name, not
        # the query string.  Chained investigations query by *normalized*
        # holder key, so without this the verdict's name would depend on
        # which query string reached the company first — an ordering
        # artifact that would also make parallel runs diverge from serial.
        if docs[0].subject_names:
            company_name = docs[0].subject_names[0]

        # Gather de-duplicated claims: one entry per holder name.
        holder_claims: Dict[
            str, Tuple[Optional[float], bool, Optional[str], bool, Document]
        ] = {}
        assertions: List[Tuple[str, Document]] = []  # (gov cc, doc) w/o %
        subsidiary_names: List[str] = []
        any_claims = False
        for doc in docs:
            subsidiary_names.extend(doc.subsidiary_names)
            for claim in doc.claims:
                any_claims = True
                holder_key = normalize_name(claim.holder_name)
                if claim.holder_is_government and claim.fraction is None:
                    if claim.holder_cc is not None:
                        assertions.append((claim.holder_cc, doc))
                    continue
                if holder_key not in holder_claims:
                    holder_claims[holder_key] = (
                        claim.fraction,
                        claim.holder_is_government,
                        claim.holder_cc,
                        claim.holder_is_subnational,
                        doc,
                    )

        state_equity: Dict[str, float] = {}
        equity_docs: Dict[str, Document] = {}
        subnational_total = 0.0
        parent_candidates: List[Tuple[str, float]] = []
        for holder_key, (fraction, is_gov, holder_cc, is_subnat, doc) in (
            holder_claims.items()
        ):
            if fraction is None:
                continue
            if is_gov and holder_cc is not None:
                state_equity[holder_cc] = state_equity.get(holder_cc, 0.0) + fraction
                equity_docs.setdefault(holder_cc, doc)
                continue
            if is_subnat:
                subnational_total += fraction
                continue
            # Corporate holder: investigate the chain.
            chained = self.investigate(holder_key, depth + 1)
            if chained.is_confirmed and chained.controlling_cc is not None:
                cc = chained.controlling_cc
                state_equity[cc] = state_equity.get(cc, 0.0) + fraction
                equity_docs.setdefault(cc, doc)
            if fraction >= _THRESHOLD:
                parent_candidates.append((holder_key, fraction))

        verdict = ConfirmationVerdict(
            company_name=company_name,
            status=ConfirmationStatus.NOT_STATE,
            state_equity=dict(state_equity),
            parent_candidates=parent_candidates,
            subsidiary_names=sorted(set(subsidiary_names)),
            docs_consulted=len(docs),
        )

        if state_equity:
            top_cc = max(state_equity, key=lambda cc: (state_equity[cc], cc))
            if state_equity[top_cc] >= _THRESHOLD - 1e-9:
                verdict.status = ConfirmationStatus.CONFIRMED
                verdict.controlling_cc = top_cc
                verdict.total_equity = round(state_equity[top_cc], 4)
                verdict.confirming_doc = equity_docs[top_cc]
                return verdict

        if assertions:
            # An authoritative source asserts state ownership without a
            # percentage; the paper accepts Freedom House / World Bank at
            # this stage.
            cc, doc = assertions[0]
            verdict.status = ConfirmationStatus.CONFIRMED
            verdict.controlling_cc = cc
            verdict.total_equity = None
            verdict.confirming_doc = doc
            return verdict

        if subnational_total >= _THRESHOLD - 1e-9:
            verdict.status = ConfirmationStatus.EXCLUDED_SUBNATIONAL
            return verdict

        if state_equity:
            verdict.status = ConfirmationStatus.MINORITY
            top_cc = max(state_equity, key=lambda cc: (state_equity[cc], cc))
            verdict.controlling_cc = None
            verdict.total_equity = round(state_equity[top_cc], 4)
            verdict.confirming_doc = equity_docs[top_cc]
            return verdict

        if not any_claims:
            verdict.status = ConfirmationStatus.NO_EVIDENCE
        return verdict
