"""Stage 3: mapping confirmed companies to ASNs and adding siblings (§6).

The company-to-AS direction reuses the §4.2 mapping machinery in reverse,
then expands every found ASN to its AS2Org sibling cluster — which is how
the paper recovers ASNs whose WHOIS names would never match the company.
"""

from __future__ import annotations

from typing import Iterable, Optional, Set

from repro.core.mapping import CompanyMapper
from repro.sources.as2org import As2OrgDataset
from repro.text.normalize import normalize_name

__all__ = ["expand_to_asns"]


def expand_to_asns(
    company_name: str,
    mapper: CompanyMapper,
    as2org: As2OrgDataset,
    cc: Optional[str] = None,
    seed_asns: Optional[Set[int]] = None,
    aliases: Iterable[str] = (),
) -> Set[int]:
    """All ASNs attributable to ``company_name``.

    ``seed_asns`` are ASNs already linked to the company during candidate
    mapping (stage 1).  ``aliases`` are alternative names of the same firm
    (typically the brand, from the confirming document's subject list) —
    PeeringDB entries are registered under brands, so searching only the
    legal name would miss them.  Everything found is expanded through
    AS2Org sibling clusters.
    """
    asns: Set[int] = set(seed_asns or ())
    searched = {normalize_name(company_name)}
    asns |= mapper.asns_of_company(company_name, cc=cc)
    for alias in aliases:
        key = normalize_name(alias)
        if key in searched or not key:
            continue
        searched.add(key)
        asns |= mapper.asns_of_company(alias, cc=cc)
    expanded: Set[int] = set()
    for asn in asns:
        expanded |= as2org.siblings_of(asn)
    return expanded
