"""Stage 2b: parent and subsidiary discovery (§5.2).

While confirming a company, the analyst sees (i) corporate majority holders
— parents worth investigating upward — and (ii) subsidiary lists in annual
reports and filings — children worth investigating downward.  Walking both
directions discovers state-owned companies that no candidate source
surfaced, most notably foreign subsidiaries.

The explorer is a breadth-first walk over company names with a visited set;
every newly confirmed company is reported together with the name of the
company whose investigation surfaced it (its discovery parent).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterable, List, Set, Tuple

from repro.core.confirmation import (
    ConfirmationStatus,
    ConfirmationVerdict,
    OwnershipAnalyst,
    classify_exclusion,
)
from repro.text.normalize import normalize_name

__all__ = ["DiscoveredCompany", "SubsidiaryExplorer"]

#: Safety bound on the discovery walk.
_MAX_DISCOVERIES = 5000


@dataclass(frozen=True)
class DiscoveredCompany:
    """A company found through parent/subsidiary links, not candidates."""

    company_name: str
    verdict: ConfirmationVerdict
    discovered_via: str      # name of the company whose docs revealed it
    relationship: str        # "subsidiary" | "parent"


class SubsidiaryExplorer:
    """Breadth-first discovery of related state-owned companies."""

    def __init__(self, analyst: OwnershipAnalyst) -> None:
        self._analyst = analyst

    def explore(
        self, confirmed: Iterable[Tuple[str, ConfirmationVerdict]]
    ) -> List[DiscoveredCompany]:
        """Walk out from already-confirmed companies.

        ``confirmed`` provides (name, verdict) pairs.  Returns newly
        *confirmed* discoveries only — investigated-but-rejected relatives
        are simply dropped, as in the paper's process.
        """
        visited: Set[str] = set()
        queue: deque = deque()
        for name, verdict in confirmed:
            visited.add(normalize_name(name))
            queue.append((name, verdict))

        discoveries: List[DiscoveredCompany] = []
        while queue and len(discoveries) < _MAX_DISCOVERIES:
            name, verdict = queue.popleft()
            for related_name, relationship in self._related_names(verdict):
                key = normalize_name(related_name)
                if key in visited:
                    continue
                visited.add(key)
                if classify_exclusion(related_name) is not None:
                    continue
                related_verdict = self._analyst.investigate(related_name)
                if related_verdict.status is not ConfirmationStatus.CONFIRMED:
                    continue
                discovery = DiscoveredCompany(
                    company_name=related_verdict.company_name,
                    verdict=related_verdict,
                    discovered_via=name,
                    relationship=relationship,
                )
                discoveries.append(discovery)
                queue.append((related_verdict.company_name, related_verdict))
        return discoveries

    @staticmethod
    def _related_names(
        verdict: ConfirmationVerdict,
    ) -> List[Tuple[str, str]]:
        related: List[Tuple[str, str]] = [
            (sub_name, "subsidiary") for sub_name in verdict.subsidiary_names
        ]
        related.extend(
            (parent_name, "parent")
            for parent_name, _fraction in verdict.parent_candidates
        )
        return related
