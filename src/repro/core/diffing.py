"""Longitudinal dataset diffing.

The paper's future-work plan is a recurring pipeline whose yearly output is
compared with the previous release (§9: "year by year is likely to be
fractional in size compared with the preceding year's aggregate list").
This module computes that comparison: which organizations/ASNs appeared,
disappeared, or changed owner between two dataset snapshots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Tuple

from repro.core.dataset import StateOwnedDataset
from repro.text.normalize import normalize_name

__all__ = ["DatasetDiff", "asn_churn_fraction", "diff_datasets"]


def asn_churn_fraction(old_asns, new_asns) -> float:
    """Fraction of the old ASN set that churned (appeared or disappeared).

    The denominator is the *old* snapshot's size, per the paper's §9
    framing ("fractional in size compared with the preceding year's
    aggregate list").  An empty (or missing) old snapshot has no base to
    churn against — there is no previous release whose entries could have
    appeared or disappeared — so it reports 0.0, not total churn: a
    bootstrap snapshot must not trip churn-alarm thresholds.
    """
    old = frozenset(old_asns)
    if not old:
        return 0.0
    changed = len(old.symmetric_difference(new_asns))
    if not changed:
        return 0.0
    return changed / len(old)


@dataclass(frozen=True)
class DatasetDiff:
    """Differences between an old and a new dataset snapshot."""

    added_orgs: Tuple[str, ...]          # org names only in the new snapshot
    removed_orgs: Tuple[str, ...]        # org names only in the old snapshot
    added_asns: FrozenSet[int]
    removed_asns: FrozenSet[int]
    #: org name -> (old owner cc, new owner cc) where ownership moved.
    owner_changes: Dict[str, Tuple[str, str]] = field(default_factory=dict)
    #: ASN count of the old snapshot — the churn_fraction denominator.
    old_asn_count: int = 0

    @property
    def churn_fraction(self) -> float:
        """Changed ASNs relative to the old snapshot's size.

        An empty old snapshot reports 0.0 (see
        :func:`asn_churn_fraction`): bootstrapping from nothing is not
        churn.
        """
        if not self.old_asn_count:
            return 0.0
        changed = len(self.added_asns | self.removed_asns)
        return changed / self.old_asn_count

    def is_empty(self) -> bool:
        return not (
            self.added_orgs or self.removed_orgs or self.added_asns
            or self.removed_asns or self.owner_changes
        )

    def summary(self) -> str:
        return (
            f"+{len(self.added_orgs)} orgs / -{len(self.removed_orgs)} orgs; "
            f"+{len(self.added_asns)} ASNs / -{len(self.removed_asns)} ASNs; "
            f"{len(self.owner_changes)} ownership changes"
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable view (the serve diff endpoint's payload)."""
        return {
            "added_orgs": list(self.added_orgs),
            "removed_orgs": list(self.removed_orgs),
            "added_asns": sorted(self.added_asns),
            "removed_asns": sorted(self.removed_asns),
            "owner_changes": {
                name: list(pair) for name, pair in self.owner_changes.items()
            },
            "old_asn_count": self.old_asn_count,
            "churn_fraction": self.churn_fraction,
            "summary": self.summary(),
        }


def diff_datasets(old: StateOwnedDataset, new: StateOwnedDataset) -> DatasetDiff:
    """Compare two snapshots by (normalized) organization name and ASN."""
    old_by_name = {normalize_name(org.org_name): org for org in old.organizations()}
    new_by_name = {normalize_name(org.org_name): org for org in new.organizations()}
    added_orgs = tuple(
        sorted(
            new_by_name[key].org_name for key in new_by_name.keys() - old_by_name.keys()
        )
    )
    removed_orgs = tuple(
        sorted(
            old_by_name[key].org_name for key in old_by_name.keys() - new_by_name.keys()
        )
    )
    owner_changes: Dict[str, Tuple[str, str]] = {}
    for key in old_by_name.keys() & new_by_name.keys():
        before, after = old_by_name[key], new_by_name[key]
        if before.ownership_cc != after.ownership_cc:
            owner_changes[after.org_name] = (before.ownership_cc, after.ownership_cc)
    return DatasetDiff(
        added_orgs=added_orgs,
        removed_orgs=removed_orgs,
        added_asns=frozenset(new.all_asns() - old.all_asns()),
        removed_asns=frozenset(old.all_asns() - new.all_asns()),
        owner_changes=owner_changes,
        old_asn_count=len(old.all_asns()),
    )
