"""AS <-> company mapping (§4.2, applied in reverse again in §6).

Forward direction (stage 1 -> 2): a candidate ASN must become a company
identity we can investigate.  The resolution ladder mirrors the paper:

1. **PeeringDB** — self-reported brand names are freshest; try first.
2. **WHOIS** — the registered legal name (may be stale or unrelated).
3. **Contact-domain search** — when neither name matches anything in the
   document corpus (our "web"), search for the WHOIS contact domain, the
   way the paper Google-searches the listed e-mail/URL domains.

Reverse direction (stage 3): a confirmed company name is resolved back to
ASNs through WHOIS/PeeringDB name search.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.config import PipelineConfig
from repro.sources.documents import ConfirmationCorpus, Document
from repro.sources.peeringdb import PeeringDBDataset
from repro.sources.whois import WhoisDatabase
from repro.text.normalize import name_similarity, name_tokens, normalize_name

__all__ = ["MappedCompany", "CompanyMapper"]


@dataclass(frozen=True)
class MappedCompany:
    """The company identity resolved for one ASN."""

    asn: int
    company_name: str       # canonical name (best document subject if any)
    cc: str                 # operating country (from the registry view)
    via: str                # "peeringdb" | "whois" | "domain"
    confidence: float       # name-match score in [0, 1]
    matched_doc: Optional[Document] = None


class CompanyMapper:
    """Resolves ASNs to companies and companies to ASNs."""

    def __init__(
        self,
        whois: WhoisDatabase,
        peeringdb: PeeringDBDataset,
        corpus: ConfirmationCorpus,
        config: Optional[PipelineConfig] = None,
    ) -> None:
        self._whois = whois
        self._peeringdb = peeringdb
        self._corpus = corpus
        self._config = config or PipelineConfig()
        self._registry_index: Optional[Dict[str, Set[int]]] = None

    @property
    def corpus(self) -> ConfirmationCorpus:
        """The confirmation-document corpus this mapper resolves against."""
        return self._corpus

    def _ensure_registry_index(self) -> Dict[str, Set[int]]:
        """Token index over WHOIS + PeeringDB names for reverse mapping.

        Very common tokens (``telecom`` appears in half the registry) are
        dropped from the index; a query's *distinctive* tokens select the
        candidate ASNs that then get properly similarity-scored.
        """
        if self._registry_index is not None:
            return self._registry_index
        index: Dict[str, Set[int]] = {}
        total = 0
        for record in self._whois:
            total += 1
            for token in name_tokens(record.org_name):
                index.setdefault(token, set()).add(record.asn)
        for record in self._peeringdb:
            for token in name_tokens(record.name):
                index.setdefault(token, set()).add(record.asn)
        cutoff = max(25, int(total * 0.03))
        self._registry_index = {
            token: asns for token, asns in index.items() if len(asns) <= cutoff
        }
        return self._registry_index

    # -- forward: ASN -> company -------------------------------------------------
    def map_asn(self, asn: int) -> Optional[MappedCompany]:
        """Resolve one ASN to a company identity (None if hopeless)."""
        whois_record = self._whois.lookup(asn)
        pdb_record = self._peeringdb.lookup(asn)
        cc = whois_record.cc if whois_record else (pdb_record.cc if pdb_record else "")
        attempts: List[Tuple[str, str]] = []
        if pdb_record is not None:
            attempts.append((pdb_record.name, "peeringdb"))
        if whois_record is not None:
            attempts.append((whois_record.org_name, "whois"))

        threshold = self._config.mapping_similarity_threshold
        best: Optional[MappedCompany] = None
        for name, via in attempts:
            docs = self._corpus.find_documents(name, min_similarity=threshold)
            if docs:
                doc = docs[0]
                # The canonical identity is always the document's *first*
                # subject (the legal name): a brand-keyed and a legal-keyed
                # query must resolve to the same company key, or one firm
                # splits into duplicate organizations.
                canonical = doc.subject_names[0]
                score = self._best_subject_score(name, doc)
                candidate = MappedCompany(
                    asn=asn,
                    company_name=canonical,
                    cc=cc,
                    via=via,
                    confidence=score,
                    matched_doc=doc,
                )
                if best is None or candidate.confidence > best.confidence:
                    best = candidate
        if best is not None:
            return best

        # Fallback: search the contact domain (the paper's Google step).
        if whois_record is not None and whois_record.email_domain:
            for doc in self._corpus.find_by_domain(whois_record.email_domain):
                if doc.subject_names:
                    return MappedCompany(
                        asn=asn,
                        company_name=doc.subject_names[0],
                        cc=cc,
                        via="domain",
                        confidence=0.6,
                        matched_doc=doc,
                    )
        if pdb_record is not None:
            for doc in self._corpus.find_by_domain(pdb_record.website):
                if doc.subject_names:
                    return MappedCompany(
                        asn=asn,
                        company_name=doc.subject_names[0],
                        cc=cc,
                        via="domain",
                        confidence=0.6,
                        matched_doc=doc,
                    )

        # No corpus identity: fall back to the raw registry name so the
        # company can at least be recorded (and fail confirmation honestly).
        if attempts:
            name, via = attempts[0]
            return MappedCompany(
                asn=asn, company_name=name, cc=cc, via=via, confidence=0.3
            )
        return None

    @staticmethod
    def _best_subject_score(query: str, doc: Document) -> float:
        """How well ``query`` matches the document's best subject name."""
        return max(name_similarity(query, name) for name in doc.subject_names)

    # -- reverse: company -> ASNs ----------------------------------------------------
    def asns_of_company(self, company_name: str, cc: Optional[str] = None) -> Set[int]:
        """All ASNs whose registry names match ``company_name``.

        ``cc`` restricts matches to one operating country when given — the
        same brand can exist in several countries (subsidiaries are mapped
        per country).
        """
        threshold = self._config.mapping_similarity_threshold
        index = self._ensure_registry_index()
        candidates: Set[int] = set()
        for token in name_tokens(company_name):
            candidates |= index.get(token, set())
        result: Set[int] = set()
        for asn in candidates:
            whois_record = self._whois.lookup(asn)
            if whois_record is not None:
                if cc is not None and whois_record.cc != cc:
                    continue
                if (name_similarity(company_name, whois_record.org_name) >= threshold):
                    result.add(asn)
                    continue
            pdb_record = self._peeringdb.lookup(asn)
            if pdb_record is not None:
                if cc is not None and pdb_record.cc != cc:
                    continue
                if name_similarity(company_name, pdb_record.name) >= threshold:
                    result.add(asn)
        return result

    def company_key(self, company_name: str) -> str:
        """Canonical dictionary key for a company name."""
        return normalize_name(company_name)
