"""Re-verification planning (the §9 maintenance workflow).

The paper argues that keeping the dataset alive is much cheaper than
rebuilding it: each year one only needs to re-check the classifications
most likely to have changed.  This module turns that argument into code: it
scores every organization's *fragility* and emits a prioritized
re-verification plan.

Fragility signals, in decreasing weight:

* the confirming equity sits close to the 50 % threshold (a small sale
  flips the verdict — the Telia/Ucell class of events);
* control rests on aggregated or indirect holdings (funds/holdings can be
  reshuffled quietly);
* the confirmation source is weak (news stories age worse than government
  transparency portals);
* the home country has announced privatization programs (approximated by
  developing-tier churn propensity);
* the record is a foreign subsidiary (group restructurings are common).
"""

from __future__ import annotations

import json
import shutil
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.core.pipeline import PipelineResult
from repro.errors import PipelineError
from repro.sources.documents import SourceType
from repro.text.normalize import normalize_name
from repro.world.countries import COUNTRIES

__all__ = [
    "ReverificationItem",
    "plan_reverification",
    "SnapshotRecord",
    "MaintainReport",
    "run_maintenance",
]

_TIER = {c.cc: c.dev_tier for c in COUNTRIES}

#: How much a confirmation source's verdict is expected to age (0 = very
#: stable, 1 = very perishable).
_SOURCE_PERISHABILITY = {
    SourceType.GOVERNMENT_PORTAL.value: 0.1,
    SourceType.ANNUAL_REPORT.value: 0.25,
    SourceType.COMPANY_WEBSITE.value: 0.3,
    SourceType.SEC.value: 0.3,
    SourceType.FCC.value: 0.3,
    SourceType.REGULATOR.value: 0.35,
    SourceType.WORLD_BANK.value: 0.5,
    SourceType.ITU.value: 0.5,
    SourceType.FREEDOM_HOUSE.value: 0.55,
    SourceType.COMMSUPDATE.value: 0.6,
    SourceType.NEWS.value: 0.9,
}


@dataclass(frozen=True)
class ReverificationItem:
    """One organization queued for re-checking, with its risk breakdown."""

    org_id: str
    org_name: str
    fragility: float                  # [0, 1], higher = check sooner
    reasons: Tuple[str, ...]


def _equity_margin_risk(total_equity: Optional[float]) -> Tuple[float, Optional[str]]:
    if total_equity is None:
        return 0.35, "control asserted without a percentage"
    margin = total_equity - 0.5
    if margin < 0.05:
        return 0.9, f"equity {total_equity:.1%} sits within 5 pts of the threshold"
    if margin < 0.15:
        return 0.5, f"equity {total_equity:.1%} within 15 pts of the threshold"
    return 0.1, None


def plan_reverification(
    result: PipelineResult, limit: Optional[int] = None
) -> List[ReverificationItem]:
    """Rank the dataset's organizations by re-verification urgency."""
    items: List[ReverificationItem] = []
    verdicts = result.verdicts
    for org in result.dataset.organizations():
        reasons: List[str] = []
        verdict = verdicts.get(normalize_name(org.org_name))

        equity = verdict.total_equity if verdict is not None else None
        margin_risk, margin_reason = _equity_margin_risk(equity)
        if margin_reason:
            reasons.append(margin_reason)

        structure_risk = 0.1
        if verdict is not None and (
            len(verdict.state_equity) > 1 or verdict.parent_candidates
        ):
            structure_risk = 0.5
            reasons.append("control via aggregated or indirect holdings")

        source_risk = _SOURCE_PERISHABILITY.get(org.source, 0.5)
        if source_risk >= 0.5:
            reasons.append(f"confirmed only via {org.source or 'unknown'}")

        churn_risk = {0: 0.5, 1: 0.3, 2: 0.1}.get(_TIER.get(org.ownership_cc, 1), 0.3)
        if churn_risk >= 0.5:
            reasons.append("home country has high ownership churn")

        subsidiary_risk = 0.4 if org.is_foreign_subsidiary else 0.1
        if org.is_foreign_subsidiary:
            reasons.append("foreign subsidiary (group restructuring risk)")

        fragility = min(
            1.0,
            0.35 * margin_risk
            + 0.2 * structure_risk
            + 0.2 * source_risk
            + 0.15 * churn_risk
            + 0.1 * subsidiary_risk,
        )
        items.append(
            ReverificationItem(
                org_id=org.org_id,
                org_name=org.org_name,
                fragility=round(fragility, 4),
                reasons=tuple(reasons),
            )
        )
    items.sort(key=lambda item: (-item.fragility, item.org_id))
    if limit is not None:
        return items[:limit]
    return items


# -- the longitudinal maintenance loop (repro maintain) ----------------------

_MANIFEST_VERSION = 1


@dataclass(frozen=True)
class SnapshotRecord:
    """One maintained snapshot: where it landed and what it reused."""

    label: str                         # "2021-07"
    dataset_path: str
    cti_path: Optional[str]
    events: Tuple[str, ...]
    provenance: Dict[str, object]
    #: True/False when --verify ran a cold recompute; None when it didn't.
    verified: Optional[bool] = None


@dataclass
class MaintainReport:
    """Everything one ``repro maintain`` invocation produced."""

    out_dir: str
    manifest_path: str
    snapshots: List[SnapshotRecord] = field(default_factory=list)
    published: Optional[str] = None

    def reused_fractions(self) -> List[float]:
        return [
            float(rec.provenance.get("reused_fraction", 0.0)) for rec in self.snapshots
        ]

    def as_text(self) -> str:
        lines = [
            f"{'snapshot':<10} {'events':>6} {'dirty':>6} " f"{'reused':>7} {'wall':>8}"
        ]
        for rec in self.snapshots:
            prov = rec.provenance
            lines.append(
                f"{rec.label:<10} {len(rec.events):>6} "
                f"{prov.get('dirty_origins', '-')!s:>6} "
                f"{prov.get('reused_fraction', 0.0):>7.2%} "
                f"{prov.get('wall_s', 0.0):>7.2f}s"
            )
        return "\n".join(lines)


def _event_text(event) -> str:
    text = f"{event.kind.value}: {event.operator_name} ({event.cc})"
    if event.detail:
        text += f" — {event.detail}"
    return text


def _export_snapshot(result: PipelineResult, dataset_path: Path):
    """Write one snapshot's dataset export plus its CTI sidecar."""
    from repro.io.jsonio import dump_cti_json, dump_json

    dump_json(result.dataset, dataset_path)
    cti_path = None
    if result.cti_selection is not None:
        cti_path = Path(f"{dataset_path}.cti.json")
        dump_cti_json(result.cti_selection, cti_path)
    return cti_path


def _verify_snapshot(
    world,
    dataset_path: Path,
    cti_path: Optional[Path],
    noise,
    resilience,
    context,
    config=None,
) -> bool:
    """Cold-recompute the snapshot and byte-compare against the export.

    The verification pipeline shares nothing with the incremental engine:
    fresh inputs, fresh analyst, fresh CTI computer, no result cache —
    exactly what a from-scratch run would produce.  Returns True when the
    exports are byte-identical; raises :class:`PipelineError` on drift.
    """
    from repro.core.pipeline import PipelineInputs, StateOwnershipPipeline

    inputs = PipelineInputs.from_world(world, noise=noise, resilience=resilience)
    result = StateOwnershipPipeline(
        inputs, config=config, resilience=resilience, context=context
    ).run()
    scratch = dataset_path.with_name(dataset_path.name + ".verify")
    cold_cti = _export_snapshot(result, scratch)
    try:
        if scratch.read_bytes() != dataset_path.read_bytes():
            raise PipelineError(
                f"incremental export {dataset_path.name} drifted from the "
                "cold recompute"
            )
        if (cold_cti is None) != (cti_path is None):
            raise PipelineError(
                f"incremental run and cold recompute disagree on the CTI "
                f"sidecar for {dataset_path.name}"
            )
        if cold_cti is not None and cti_path is not None:
            if cold_cti.read_bytes() != cti_path.read_bytes():
                raise PipelineError(
                    f"incremental CTI sidecar {cti_path.name} drifted from "
                    "the cold recompute"
                )
    finally:
        scratch.unlink(missing_ok=True)
        if cold_cti is not None:
            cold_cti.unlink(missing_ok=True)
    return True


def _publish(dataset_path: Path, cti_path: Optional[Path], target: Path) -> None:
    """Atomically install the latest snapshot where ``repro serve`` watches.

    The sidecar lands first so a reloader that picks up the new dataset
    never sees a stale CTI file next to it.
    """
    from repro.io.atomic import atomic_replace

    target.parent.mkdir(parents=True, exist_ok=True)
    if cti_path is not None:
        with atomic_replace(Path(f"{target}.cti.json")) as tmp:
            shutil.copyfile(cti_path, tmp)
    with atomic_replace(target) as tmp:
        shutil.copyfile(dataset_path, tmp)


def run_maintenance(
    world,
    out_dir: Union[str, Path],
    months: int,
    start_year: int = 2021,
    start_month: int = 7,
    rates=None,
    noise=None,
    config=None,
    parallel=None,
    resilience=None,
    context=None,
    cache=None,
    cold: bool = False,
    verify: bool = False,
    publish: Optional[Union[str, Path]] = None,
) -> MaintainReport:
    """Walk a monthly snapshot sequence, recomputing only what churn dirties.

    The first snapshot is the baseline (no churn, necessarily a cold
    compute); each later month applies one month of ownership churn to the
    world in place, then re-runs the pipeline through the
    :class:`~repro.incremental.engine.IncrementalEngine` — or from scratch
    with ``cold=True``, the comparison baseline.  Every snapshot is
    exported as ``snapshot-YYYY-MM.json`` (+ ``.cti.json`` sidecar, the
    pair ``repro serve`` hot-swaps), and a ``MAINTAIN.json`` manifest
    records per-snapshot events, reuse provenance and wall time.

    ``verify=True`` cold-recomputes every snapshot and byte-compares the
    exports — the equivalence gate CI runs; drift raises
    :class:`PipelineError`.
    """
    from repro.incremental.engine import IncrementalEngine
    from repro.world.events import ChurnSimulator

    if months < 1:
        raise PipelineError("maintain needs at least one snapshot month")
    out_path = Path(out_dir)
    out_path.mkdir(parents=True, exist_ok=True)
    simulator = ChurnSimulator(world, rates)
    engine = None
    if not cold:
        engine = IncrementalEngine(
            config=config,
            noise=noise,
            resilience=resilience,
            parallel=parallel,
            cache=cache,
        )
    report = MaintainReport(
        out_dir=str(out_path),
        manifest_path=str(out_path / "MAINTAIN.json"),
    )
    for offset in range(months):
        absolute = start_month - 1 + offset
        year = start_year + absolute // 12
        month = absolute % 12 + 1
        label = f"{year:04d}-{month:02d}"
        events: Tuple[str, ...] = ()
        if offset > 0:
            batch = simulator.simulate_months(year, 1, start_month=month)[0]
            events = tuple(_event_text(e) for e in batch)
        if engine is not None:
            run = engine.run_snapshot(world, context=context, events=events)
            result, provenance = run.result, run.provenance
        else:
            import time as _time

            from repro.core.pipeline import (
                PipelineInputs,
                StateOwnershipPipeline,
            )

            t0 = _time.perf_counter()
            # A fresh process would propagate every routing tree anew;
            # drop the world-level tree cache so the cold baseline does
            # not inherit the previous snapshot's warm trees.
            world.collector.reset_cache()
            inputs = PipelineInputs.from_world(
                world, noise=noise, resilience=resilience
            )
            result = StateOwnershipPipeline(
                inputs,
                config=config,
                parallel=parallel,
                resilience=resilience,
                context=context,
            ).run()
            provenance = {
                "events": list(events),
                "mode": "cold",
                "reused_fraction": 0.0,
                "dirty_origins": None,
                "wall_s": round(_time.perf_counter() - t0, 3),
            }
        dataset_path = out_path / f"snapshot-{label}.json"
        cti_path = _export_snapshot(result, dataset_path)
        verified = None
        if verify:
            verified = _verify_snapshot(
                world,
                dataset_path,
                cti_path,
                noise,
                resilience,
                context,
                config=config,
            )
        report.snapshots.append(
            SnapshotRecord(
                label=label,
                dataset_path=str(dataset_path),
                cti_path=str(cti_path) if cti_path is not None else None,
                events=events,
                provenance=dict(provenance),
                verified=verified,
            )
        )
    manifest = {
        "format_version": _MANIFEST_VERSION,
        "snapshots": [
            {
                "label": rec.label,
                "dataset": Path(rec.dataset_path).name,
                "cti": Path(rec.cti_path).name if rec.cti_path else None,
                "events": list(rec.events),
                "provenance": rec.provenance,
                "verified": rec.verified,
            }
            for rec in report.snapshots
        ],
    }
    from repro.io.atomic import atomic_replace

    with atomic_replace(Path(report.manifest_path)) as tmp:
        tmp.write_text(json.dumps(manifest, indent=2, sort_keys=True), encoding="utf-8")
    if publish and report.snapshots:
        last = report.snapshots[-1]
        _publish(
            Path(last.dataset_path),
            Path(last.cti_path) if last.cti_path else None,
            Path(publish),
        )
        report.published = str(publish)
    return report
