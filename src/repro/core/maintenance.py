"""Re-verification planning (the §9 maintenance workflow).

The paper argues that keeping the dataset alive is much cheaper than
rebuilding it: each year one only needs to re-check the classifications
most likely to have changed.  This module turns that argument into code: it
scores every organization's *fragility* and emits a prioritized
re-verification plan.

Fragility signals, in decreasing weight:

* the confirming equity sits close to the 50 % threshold (a small sale
  flips the verdict — the Telia/Ucell class of events);
* control rests on aggregated or indirect holdings (funds/holdings can be
  reshuffled quietly);
* the confirmation source is weak (news stories age worse than government
  transparency portals);
* the home country has announced privatization programs (approximated by
  developing-tier churn propensity);
* the record is a foreign subsidiary (group restructurings are common).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.pipeline import PipelineResult
from repro.sources.documents import SourceType
from repro.text.normalize import normalize_name
from repro.world.countries import COUNTRIES

__all__ = ["ReverificationItem", "plan_reverification"]

_TIER = {c.cc: c.dev_tier for c in COUNTRIES}

#: How much a confirmation source's verdict is expected to age (0 = very
#: stable, 1 = very perishable).
_SOURCE_PERISHABILITY = {
    SourceType.GOVERNMENT_PORTAL.value: 0.1,
    SourceType.ANNUAL_REPORT.value: 0.25,
    SourceType.COMPANY_WEBSITE.value: 0.3,
    SourceType.SEC.value: 0.3,
    SourceType.FCC.value: 0.3,
    SourceType.REGULATOR.value: 0.35,
    SourceType.WORLD_BANK.value: 0.5,
    SourceType.ITU.value: 0.5,
    SourceType.FREEDOM_HOUSE.value: 0.55,
    SourceType.COMMSUPDATE.value: 0.6,
    SourceType.NEWS.value: 0.9,
}


@dataclass(frozen=True)
class ReverificationItem:
    """One organization queued for re-checking, with its risk breakdown."""

    org_id: str
    org_name: str
    fragility: float                  # [0, 1], higher = check sooner
    reasons: Tuple[str, ...]


def _equity_margin_risk(total_equity: Optional[float]) -> Tuple[float, Optional[str]]:
    if total_equity is None:
        return 0.35, "control asserted without a percentage"
    margin = total_equity - 0.5
    if margin < 0.05:
        return 0.9, f"equity {total_equity:.1%} sits within 5 pts of the threshold"
    if margin < 0.15:
        return 0.5, f"equity {total_equity:.1%} within 15 pts of the threshold"
    return 0.1, None


def plan_reverification(
    result: PipelineResult, limit: Optional[int] = None
) -> List[ReverificationItem]:
    """Rank the dataset's organizations by re-verification urgency."""
    items: List[ReverificationItem] = []
    verdicts = result.verdicts
    for org in result.dataset.organizations():
        reasons: List[str] = []
        verdict = verdicts.get(normalize_name(org.org_name))

        equity = verdict.total_equity if verdict is not None else None
        margin_risk, margin_reason = _equity_margin_risk(equity)
        if margin_reason:
            reasons.append(margin_reason)

        structure_risk = 0.1
        if verdict is not None and (
            len(verdict.state_equity) > 1 or verdict.parent_candidates
        ):
            structure_risk = 0.5
            reasons.append("control via aggregated or indirect holdings")

        source_risk = _SOURCE_PERISHABILITY.get(org.source, 0.5)
        if source_risk >= 0.5:
            reasons.append(f"confirmed only via {org.source or 'unknown'}")

        churn_risk = {0: 0.5, 1: 0.3, 2: 0.1}.get(
            _TIER.get(org.ownership_cc, 1), 0.3
        )
        if churn_risk >= 0.5:
            reasons.append("home country has high ownership churn")

        subsidiary_risk = 0.4 if org.is_foreign_subsidiary else 0.1
        if org.is_foreign_subsidiary:
            reasons.append("foreign subsidiary (group restructuring risk)")

        fragility = min(
            1.0,
            0.35 * margin_risk
            + 0.2 * structure_risk
            + 0.2 * source_risk
            + 0.15 * churn_risk
            + 0.1 * subsidiary_risk,
        )
        items.append(
            ReverificationItem(
                org_id=org.org_id,
                org_name=org.org_name,
                fragility=round(fragility, 4),
                reasons=tuple(reasons),
            )
        )
    items.sort(key=lambda item: (-item.fragility, item.org_id))
    if limit is not None:
        return items[:limit]
    return items
