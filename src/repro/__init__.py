"""repro — reproduction of "Identifying ASes of State-Owned Internet
Operators" (Carisimo et al., ACM IMC 2021).

The package has three layers:

* **Substrates** (:mod:`repro.net`, :mod:`repro.world`,
  :mod:`repro.sources`, :mod:`repro.cti`): a synthetic Internet + corporate
  ownership world and the noisy data sources derived from it (prefix2as,
  geolocation, APNIC eyeballs, WHOIS, PeeringDB, AS2Org, ASRank, Orbis,
  Freedom House, Wikipedia, confirmation documents, CTI).
* **The pipeline** (:mod:`repro.core`): the paper's three-stage
  classification process — candidate discovery, ownership confirmation,
  expansion/consolidation — plus the output dataset and ground-truth
  validation.
* **Evaluation** (:mod:`repro.analysis`, :mod:`repro.io`): builders for
  every table and figure in the paper, side-by-side comparison against the
  published values, and JSON/SQLite round-trips of the dataset.

Quickstart::

    from repro import (
        WorldConfig, WorldGenerator, PipelineInputs,
        StateOwnershipPipeline, validate_against_world,
    )

    world = WorldGenerator(WorldConfig.small()).generate()
    inputs = PipelineInputs.from_world(world)
    result = StateOwnershipPipeline(inputs).run()
    print(result.stats["state_owned_asns"], "state-owned ASNs found")
    print(validate_against_world(result, world).as_text())
"""

from repro.config import (
    EXPANSION_PROFILES,
    PipelineConfig,
    SourceNoiseConfig,
    WorldConfig,
)
from repro.core import (
    OrganizationRecord,
    PipelineInputs,
    PipelineResult,
    StateOwnedDataset,
    StateOwnershipPipeline,
    ValidationReport,
    validate_against_world,
)
from repro.errors import (
    AnalysisError,
    ConfigError,
    DatasetError,
    OwnershipError,
    PipelineError,
    PrefixError,
    ReproError,
    SourceError,
    TopologyError,
    WorldError,
)
from repro.world import World, WorldGenerator

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "EXPANSION_PROFILES",
    "WorldConfig",
    "SourceNoiseConfig",
    "PipelineConfig",
    "World",
    "WorldGenerator",
    "PipelineInputs",
    "PipelineResult",
    "StateOwnershipPipeline",
    "StateOwnedDataset",
    "OrganizationRecord",
    "ValidationReport",
    "validate_against_world",
    "ReproError",
    "ConfigError",
    "PrefixError",
    "TopologyError",
    "WorldError",
    "OwnershipError",
    "SourceError",
    "PipelineError",
    "DatasetError",
    "AnalysisError",
]
