"""Ownership churn: privatizations, nationalizations, new subsidiaries.

§9 of the paper discusses dataset ageing: ownership is dynamic (Ucell was
nationalized in 2018; Angola Telecom's privatization keeps being announced),
so a frozen list decays.  This module simulates that churn so the decay can
be *measured*: a :class:`ChurnSimulator` evolves a world's ownership graph
year by year, emitting typed events, and :func:`ageing_study` scores a
frozen dataset snapshot against each year's evolved ground truth.

The event rates default to the paper's qualitative observations:
privatizations are "relatively rare", nationalizations rarer still, and new
foreign subsidiaries appear as state carriers keep expanding.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import WorldError
from repro.rng import derive_seed
from repro.text.names import NameForge
from repro.world.entities import (
    EntityKind,
    Operator,
    OperatorRole,
    OperatorScope,
    OwnershipStake,
)

__all__ = [
    "EventKind",
    "OwnershipEvent",
    "ChurnSimulator",
    "ageing_study",
    "privatize_operator",
    "replace_stakes",
]


class EventKind(enum.Enum):
    PRIVATIZATION = "privatization"          # state sells below 50 %
    NATIONALIZATION = "nationalization"      # state acquires a majority
    NEW_SUBSIDIARY = "new foreign subsidiary"


@dataclass(frozen=True)
class OwnershipEvent:
    """One churn event applied to the world."""

    year: int
    kind: EventKind
    operator_id: str
    operator_name: str
    cc: str                      # country whose government is involved
    detail: str = ""


@dataclass
class ChurnRates:
    """Annual per-eligible-company event probabilities."""

    privatization: float = 0.015
    nationalization: float = 0.004
    new_subsidiary_per_expander: float = 0.08


class ChurnSimulator:
    """Evolves a world's ownership structures year by year (in place).

    Ground-truth caches on the world are invalidated after every simulated
    year, so ``world.ground_truth()`` always reflects the evolved state.
    """

    def __init__(
        self,
        world,
        rates: Optional[ChurnRates] = None,
        seed_label: str = "churn",
    ) -> None:
        self._world = world
        self._rates = rates or ChurnRates()
        self._rng = random.Random(derive_seed(world.config.seed, seed_label))
        self._forge = NameForge(
            random.Random(derive_seed(world.config.seed, seed_label + "-names"))
        )
        self._events: List[OwnershipEvent] = []
        self._spawn_counter = 0

    @property
    def events(self) -> List[OwnershipEvent]:
        return list(self._events)

    # -- public API ---------------------------------------------------------
    def simulate_years(self, start_year: int, years: int) -> List[OwnershipEvent]:
        """Simulate ``years`` years of churn starting at ``start_year``."""
        if years < 0:
            raise WorldError("years must be non-negative")
        emitted: List[OwnershipEvent] = []
        for offset in range(years):
            emitted.extend(self._simulate_one_year(start_year + offset))
        return emitted

    def simulate_months(
        self, start_year: int, months: int, start_month: int = 1
    ) -> List[List[OwnershipEvent]]:
        """Simulate ``months`` months of churn, one event batch per month.

        Monthly stepping is what the incremental ``repro maintain`` loop
        consumes: each month draws from the annual rates scaled by 1/12,
        so a 12-month run has the same expected event count as one
        simulated year (the draws differ — more, smaller Bernoulli
        trials).  Returns the per-month event lists in order, so callers
        can attribute each snapshot's delta to its events.
        """
        if months < 0:
            raise WorldError("months must be non-negative")
        if not 1 <= start_month <= 12:
            raise WorldError("start_month must be in 1..12")
        batches: List[List[OwnershipEvent]] = []
        for offset in range(months):
            absolute = start_month - 1 + offset
            year = start_year + absolute // 12
            batches.append(self._simulate_one_year(year, rate_scale=1.0 / 12.0))
        return batches

    # -- one period -------------------------------------------------------------
    def _simulate_one_year(
        self, year: int, rate_scale: float = 1.0
    ) -> List[OwnershipEvent]:
        world = self._world
        rng = self._rng
        rates = self._rates
        events: List[OwnershipEvent] = []
        truth = {gto.operator.entity_id: gto for gto in world.ground_truth()}

        # Privatizations: a state-owned operator's government sells down.
        privatized_this_year = set()
        for operator_id in sorted(truth):
            if rng.random() < rates.privatization * rate_scale:
                event = self._privatize(year, truth[operator_id])
                if event is not None:
                    events.append(event)
                    privatized_this_year.add(operator_id)

        # Nationalizations: a private operator gets a state majority.
        assessments = world.ownership.assess_all()
        private_ops = [
            op
            for op in world.ownership.operators()
            if not assessments[op.entity_id].is_state_controlled
            and op.scope is OperatorScope.NATIONAL
            and op.offers_unrestricted_service
            and op.role is not OperatorRole.ENTERPRISE
            and op.cc not in world.config.no_state_ownership
            and op.entity_id not in privatized_this_year
        ]
        for op in sorted(private_ops, key=lambda o: o.entity_id):
            if rng.random() < rates.nationalization * rate_scale:
                events.append(self._nationalize(year, op))

        # New foreign subsidiaries from the configured expanders.
        for owner_cc in sorted(world.config.expansion_profiles):
            if rng.random() < rates.new_subsidiary_per_expander * rate_scale:
                event = self._spawn_subsidiary(year, owner_cc)
                if event is not None:
                    events.append(event)

        self._events.extend(events)
        if events:
            world._truth_cache = None  # ground truth changed
        return events

    # -- event implementations -----------------------------------------------------
    def _privatize(self, year: int, gto) -> Optional[OwnershipEvent]:
        return privatize_operator(self._world, gto, self._rng, year)

    def _nationalize(self, year: int, op: Operator) -> OwnershipEvent:
        ownership = self._world.ownership
        fraction = round(self._rng.uniform(0.51, 1.0), 3)
        # Clear existing declared equity to make room, then install the
        # government majority (an acquisition of outstanding shares).
        self._replace_stakes(
            op.entity_id,
            drop=ownership.shareholders_of(op.entity_id),
            add=[
                OwnershipStake(f"gov-{op.cc}", op.entity_id, fraction, since_year=year)
            ],
        )
        return OwnershipEvent(
            year=year,
            kind=EventKind.NATIONALIZATION,
            operator_id=op.entity_id,
            operator_name=op.display_name,
            cc=op.cc,
            detail=f"government acquired {fraction:.0%}",
        )

    def _spawn_subsidiary(self, year: int, owner_cc: str) -> Optional[OwnershipEvent]:
        """A state conglomerate breaks into a new market (ASN-less entity:
        new networks take time; the *company* appears first, as the paper
        observes for China Telecom's Brazilian subsidiary)."""
        world = self._world
        ownership = world.ownership
        assessments = ownership.assess_all()
        parents = [
            op
            for op in ownership.operators()
            if op.cc == owner_cc
            and assessments[op.entity_id].controlling_cc == owner_cc
        ]
        if not parents:
            return None
        parent = max(
            parents,
            key=lambda op: len(world.operator_asns.get(op.entity_id, [])),
        )
        targets = [c for c in world.countries if c.cc != owner_cc]
        target = self._rng.choice(targets)
        legal, brand = self._forge.subsidiary(
            parent.display_name, target.name, target.rir
        )
        self._spawn_counter += 1
        entity_id = f"op-{target.cc}-churn-{year}-{self._spawn_counter}"
        subsidiary = Operator(
            entity_id=entity_id,
            kind=EntityKind.OPERATOR,
            name=legal,
            cc=target.cc,
            brand=brand,
            role=OperatorRole.ACCESS,
            scope=OperatorScope.NATIONAL,
            founded_year=year,
        )
        ownership.add_entity(subsidiary)
        ownership.add_stake(
            OwnershipStake(
                parent.entity_id,
                entity_id,
                round(self._rng.uniform(0.51, 1.0), 3),
                since_year=year,
            )
        )
        world.operator_asns[entity_id] = []
        return OwnershipEvent(
            year=year,
            kind=EventKind.NEW_SUBSIDIARY,
            operator_id=entity_id,
            operator_name=brand,
            cc=owner_cc,
            detail=f"enters {target.cc}",
        )

    def _replace_stakes(self, owned_id: str, drop, add) -> None:
        replace_stakes(self._world, owned_id, drop, add)


def replace_stakes(world, owned_id: str, drop, add) -> None:
    """Swap stakes into ``owned_id`` (the graph has no public removal,
    so this reaches into its internals deliberately)."""
    ownership = world.ownership
    drop_set = {(s.owner_id, s.fraction) for s in drop}
    stakes_in = ownership._stakes_in[owned_id]
    removed = [s for s in stakes_in if (s.owner_id, s.fraction) in drop_set]
    ownership._stakes_in[owned_id] = [
        s for s in stakes_in if (s.owner_id, s.fraction) not in drop_set
    ]
    for stake in removed:
        ownership._stakes_out[stake.owner_id] = [
            s
            for s in ownership._stakes_out[stake.owner_id]
            if not (s.owned_id == owned_id and s.fraction == stake.fraction)
        ]
    ownership._assessment_cache = None
    for stake in add:
        ownership.add_stake(stake)


def privatize_operator(world, gto, rng, year: int) -> Optional[OwnershipEvent]:
    """Reduce a state operator's controlling interest below the threshold.

    Mutates the largest state-side stake; if the structure is an indirect
    chain we sever the intermediary's stake instead.  Shared by the churn
    simulator and the ``privatization_wave`` scenario pack; the caller owns
    ``rng`` so both stay seed-deterministic.  Invalidates the world's
    ground-truth cache when a change was applied.
    """
    ownership = world.ownership
    operator_id = gto.operator.entity_id
    stakes = ownership.shareholders_of(operator_id)
    if not stakes:
        return None
    controlled = ownership.controlled_set(gto.controlling_cc) | {
        e.entity_id for e in ownership.governments() if e.cc == gto.controlling_cc
    }
    state_stakes = [s for s in stakes if s.owner_id in controlled]
    if not state_stakes:
        return None
    # Replace state stakes with a single residual minority position.
    residual = round(rng.uniform(0.05, 0.35), 3)
    replace_stakes(
        world,
        operator_id,
        drop=[s for s in state_stakes],
        add=[
            OwnershipStake(
                state_stakes[0].owner_id,
                operator_id,
                residual,
                since_year=year,
            )
        ],
    )
    world._truth_cache = None
    return OwnershipEvent(
        year=year,
        kind=EventKind.PRIVATIZATION,
        operator_id=operator_id,
        operator_name=gto.operator.display_name,
        cc=gto.controlling_cc,
        detail=f"state holding reduced to {residual:.0%}",
    )


def ageing_study(
    world,
    frozen_asns,
    start_year: int = 2021,
    years: int = 5,
    rates: Optional[ChurnRates] = None,
) -> List[Dict[str, float]]:
    """Measure how a frozen dataset decays as ownership churns.

    Returns one row per simulated year with the frozen list's precision and
    recall against the evolved ground truth, plus the event counts — the
    quantitative version of the paper's §9 maintenance argument.
    """
    simulator = ChurnSimulator(world, rates)
    frozen = set(frozen_asns)
    rows: List[Dict[str, float]] = []
    for offset in range(years):
        year = start_year + offset
        events = simulator.simulate_years(year, 1)
        truth = set(world.ground_truth_asns())
        tp = len(frozen & truth)
        precision = tp / len(frozen) if frozen else 0.0
        recall = tp / len(truth) if truth else 0.0
        rows.append(
            {
                "year": year,
                "events": len(events),
                "privatizations": sum(
                    1 for e in events if e.kind is EventKind.PRIVATIZATION
                ),
                "nationalizations": sum(
                    1 for e in events if e.kind is EventKind.NATIONALIZATION
                ),
                "new_subsidiaries": sum(
                    1 for e in events if e.kind is EventKind.NEW_SUBSIDIARY
                ),
                "precision": round(precision, 4),
                "recall": round(recall, 4),
            }
        )
    return rows
