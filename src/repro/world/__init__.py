"""Ground-truth world model: countries, companies, ownership, markets.

Everything the classification pipeline is later asked to *discover* is
synthesized here first: which operators exist in each country, who owns them
(including funds, holding chains, joint ventures and foreign subsidiaries),
and which ASNs and prefixes they operate.  The derived data sources in
:mod:`repro.sources` only ever see noisy projections of this model.
"""

from repro.world.countries import Country, COUNTRIES, country_by_cc, countries_by_rir
from repro.world.entities import (
    EntityKind,
    Entity,
    OwnershipStake,
    Operator,
    OperatorRole,
    AsnRecord,
)
from repro.world.ownership import OwnershipGraph, ControlAssessment
from repro.world.generator import World, WorldGenerator
from repro.world.scenarios import (
    SCENARIO_PACKS,
    ScenarioPack,
    ScenarioReport,
    all_pack_names,
    run_scenario_packs,
)
from repro.world.worldcache import cache_epoch, load_or_generate

__all__ = [
    "Country",
    "COUNTRIES",
    "country_by_cc",
    "countries_by_rir",
    "EntityKind",
    "Entity",
    "OwnershipStake",
    "Operator",
    "OperatorRole",
    "AsnRecord",
    "OwnershipGraph",
    "ControlAssessment",
    "World",
    "WorldGenerator",
    "SCENARIO_PACKS",
    "ScenarioPack",
    "ScenarioReport",
    "all_pack_names",
    "run_scenario_packs",
    "cache_epoch",
    "load_or_generate",
]
