"""Per-country telecom market planning.

For each country the planner decides — before any entity is materialized —
which operators exist, their business roles, their ownership archetype, and
their shares of the national access market (both address space and eyeballs).
The generator then turns each plan into entities, stakes, ASNs and prefixes.

Ownership archetypes mirror the structures documented in the paper (§2, §7):

* ``state_direct``      — the government holds a direct majority.
* ``state_funds``       — control via 2-3 state funds, none majority alone
                          (Telekom Malaysia).
* ``state_holding``     — control through a state holding company chain.
* ``state_jv``          — two governments, one with the larger (majority)
                          equity (PTCL, Telkomsel).
* ``minority``          — a government minority stake in a private carrier
                          (Deutsche Telekom, Orange).
* ``private``           — no state participation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Tuple

from repro.config import WorldConfig
from repro.world.countries import Country
from repro.world.entities import OperatorRole

__all__ = ["OwnershipArchetype", "OperatorPlan", "CountryMarketPlan", "plan_country"]

OwnershipArchetype = str  # one of the literals documented above

_STATE_ARCHETYPES: Tuple[str, ...] = (
    "state_direct",
    "state_funds",
    "state_holding",
    "state_jv",
)


@dataclass
class OperatorPlan:
    """Blueprint for one operator inside a country's market."""

    role: OperatorRole
    archetype: OwnershipArchetype
    addr_share: float = 0.0       # share of the country's announced space
    eyeball_share: float = 0.0    # share of the country's Internet users
    sibling_count: int = 1
    is_gateway: bool = False      # transit gateway for the country
    stealth: bool = False         # tiny footprint: only CTI can surface it
    misleading_name: bool = False # Vodafone-Fiji-style naming

    @property
    def is_state_owned(self) -> bool:
        return self.archetype in _STATE_ARCHETYPES


@dataclass
class CountryMarketPlan:
    """All planned operators and excluded organizations for one country."""

    country: Country
    transit_dominant: bool
    operators: List[OperatorPlan] = field(default_factory=list)
    tail_as_count: int = 0
    excluded_roles: List[OperatorRole] = field(default_factory=list)

    @property
    def state_owned_plans(self) -> List[OperatorPlan]:
        return [plan for plan in self.operators if plan.is_state_owned]


def _pick_archetype(config: WorldConfig, rng: random.Random) -> str:
    roll = rng.random()
    cumulative = 0.0
    for archetype, prob in zip(_STATE_ARCHETYPES, config.ownership_structure_mix):
        cumulative += prob
        if roll < cumulative:
            return archetype
    return "state_direct"


def _split_shares(rng: random.Random, leader_share: float, count: int) -> List[float]:
    """Split ``1 - leader_share`` across ``count`` followers, descending."""
    if count == 0:
        return []
    weights = sorted((rng.random() + 0.2 for _ in range(count)), reverse=True)
    total = sum(weights)
    remaining = max(0.0, 1.0 - leader_share)
    return [remaining * w / total for w in weights]


def plan_country(
    country: Country, config: WorldConfig, rng: random.Random
) -> CountryMarketPlan:
    """Plan the telecom market of one country.

    The draw order is fixed so that a given (seed, country) pair always
    yields the same plan regardless of how other countries are planned.
    """
    region_prob = config.incumbent_state_prob.get(country.region, 0.4)
    extra_prob = config.extra_state_operator_prob.get(country.region, 0.2)
    if country.rir == "ARIN":
        # The ARIN region is the paper's outlier: state ownership is nearly
        # absent (2 of ~29 member economies).
        region_prob *= 0.15
        extra_prob *= 0.15
    if country.dev_tier == 2 and country.addr_class >= 3:
        # Large advanced economies privatized their incumbents decades ago
        # (DT, Orange, NTT, KT are at most *minority* state-owned, §7).
        region_prob *= 0.15
        extra_prob *= 0.3
    allows_state = country.cc not in config.no_state_ownership

    transit_dominant = (
        rng.random() < config.transit_dominant_prob.get(country.dev_tier, 0.2)
    )

    plan = CountryMarketPlan(country=country, transit_dominant=transit_dominant)

    # --- incumbent ---------------------------------------------------------
    forced_share = config.forced_state_share.get(country.cc)
    incumbent_state = allows_state and (
        forced_share is not None or rng.random() < region_prob
    )
    if incumbent_state:
        archetype = _pick_archetype(config, rng)
    else:
        archetype = (
            "minority"
            if allows_state and rng.random() < config.minority_stake_prob
            else "private"
        )
    # State incumbents in the developing world are sometimes de-facto
    # monopolies — the Table 8 "over 0.9 of the access market" club.
    monopoly_prob = {0: 0.40, 1: 0.10, 2: 0.03}[country.dev_tier]
    if incumbent_state and forced_share is not None:
        leader_share = forced_share * rng.uniform(0.99, 1.0)
    elif incumbent_state and country.addr_class <= 2 and rng.random() < monopoly_prob:
        leader_share = rng.uniform(0.88, 1.0)
    elif country.addr_class >= 3:
        # Large address-space markets are fragmented: even state incumbents
        # hold a moderate slice of the announced space (BSNL, Rostelecom).
        leader_share = rng.uniform(0.12, 0.38)
    else:
        leader_share = rng.uniform(0.28, 0.62)
    incumbent = OperatorPlan(
        role=OperatorRole.INCUMBENT,
        archetype=archetype,
        addr_share=leader_share,
        sibling_count=rng.randint(*config.incumbent_sibling_range),
        misleading_name=incumbent_state and rng.random() < 0.04,
    )
    plan.operators.append(incumbent)

    # --- challengers -------------------------------------------------------
    challenger_count = max(1, config.access_operators_by_class[country.addr_class] - 1)
    challenger_shares = _split_shares(rng, leader_share, challenger_count)
    # Reserve a slice of the remainder for the long tail of small networks.
    tail_fraction = rng.uniform(0.25, 0.6)
    extra_state_budget = 1 if (allows_state and rng.random() < extra_prob) else 0
    for i, raw_share in enumerate(challenger_shares):
        share = raw_share * (1.0 - tail_fraction)
        if extra_state_budget > 0 and i == 0 and not incumbent_state:
            archetype = _pick_archetype(config, rng)
            extra_state_budget -= 1
        elif extra_state_budget > 0 and i == 1:
            archetype = _pick_archetype(config, rng)
            extra_state_budget -= 1
        elif allows_state and rng.random() < config.minority_stake_prob * 0.3:
            archetype = "minority"
        else:
            archetype = "private"
        role = OperatorRole.MOBILE if rng.random() < 0.45 else OperatorRole.ACCESS
        plan.operators.append(
            OperatorPlan(
                role=role,
                archetype=archetype,
                addr_share=share,
                sibling_count=rng.randint(*config.other_sibling_range),
            )
        )

    # --- transit / gateway operators -----------------------------------------
    if country.cc in config.forced_cable_ccs and allows_state:
        # The Figure 5 archetypes: a young state-owned submarine-cable
        # company built to fix the country's international connectivity.
        transit_dominant = True
        plan.transit_dominant = True
        plan.operators.append(
            OperatorPlan(
                role=OperatorRole.CABLE,
                archetype="state_direct",
                addr_share=rng.uniform(0.01, 0.04),
                sibling_count=1,
                is_gateway=True,
            )
        )
    elif transit_dominant and allows_state and rng.random() < config.state_gateway_prob:
        stealth = rng.random() < config.stealth_gateway_prob
        role = OperatorRole.CABLE if rng.random() < 0.35 else OperatorRole.TRANSIT
        plan.operators.append(
            OperatorPlan(
                role=role,
                archetype=_pick_archetype(config, rng),
                addr_share=0.002 if stealth else rng.uniform(0.01, 0.05),
                sibling_count=1 if stealth else rng.randint(1, 2),
                is_gateway=True,
                stealth=stealth,
            )
        )
    elif country.addr_class >= 3 and rng.random() < 0.5:
        # Large countries get a private wholesale transit carrier.
        plan.operators.append(
            OperatorPlan(
                role=OperatorRole.TRANSIT,
                archetype="private",
                addr_share=rng.uniform(0.005, 0.03),
                sibling_count=rng.randint(1, 2),
                is_gateway=not transit_dominant and rng.random() < 0.3,
            )
        )

    # --- eyeball shares -----------------------------------------------------
    # Eyeball share correlates with, but is not identical to, address share:
    # mobile operators serve many users over little address space (CGNAT).
    access_plans = [
        p for p in plan.operators
        if p.role in (OperatorRole.INCUMBENT, OperatorRole.ACCESS, OperatorRole.MOBILE)
    ]
    raw_weights: List[float] = []
    for p in access_plans:
        weight = max(p.addr_share, 1e-4)
        if p.role is OperatorRole.MOBILE:
            weight *= rng.uniform(1.2, 2.6)
        else:
            weight *= rng.uniform(0.8, 1.2)
        raw_weights.append(weight)
    if leader_share >= 0.85:
        # De-facto monopolies leave almost no eyeballs to the long tail.
        eyeball_tail = rng.uniform(0.01, 0.05)
    else:
        eyeball_tail = rng.uniform(0.05, 0.2)
    weight_total = sum(raw_weights)
    for p, w in zip(access_plans, raw_weights):
        p.eyeball_share = (1.0 - eyeball_tail) * w / weight_total

    # --- tail + excluded organizations --------------------------------------
    plan.tail_as_count = config.scaled(
        config.tail_ases_by_class[country.addr_class], minimum=1
    )
    if rng.random() < config.excluded_org_prob:
        plan.excluded_roles.append(OperatorRole.ACADEMIC)
    if rng.random() < config.excluded_org_prob * 0.7:
        plan.excluded_roles.append(OperatorRole.GOVNET)
    if rng.random() < config.excluded_org_prob * 0.4:
        plan.excluded_roles.append(OperatorRole.NIC)

    return plan
