"""Static country table.

Roughly the ISO-3166 universe with, per country: the Regional Internet
Registry serving it, its continent-level region, and coarse size classes for
announced address space and Internet user population.  The classes are
relative units that the world generator converts into prefix counts and
eyeball populations; the United States deliberately carries an outsized
address-space weight to reproduce the paper's observation that excluding the
US raises the state-owned share of announced space from 17 % to 25 %.

Size classes — address space (``addr``) and eyeballs (``pop``):
``5``=XXL, ``4``=XL, ``3``=L, ``2``=M, ``1``=S, ``0``=XS.

Development tier (``dev``): ``2``=advanced, ``1``=emerging, ``0``=developing.
The tier drives the generator's priors for state ownership and the coverage
of non-technical sources (Orbis misses developing-world firms, per §7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

__all__ = [
    "Country",
    "COUNTRIES",
    "country_by_cc",
    "countries_by_rir",
    "countries_by_region",
    "RIRS",
    "REGIONS",
]

RIRS = ("AFRINIC", "APNIC", "ARIN", "LACNIC", "RIPE")
REGIONS = ("Africa", "Americas", "Asia", "Europe", "Oceania")


@dataclass(frozen=True)
class Country:
    """A country and its coarse Internet-size descriptors."""

    cc: str          # ISO-3166 alpha-2
    name: str
    rir: str         # serving Regional Internet Registry
    region: str      # continent-level region
    addr_class: int  # announced address-space size class (0-5)
    pop_class: int   # Internet-user population size class (0-5)
    dev_tier: int    # 2 advanced, 1 emerging, 0 developing


# (cc, name, rir, region, addr, pop, dev)
_ROWS: List[Tuple[str, str, str, str, int, int, int]] = [
    # ---- ARIN ------------------------------------------------------------
    ("US", "United States", "ARIN", "Americas", 5, 4, 2),
    ("CA", "Canada", "ARIN", "Americas", 3, 2, 2),
    ("AG", "Antigua and Barbuda", "ARIN", "Americas", 0, 0, 1),
    ("BS", "Bahamas", "ARIN", "Americas", 0, 0, 1),
    ("BB", "Barbados", "ARIN", "Americas", 0, 0, 1),
    ("BM", "Bermuda", "ARIN", "Americas", 0, 0, 2),
    ("DM", "Dominica", "ARIN", "Americas", 0, 0, 0),
    ("GD", "Grenada", "ARIN", "Americas", 0, 0, 0),
    ("JM", "Jamaica", "ARIN", "Americas", 1, 1, 1),
    ("KN", "Saint Kitts and Nevis", "ARIN", "Americas", 0, 0, 1),
    ("LC", "Saint Lucia", "ARIN", "Americas", 0, 0, 0),
    ("VC", "Saint Vincent", "ARIN", "Americas", 0, 0, 0),
    ("KY", "Cayman Islands", "ARIN", "Americas", 0, 0, 2),
    ("VG", "British Virgin Islands", "ARIN", "Americas", 0, 0, 1),
    ("TC", "Turks and Caicos", "ARIN", "Americas", 0, 0, 1),
    ("AI", "Anguilla", "ARIN", "Americas", 0, 0, 0),
    # ---- LACNIC ------------------------------------------------------------
    ("MX", "Mexico", "LACNIC", "Americas", 3, 3, 1),
    ("GT", "Guatemala", "LACNIC", "Americas", 1, 1, 0),
    ("BZ", "Belize", "LACNIC", "Americas", 0, 0, 0),
    ("SV", "El Salvador", "LACNIC", "Americas", 1, 1, 0),
    ("HN", "Honduras", "LACNIC", "Americas", 1, 1, 0),
    ("NI", "Nicaragua", "LACNIC", "Americas", 0, 1, 0),
    ("CR", "Costa Rica", "LACNIC", "Americas", 1, 1, 1),
    ("PA", "Panama", "LACNIC", "Americas", 1, 1, 1),
    ("CU", "Cuba", "LACNIC", "Americas", 1, 1, 0),
    ("DO", "Dominican Republic", "LACNIC", "Americas", 1, 1, 1),
    ("HT", "Haiti", "LACNIC", "Americas", 0, 1, 0),
    ("CO", "Colombia", "LACNIC", "Americas", 3, 2, 1),
    ("VE", "Venezuela", "LACNIC", "Americas", 2, 2, 0),
    ("EC", "Ecuador", "LACNIC", "Americas", 1, 1, 1),
    ("PE", "Peru", "LACNIC", "Americas", 2, 2, 1),
    ("BO", "Bolivia", "LACNIC", "Americas", 1, 1, 0),
    ("BR", "Brazil", "LACNIC", "Americas", 4, 4, 1),
    ("PY", "Paraguay", "LACNIC", "Americas", 1, 1, 0),
    ("UY", "Uruguay", "LACNIC", "Americas", 1, 1, 1),
    ("AR", "Argentina", "LACNIC", "Americas", 3, 2, 1),
    ("CL", "Chile", "LACNIC", "Americas", 2, 2, 1),
    ("SR", "Suriname", "LACNIC", "Americas", 0, 0, 0),
    ("GY", "Guyana", "LACNIC", "Americas", 0, 0, 0),
    ("TT", "Trinidad and Tobago", "LACNIC", "Americas", 0, 0, 1),
    # ---- AFRINIC ----------------------------------------------------------
    ("DZ", "Algeria", "AFRINIC", "Africa", 2, 2, 1),
    ("AO", "Angola", "AFRINIC", "Africa", 1, 1, 0),
    ("BJ", "Benin", "AFRINIC", "Africa", 0, 1, 0),
    ("BW", "Botswana", "AFRINIC", "Africa", 0, 0, 1),
    ("BF", "Burkina Faso", "AFRINIC", "Africa", 0, 1, 0),
    ("BI", "Burundi", "AFRINIC", "Africa", 0, 0, 0),
    ("CM", "Cameroon", "AFRINIC", "Africa", 1, 1, 0),
    ("CV", "Cabo Verde", "AFRINIC", "Africa", 0, 0, 1),
    ("CF", "Central African Republic", "AFRINIC", "Africa", 0, 0, 0),
    ("TD", "Chad", "AFRINIC", "Africa", 0, 0, 0),
    ("KM", "Comoros", "AFRINIC", "Africa", 0, 0, 0),
    ("CG", "Congo", "AFRINIC", "Africa", 0, 0, 0),
    ("CD", "DR Congo", "AFRINIC", "Africa", 1, 1, 0),
    ("CI", "Cote d'Ivoire", "AFRINIC", "Africa", 1, 1, 0),
    ("DJ", "Djibouti", "AFRINIC", "Africa", 0, 0, 0),
    ("EG", "Egypt", "AFRINIC", "Africa", 2, 3, 1),
    ("GQ", "Equatorial Guinea", "AFRINIC", "Africa", 0, 0, 0),
    ("ER", "Eritrea", "AFRINIC", "Africa", 0, 0, 0),
    ("ET", "Ethiopia", "AFRINIC", "Africa", 1, 2, 0),
    ("GA", "Gabon", "AFRINIC", "Africa", 0, 0, 1),
    ("GM", "Gambia", "AFRINIC", "Africa", 0, 0, 0),
    ("GH", "Ghana", "AFRINIC", "Africa", 1, 1, 0),
    ("GN", "Guinea", "AFRINIC", "Africa", 0, 0, 0),
    ("GW", "Guinea-Bissau", "AFRINIC", "Africa", 0, 0, 0),
    ("KE", "Kenya", "AFRINIC", "Africa", 1, 2, 0),
    ("LS", "Lesotho", "AFRINIC", "Africa", 0, 0, 0),
    ("LR", "Liberia", "AFRINIC", "Africa", 0, 0, 0),
    ("LY", "Libya", "AFRINIC", "Africa", 1, 1, 0),
    ("MG", "Madagascar", "AFRINIC", "Africa", 0, 1, 0),
    ("MW", "Malawi", "AFRINIC", "Africa", 0, 0, 0),
    ("ML", "Mali", "AFRINIC", "Africa", 0, 1, 0),
    ("MR", "Mauritania", "AFRINIC", "Africa", 0, 0, 0),
    ("MU", "Mauritius", "AFRINIC", "Africa", 0, 0, 1),
    ("MA", "Morocco", "AFRINIC", "Africa", 2, 2, 1),
    ("MZ", "Mozambique", "AFRINIC", "Africa", 0, 1, 0),
    ("NA", "Namibia", "AFRINIC", "Africa", 0, 0, 1),
    ("NE", "Niger", "AFRINIC", "Africa", 0, 0, 0),
    ("NG", "Nigeria", "AFRINIC", "Africa", 2, 3, 0),
    ("RW", "Rwanda", "AFRINIC", "Africa", 0, 0, 0),
    ("ST", "Sao Tome and Principe", "AFRINIC", "Africa", 0, 0, 0),
    ("SN", "Senegal", "AFRINIC", "Africa", 1, 1, 0),
    ("SC", "Seychelles", "AFRINIC", "Africa", 0, 0, 1),
    ("SL", "Sierra Leone", "AFRINIC", "Africa", 0, 0, 0),
    ("SO", "Somalia", "AFRINIC", "Africa", 0, 0, 0),
    ("ZA", "South Africa", "AFRINIC", "Africa", 3, 2, 1),
    ("SS", "South Sudan", "AFRINIC", "Africa", 0, 0, 0),
    ("SD", "Sudan", "AFRINIC", "Africa", 1, 1, 0),
    ("SZ", "Eswatini", "AFRINIC", "Africa", 0, 0, 0),
    ("TZ", "Tanzania", "AFRINIC", "Africa", 1, 1, 0),
    ("TG", "Togo", "AFRINIC", "Africa", 0, 0, 0),
    ("TN", "Tunisia", "AFRINIC", "Africa", 1, 1, 1),
    ("UG", "Uganda", "AFRINIC", "Africa", 1, 1, 0),
    ("ZM", "Zambia", "AFRINIC", "Africa", 0, 1, 0),
    ("ZW", "Zimbabwe", "AFRINIC", "Africa", 0, 1, 0),
    # ---- APNIC -------------------------------------------------------------
    ("AF", "Afghanistan", "APNIC", "Asia", 0, 1, 0),
    ("AU", "Australia", "APNIC", "Oceania", 3, 2, 2),
    ("BD", "Bangladesh", "APNIC", "Asia", 1, 3, 0),
    ("BT", "Bhutan", "APNIC", "Asia", 0, 0, 0),
    ("BN", "Brunei", "APNIC", "Asia", 0, 0, 2),
    ("KH", "Cambodia", "APNIC", "Asia", 0, 1, 0),
    ("CN", "China", "APNIC", "Asia", 4, 5, 1),
    ("FJ", "Fiji", "APNIC", "Oceania", 0, 0, 1),
    ("HK", "Hong Kong", "APNIC", "Asia", 2, 1, 2),
    ("IN", "India", "APNIC", "Asia", 4, 5, 1),
    ("ID", "Indonesia", "APNIC", "Asia", 3, 4, 1),
    ("JP", "Japan", "APNIC", "Asia", 4, 3, 2),
    ("KI", "Kiribati", "APNIC", "Oceania", 0, 0, 0),
    ("KP", "North Korea", "APNIC", "Asia", 0, 0, 0),
    ("KR", "South Korea", "APNIC", "Asia", 4, 3, 2),
    ("LA", "Laos", "APNIC", "Asia", 0, 1, 0),
    ("LK", "Sri Lanka", "APNIC", "Asia", 1, 1, 1),
    ("MO", "Macao", "APNIC", "Asia", 0, 0, 2),
    ("MY", "Malaysia", "APNIC", "Asia", 2, 2, 1),
    ("MV", "Maldives", "APNIC", "Asia", 0, 0, 1),
    ("MH", "Marshall Islands", "APNIC", "Oceania", 0, 0, 0),
    ("FM", "Micronesia", "APNIC", "Oceania", 0, 0, 0),
    ("MN", "Mongolia", "APNIC", "Asia", 0, 0, 1),
    ("MM", "Myanmar", "APNIC", "Asia", 1, 1, 0),
    ("NR", "Nauru", "APNIC", "Oceania", 0, 0, 0),
    ("NP", "Nepal", "APNIC", "Asia", 0, 1, 0),
    ("NZ", "New Zealand", "APNIC", "Oceania", 2, 1, 2),
    ("PK", "Pakistan", "APNIC", "Asia", 2, 3, 0),
    ("PW", "Palau", "APNIC", "Oceania", 0, 0, 1),
    ("PG", "Papua New Guinea", "APNIC", "Oceania", 0, 0, 0),
    ("PH", "Philippines", "APNIC", "Asia", 2, 3, 1),
    ("WS", "Samoa", "APNIC", "Oceania", 0, 0, 0),
    ("SB", "Solomon Islands", "APNIC", "Oceania", 0, 0, 0),
    ("SG", "Singapore", "APNIC", "Asia", 2, 1, 2),
    ("TW", "Taiwan", "APNIC", "Asia", 3, 2, 2),
    ("TH", "Thailand", "APNIC", "Asia", 2, 2, 1),
    ("TL", "Timor-Leste", "APNIC", "Asia", 0, 0, 0),
    ("TO", "Tonga", "APNIC", "Oceania", 0, 0, 0),
    ("TV", "Tuvalu", "APNIC", "Oceania", 0, 0, 0),
    ("VU", "Vanuatu", "APNIC", "Oceania", 0, 0, 0),
    ("VN", "Vietnam", "APNIC", "Asia", 3, 3, 1),
    # ---- RIPE -----------------------------------------------------------------
    ("AL", "Albania", "RIPE", "Europe", 0, 0, 1),
    ("AD", "Andorra", "RIPE", "Europe", 0, 0, 2),
    ("AM", "Armenia", "RIPE", "Asia", 0, 0, 1),
    ("AT", "Austria", "RIPE", "Europe", 2, 1, 2),
    ("AZ", "Azerbaijan", "RIPE", "Asia", 1, 1, 1),
    ("BY", "Belarus", "RIPE", "Europe", 1, 1, 1),
    ("BE", "Belgium", "RIPE", "Europe", 2, 1, 2),
    ("BA", "Bosnia and Herzegovina", "RIPE", "Europe", 0, 0, 1),
    ("BG", "Bulgaria", "RIPE", "Europe", 1, 1, 1),
    ("HR", "Croatia", "RIPE", "Europe", 1, 0, 2),
    ("CY", "Cyprus", "RIPE", "Europe", 0, 0, 2),
    ("CZ", "Czechia", "RIPE", "Europe", 2, 1, 2),
    ("DK", "Denmark", "RIPE", "Europe", 2, 1, 2),
    ("EE", "Estonia", "RIPE", "Europe", 0, 0, 2),
    ("FI", "Finland", "RIPE", "Europe", 2, 1, 2),
    ("FR", "France", "RIPE", "Europe", 4, 3, 2),
    ("GE", "Georgia", "RIPE", "Asia", 0, 0, 1),
    ("DE", "Germany", "RIPE", "Europe", 4, 3, 2),
    ("GR", "Greece", "RIPE", "Europe", 1, 1, 2),
    ("GL", "Greenland", "RIPE", "Americas", 0, 0, 2),
    ("HU", "Hungary", "RIPE", "Europe", 1, 1, 1),
    ("IS", "Iceland", "RIPE", "Europe", 0, 0, 2),
    ("IE", "Ireland", "RIPE", "Europe", 1, 1, 2),
    ("IL", "Israel", "RIPE", "Asia", 2, 1, 2),
    ("IT", "Italy", "RIPE", "Europe", 3, 2, 2),
    ("KZ", "Kazakhstan", "RIPE", "Asia", 1, 1, 1),
    ("KG", "Kyrgyzstan", "RIPE", "Asia", 0, 0, 0),
    ("LV", "Latvia", "RIPE", "Europe", 0, 0, 2),
    ("LI", "Liechtenstein", "RIPE", "Europe", 0, 0, 2),
    ("LT", "Lithuania", "RIPE", "Europe", 1, 0, 2),
    ("LU", "Luxembourg", "RIPE", "Europe", 0, 0, 2),
    ("MT", "Malta", "RIPE", "Europe", 0, 0, 2),
    ("MD", "Moldova", "RIPE", "Europe", 0, 0, 0),
    ("MC", "Monaco", "RIPE", "Europe", 0, 0, 2),
    ("ME", "Montenegro", "RIPE", "Europe", 0, 0, 1),
    ("NL", "Netherlands", "RIPE", "Europe", 3, 2, 2),
    ("MK", "North Macedonia", "RIPE", "Europe", 0, 0, 1),
    ("NO", "Norway", "RIPE", "Europe", 2, 1, 2),
    ("PL", "Poland", "RIPE", "Europe", 2, 2, 2),
    ("PT", "Portugal", "RIPE", "Europe", 1, 1, 2),
    ("RO", "Romania", "RIPE", "Europe", 2, 1, 1),
    ("RU", "Russia", "RIPE", "Europe", 4, 4, 1),
    ("SM", "San Marino", "RIPE", "Europe", 0, 0, 2),
    ("RS", "Serbia", "RIPE", "Europe", 1, 1, 1),
    ("SK", "Slovakia", "RIPE", "Europe", 1, 0, 2),
    ("SI", "Slovenia", "RIPE", "Europe", 0, 0, 2),
    ("ES", "Spain", "RIPE", "Europe", 3, 2, 2),
    ("SE", "Sweden", "RIPE", "Europe", 2, 1, 2),
    ("CH", "Switzerland", "RIPE", "Europe", 2, 1, 2),
    ("TJ", "Tajikistan", "RIPE", "Asia", 0, 0, 0),
    ("TM", "Turkmenistan", "RIPE", "Asia", 0, 0, 0),
    ("TR", "Turkey", "RIPE", "Asia", 2, 3, 1),
    ("UA", "Ukraine", "RIPE", "Europe", 2, 2, 1),
    ("GB", "United Kingdom", "RIPE", "Europe", 4, 3, 2),
    ("UZ", "Uzbekistan", "RIPE", "Asia", 1, 1, 0),
    ("AE", "United Arab Emirates", "RIPE", "Asia", 1, 1, 2),
    ("BH", "Bahrain", "RIPE", "Asia", 0, 0, 2),
    ("IQ", "Iraq", "RIPE", "Asia", 1, 1, 0),
    ("IR", "Iran", "RIPE", "Asia", 2, 3, 1),
    ("JO", "Jordan", "RIPE", "Asia", 0, 1, 1),
    ("KW", "Kuwait", "RIPE", "Asia", 0, 0, 2),
    ("LB", "Lebanon", "RIPE", "Asia", 0, 0, 1),
    ("OM", "Oman", "RIPE", "Asia", 0, 0, 1),
    ("PS", "Palestine", "RIPE", "Asia", 0, 0, 0),
    ("QA", "Qatar", "RIPE", "Asia", 0, 0, 2),
    ("SA", "Saudi Arabia", "RIPE", "Asia", 2, 2, 2),
    ("SY", "Syria", "RIPE", "Asia", 0, 1, 0),
    ("YE", "Yemen", "RIPE", "Asia", 0, 1, 0),
]

COUNTRIES: Tuple[Country, ...] = tuple(
    Country(cc, name, rir, region, addr, pop, dev)
    for cc, name, rir, region, addr, pop, dev in _ROWS
)

_BY_CC: Dict[str, Country] = {country.cc: country for country in COUNTRIES}
if len(_BY_CC) != len(COUNTRIES):
    raise AssertionError("duplicate country codes in the static table")


def country_by_cc(cc: str) -> Country:
    """Look up a country by ISO-3166 alpha-2 code (KeyError if unknown)."""
    return _BY_CC[cc.upper()]


def countries_by_rir(rir: str) -> List[Country]:
    """All countries served by the given RIR."""
    return [country for country in COUNTRIES if country.rir == rir]


def countries_by_region(region: str) -> List[Country]:
    """All countries in the given continent-level region."""
    return [country for country in COUNTRIES if country.region == region]
