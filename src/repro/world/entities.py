"""Entities of the ground-truth world: governments, funds, companies, ASNs.

The ownership universe is a directed graph of *entities* connected by equity
stakes.  Operators are the entities that actually run networks; every other
kind exists to make ownership discovery hard in the ways the paper documents
(state funds whose aggregate holdings confer control, holding-company chains,
private conglomerates, joint ventures).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import OwnershipError

__all__ = [
    "EntityKind",
    "OperatorRole",
    "OperatorScope",
    "Entity",
    "Operator",
    "OwnershipStake",
    "AsnRecord",
]


class EntityKind(enum.Enum):
    """What kind of legal entity this is."""

    GOVERNMENT = "government"    # a federal-level government unit
    STATE_FUND = "state_fund"    # sovereign wealth / pension fund
    HOLDING = "holding"          # intermediate holding company
    OPERATOR = "operator"        # a company operating networks
    PRIVATE = "private"          # private conglomerate / investor pool
    SUBNATIONAL = "subnational"  # province/municipality government unit


class OperatorRole(enum.Enum):
    """Business role of an operator (drives topology + market share)."""

    INCUMBENT = "incumbent"        # legacy national access operator
    ACCESS = "access"              # competitive access ISP
    MOBILE = "mobile"              # mobile-first access operator
    TRANSIT = "transit"            # wholesale transit / backbone
    CABLE = "cable"                # submarine-cable operator
    ACADEMIC = "academic"          # research & education network
    GOVNET = "govnet"              # government-office connectivity
    NIC = "nic"                    # ccTLD / registry infrastructure
    ENTERPRISE = "enterprise"      # hosting / enterprise network


#: Roles whose services are restricted to certain sectors; the paper's §5.3
#: excludes these from the state-owned *Internet operator* definition.
RESTRICTED_ROLES = frozenset(
    {OperatorRole.ACADEMIC, OperatorRole.GOVNET, OperatorRole.NIC}
)


class OperatorScope(enum.Enum):
    """Administrative level at which the operator works."""

    NATIONAL = "national"
    SUBNATIONAL = "subnational"


@dataclass
class Entity:
    """A legal entity in the ownership graph."""

    entity_id: str
    kind: EntityKind
    name: str                      # legal name
    cc: str                        # country of registration
    brand: Optional[str] = None    # commercial/brand name, if different

    @property
    def display_name(self) -> str:
        """Brand if present, otherwise the legal name."""
        return self.brand or self.name

    def __post_init__(self) -> None:
        if not self.entity_id:
            raise OwnershipError("entity_id must be non-empty")
        if not self.name:
            raise OwnershipError(f"entity {self.entity_id} has an empty name")


@dataclass
class Operator(Entity):
    """An entity that operates networks (may own zero or more ASNs).

    ``home_cc`` is the country whose market the operator serves; for foreign
    subsidiaries it equals ``cc`` (the registration country) while the
    controlling government sits elsewhere in the ownership graph.
    """

    role: OperatorRole = OperatorRole.ACCESS
    scope: OperatorScope = OperatorScope.NATIONAL
    founded_year: int = 2000
    website: Optional[str] = None    # domain, e.g. "zamtel.example"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.kind is not EntityKind.OPERATOR:
            raise OwnershipError(f"operator {self.entity_id} must have kind OPERATOR")

    @property
    def offers_unrestricted_service(self) -> bool:
        """True if the operator sells access/transit to the general market."""
        return self.role not in RESTRICTED_ROLES


@dataclass(frozen=True)
class OwnershipStake:
    """``owner`` holds ``fraction`` of ``owned``'s equity."""

    owner_id: str
    owned_id: str
    fraction: float
    since_year: int = 2000  # enables timestamped-ownership extensions (§9)

    def __post_init__(self) -> None:
        if self.owner_id == self.owned_id:
            raise OwnershipError(f"{self.owner_id} cannot own itself")
        if not 0.0 < self.fraction <= 1.0:
            raise OwnershipError(
                f"stake {self.owner_id}->{self.owned_id} has invalid "
                f"fraction {self.fraction}"
            )


@dataclass
class AsnRecord:
    """An AS number delegated to an operator.

    ``registered_name`` is what WHOIS will report — often a stale or local
    legal name that differs from the operator's current name (§2, §4.2).
    ``cc`` is the country where the AS operates (the subsidiary's country for
    foreign subsidiaries, which also determines the delegating RIR).
    """

    asn: int
    operator_id: str
    cc: str
    rir: str
    registered_name: str
    role: OperatorRole
    prefixes: List[Tuple[int, int]] = field(default_factory=list)  # (base, len)
    eyeballs: int = 0              # true user population served by this AS

    def __post_init__(self) -> None:
        if self.asn < 1:
            raise OwnershipError(f"invalid ASN {self.asn}")
        if self.eyeballs < 0:
            raise OwnershipError(f"AS{self.asn} has negative eyeballs")

    @property
    def num_addresses(self) -> int:
        """Total announced address count across this AS's prefixes."""
        return sum(1 << (32 - length) for _, length in self.prefixes)
