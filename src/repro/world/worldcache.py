"""Digest-verified blob cache for generated worlds.

A world is a pure function of its :class:`~repro.config.WorldConfig`, so a
pickled copy keyed by the config fingerprint and the generator revision
lets every warm consumer — CLI runs, test fixtures, benchmarks, the CI
jobs — skip generation entirely.  This module centralizes the key scheme
and the load-or-generate path that used to live inside the CLI, so the CI
``actions/cache`` step, the fixtures and the CLI all agree on what a blob
is called and when it is stale.

:func:`cache_epoch` condenses the key space into a single string for the
CI cache key: it digests the generator revision plus the fingerprints of
every world configuration the workflow touches, so pushing a change that
invalidates any blob rotates the whole cross-job cache.
"""

from __future__ import annotations

import pickle
from typing import Iterable, Optional

from repro.config import WorldConfig
from repro.parallel import (
    ExecutionContext,
    ResultCache,
    stable_digest,
    world_fingerprint,
)
from repro.world.generator import GENERATOR_VERSION, World, WorldGenerator

__all__ = [
    "world_cache_key",
    "load_or_generate",
    "cache_epoch",
    "DEFAULT_CI_CONFIGS",
]

#: Every (seed, scale) the CI workflow materializes: the test fixtures
#: (tiny/small), the smoke jobs (0.1/0.2), and the bench scale sweep
#: (0.2/0.5).  Keeping this list in one place means the actions/cache key
#: rotates whenever any of them would produce a different world.
DEFAULT_CI_CONFIGS: tuple = (
    WorldConfig(seed=5, scale=0.1),
    WorldConfig(seed=20210701, scale=0.12, monitor_count=8),
    WorldConfig(seed=20210701, scale=0.2),
    WorldConfig(seed=20210701, scale=0.3),
    WorldConfig(seed=20210701, scale=0.3, monitor_count=16),
    WorldConfig(seed=20210701, scale=0.5),
)


def world_cache_key(config: WorldConfig) -> str:
    """Blob-cache key for a generated world: config plus generator revision,
    so a blob written by an older generator is never served stale."""
    return stable_digest(
        {
            "config": world_fingerprint(config),
            "generator": GENERATOR_VERSION,
        }
    )


def load_or_generate(
    config: WorldConfig,
    cache: Optional[ResultCache] = None,
    context: Optional[ExecutionContext] = None,
) -> World:
    """Load the configured world from the blob cache, or generate it.

    An unpicklable cached entry (e.g. written by an older code revision)
    is evicted and regenerated; a fresh generation is written back so the
    next consumer — possibly a different CI job restored from the same
    ``actions/cache`` snapshot — loads instead of rebuilding.
    """
    key = world_cache_key(config)
    if cache is not None:
        blob = cache.get_blob("world", key)
        if blob is not None:
            try:
                world = pickle.loads(blob)
            except Exception:
                world = None
            if isinstance(world, World):
                return world
            cache.evict("world", key)
    world = WorldGenerator(config, context=context).generate()
    if cache is not None:
        cache.put_blob(
            "world", key, pickle.dumps(world, protocol=pickle.HIGHEST_PROTOCOL)
        )
    return world


def cache_epoch(configs: Iterable[WorldConfig] = DEFAULT_CI_CONFIGS) -> str:
    """One digest naming the current generation of all CI world blobs.

    CI embeds this in its ``actions/cache`` key (printed by
    ``python -m repro.world.worldcache``), so the cross-job cache rotates
    exactly when a code change would regenerate any standard world.
    """
    return stable_digest({"keys": [world_cache_key(c) for c in configs]})


if __name__ == "__main__":  # pragma: no cover - CI key helper
    print(cache_epoch())
