"""Ownership graph and state-control assessment.

Implements the paper's working definition (§3): a firm is state-owned when a
federal-level government unit holds at least 50 % of its equity, where the
holding may be *indirect* — aggregated across entities the government itself
controls (sovereign funds, pension funds, holding companies).  The
Telekom-Malaysia example from §2 is the canonical case: three state funds,
none with a majority alone, jointly confer control.

Control is computed as a fixed point: a government controls an entity when
the stakes held by the government plus the stakes held by already-controlled
entities sum to >= the control threshold.  This matches the "control chain"
reading of the IMF definition (control of a shareholder confers that
shareholder's full voting weight, not a multiplicative slice).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Set

from repro.errors import OwnershipError
from repro.world.entities import Entity, EntityKind, Operator, OwnershipStake

__all__ = ["CONTROL_THRESHOLD", "ControlAssessment", "OwnershipGraph"]

#: IMF Fiscal Monitor (April 2020) threshold used by the paper.
CONTROL_THRESHOLD = 0.5


@dataclass(frozen=True)
class ControlAssessment:
    """The state-control verdict for one entity.

    ``controlling_cc`` is the country code of the (single) government with
    aggregate control, or None.  ``state_equity`` maps every government cc
    with any direct or chained stake to its aggregate voting fraction, so
    minority participations (§7) are visible too.
    """

    entity_id: str
    controlling_cc: Optional[str]
    state_equity: Mapping[str, float]

    @property
    def is_state_controlled(self) -> bool:
        return self.controlling_cc is not None

    def minority_stakes(self) -> Dict[str, float]:
        """Government stakes that do not reach the control threshold."""
        return {
            cc: fraction
            for cc, fraction in self.state_equity.items()
            if fraction < CONTROL_THRESHOLD and fraction > 0
        }


class OwnershipGraph:
    """Entities plus equity stakes, with control queries.

    The graph enforces that total declared equity of an entity never exceeds
    100 % (undeclared remainder is implicitly dispersed private float).
    """

    def __init__(self) -> None:
        self._entities: Dict[str, Entity] = {}
        self._stakes_in: Dict[str, List[OwnershipStake]] = {}
        self._stakes_out: Dict[str, List[OwnershipStake]] = {}
        self._assessment_cache: Optional[Dict[str, ControlAssessment]] = None

    # -- construction -------------------------------------------------------
    def add_entity(self, entity: Entity) -> None:
        if entity.entity_id in self._entities:
            raise OwnershipError(f"duplicate entity {entity.entity_id}")
        self._entities[entity.entity_id] = entity
        self._stakes_in.setdefault(entity.entity_id, [])
        self._stakes_out.setdefault(entity.entity_id, [])
        self._assessment_cache = None

    def add_stake(self, stake: OwnershipStake) -> None:
        for endpoint in (stake.owner_id, stake.owned_id):
            if endpoint not in self._entities:
                raise OwnershipError(f"unknown entity {endpoint}")
        declared = sum(s.fraction for s in self._stakes_in[stake.owned_id])
        if declared + stake.fraction > 1.0 + 1e-9:
            raise OwnershipError(
                f"{stake.owned_id} equity would exceed 100 % "
                f"({declared + stake.fraction:.3f})"
            )
        self._stakes_in[stake.owned_id].append(stake)
        self._stakes_out[stake.owner_id].append(stake)
        self._assessment_cache = None

    # -- basic queries ---------------------------------------------------------
    def entity(self, entity_id: str) -> Entity:
        try:
            return self._entities[entity_id]
        except KeyError:
            raise OwnershipError(f"unknown entity {entity_id}") from None

    def __contains__(self, entity_id: str) -> bool:
        return entity_id in self._entities

    def __len__(self) -> int:
        return len(self._entities)

    def entities(self, kind: Optional[EntityKind] = None) -> List[Entity]:
        """All entities, optionally filtered by kind."""
        if kind is None:
            return list(self._entities.values())
        return [e for e in self._entities.values() if e.kind is kind]

    def operators(self) -> List[Operator]:
        """All operator entities."""
        return [e for e in self._entities.values() if isinstance(e, Operator)]

    def shareholders_of(self, entity_id: str) -> List[OwnershipStake]:
        """Direct stakes into ``entity_id``."""
        self.entity(entity_id)
        return list(self._stakes_in[entity_id])

    def holdings_of(self, entity_id: str) -> List[OwnershipStake]:
        """Direct stakes held by ``entity_id``."""
        self.entity(entity_id)
        return list(self._stakes_out[entity_id])

    def governments(self) -> List[Entity]:
        return self.entities(EntityKind.GOVERNMENT)

    # -- control computation ----------------------------------------------------
    def _government_ccs(self) -> List[str]:
        return [e.cc for e in self.governments()]

    def controlled_set(self, government_cc: str) -> Set[str]:
        """Entity ids controlled by the government of ``government_cc``.

        Fixed-point expansion: an entity joins the controlled set when the
        stakes held by the government entity itself plus stakes held by
        already-controlled entities reach :data:`CONTROL_THRESHOLD`.
        """
        government_ids = {
            e.entity_id for e in self.governments() if e.cc == government_cc
        }
        if not government_ids:
            raise OwnershipError(f"no government entity for {government_cc!r}")
        # Only entities reachable from the government via stake edges can
        # possibly be controlled; restrict the fixpoint to that set so the
        # computation stays proportional to the government's actual holdings.
        reachable: Set[str] = set()
        frontier = list(government_ids)
        while frontier:
            entity_id = frontier.pop()
            for stake in self._stakes_out[entity_id]:
                if stake.owned_id not in reachable:
                    reachable.add(stake.owned_id)
                    frontier.append(stake.owned_id)
        controlled: Set[str] = set(government_ids)
        changed = True
        while changed:
            changed = False
            for entity_id in reachable:
                if entity_id in controlled:
                    continue
                weight = sum(
                    stake.fraction
                    for stake in self._stakes_in[entity_id]
                    if stake.owner_id in controlled
                )
                if weight >= CONTROL_THRESHOLD - 1e-9:
                    controlled.add(entity_id)
                    changed = True
        return controlled - government_ids

    def state_equity_of(self, entity_id: str, government_cc: str) -> float:
        """Aggregate voting fraction the government holds in ``entity_id``.

        Counts direct stakes of the government plus the full stakes of every
        entity the government controls (chain semantics, not multiplicative).
        """
        controlled = self.controlled_set(government_cc)
        government_ids = {
            e.entity_id for e in self.governments() if e.cc == government_cc
        }
        holders = controlled | government_ids
        return sum(
            stake.fraction
            for stake in self._stakes_in[entity_id]
            if stake.owner_id in holders and stake.owned_id == entity_id
        )

    def assess_all(self) -> Dict[str, ControlAssessment]:
        """Control assessments for every entity (cached until mutation)."""
        if self._assessment_cache is not None:
            return self._assessment_cache
        per_government: Dict[str, Set[str]] = {}
        for cc in set(self._government_ccs()):
            per_government[cc] = self.controlled_set(cc)
        assessments: Dict[str, ControlAssessment] = {}
        government_ids_by_cc = {
            cc: {e.entity_id for e in self.governments() if e.cc == cc}
            for cc in per_government
        }
        for entity_id in self._entities:
            equity: Dict[str, float] = {}
            controlling: Optional[str] = None
            for cc, controlled in per_government.items():
                holders = controlled | government_ids_by_cc[cc]
                weight = sum(
                    stake.fraction
                    for stake in self._stakes_in[entity_id]
                    if stake.owner_id in holders
                )
                if weight > 0:
                    equity[cc] = weight
                if entity_id in controlled:
                    # The fixed point guarantees at most one government can
                    # hold >= 50 % of a single entity's equity... unless two
                    # governments share a 50/50 joint venture; prefer the
                    # larger aggregate stake, ties broken lexicographically.
                    if controlling is None or equity.get(cc, 0.0) > equity.get(
                        controlling, 0.0
                    ):
                        controlling = cc
            assessments[entity_id] = ControlAssessment(
                entity_id=entity_id,
                controlling_cc=controlling,
                state_equity=equity,
            )
        self._assessment_cache = assessments
        return assessments

    def assess(self, entity_id: str) -> ControlAssessment:
        """Control assessment for one entity."""
        self.entity(entity_id)
        return self.assess_all()[entity_id]

    # -- structure queries used by subsidiary discovery -----------------------------
    def majority_parent(self, entity_id: str) -> Optional[Entity]:
        """The single direct shareholder holding >= 50 %, if any."""
        for stake in self._stakes_in[entity_id]:
            if stake.fraction >= CONTROL_THRESHOLD - 1e-9:
                return self._entities[stake.owner_id]
        return None

    def conglomerate_root(self, entity_id: str) -> Entity:
        """Walk majority-parent links upward to the top company of the group.

        Stops below government/fund entities: the root is the highest
        *corporate* entity (the "conglomerate" name in the output dataset,
        e.g. Telenor for Telenor Norge AS).
        """
        current = self.entity(entity_id)
        seen = {current.entity_id}
        while True:
            parent = self.majority_parent(current.entity_id)
            if parent is None or parent.kind in (
                EntityKind.GOVERNMENT,
                EntityKind.STATE_FUND,
                EntityKind.SUBNATIONAL,
            ):
                return current
            if parent.entity_id in seen:
                raise OwnershipError(f"ownership cycle through {parent.entity_id}")
            seen.add(parent.entity_id)
            current = parent

    def majority_subsidiaries(self, entity_id: str) -> List[Entity]:
        """Entities in which ``entity_id`` directly holds >= 50 %."""
        return [
            self._entities[stake.owned_id]
            for stake in self._stakes_out[entity_id]
            if stake.fraction >= CONTROL_THRESHOLD - 1e-9
        ]

    def validate(self) -> None:
        """Check invariants: stake endpoints exist, equity <= 100 %, no
        majority-parent cycles."""
        for entity_id, stakes in self._stakes_in.items():
            total = sum(s.fraction for s in stakes)
            if total > 1.0 + 1e-9:
                raise OwnershipError(
                    f"{entity_id} declared equity {total:.3f} exceeds 100 %"
                )
        for entity_id in self._entities:
            self.conglomerate_root(entity_id)  # raises on cycles
